//! Minimal rand_chacha stand-in for offline typechecking and local test
//! runs. The "ChaCha" types are SplitMix64 underneath — deterministic per
//! seed, but NOT the real ChaCha streams.

use rand::{RngCore, SeedableRng};

macro_rules! chacha {
    ($($name:ident),*) => {$(
        #[derive(Debug, Clone)]
        pub struct $name(rand::rngs::StdRng);

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name(rand::rngs::StdRng::seed_from_u64(seed))
            }
        }
    )*};
}

chacha!(ChaCha8Rng, ChaCha12Rng, ChaCha20Rng);

//! Minimal parking_lot stand-in over std::sync, for offline typechecking
//! and local test runs.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

//! Minimal proptest stand-in for offline typechecking and local test
//! runs. Strategies generate values from a deterministic SplitMix64
//! stream (no shrinking, no persistence); `proptest!` expands to plain
//! `#[test]` functions looping over `cases` samples.

/// Deterministic generator threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator (no shrinking in this stand-in).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            f,
            whence,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// Always-the-same-value strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// Uniform index into a runtime-sized collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes acceptable to [`vec`]: an exact length or a range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub struct Uniform32<S>(S);

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }
}

/// Per-`proptest!` block configuration; only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

#[macro_export]
macro_rules! proptest {
    (@fns ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Distinct per-test stream, deterministic per test name.
                let mut seed = 0xcbf29ce484222325u64;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                }
                let mut rng = $crate::TestRng::new(seed);
                for _case in 0..config.cases {
                    $crate::proptest!(@bind rng, $($args)*);
                    $body
                }
            }
        )*
    };
    (@bind $rng:ident,) => {};
    (@bind $rng:ident, mut $p:ident in $s:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, mut $p:ident in $s:expr) => {
        #[allow(unused_mut)]
        let mut $p = $crate::Strategy::generate(&($s), &mut $rng);
    };
    (@bind $rng:ident, $p:ident in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $p:ident in $s:expr) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    pub use crate as prop;
}

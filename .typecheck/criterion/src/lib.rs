//! Minimal criterion stand-in for offline typechecking and local runs:
//! each benchmark closure runs once, no statistics.

use std::fmt::Display;
use std::hint;

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Debug, Clone)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
}

// Real criterion's `Criterion` is not a unit struct; keep a field so
// `Criterion::default()` in benches doesn't trip
// `clippy::default_constructed_unit_structs` only under the stub.
#[derive(Default)]
pub struct Criterion {
    _config: (),
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("bench {id} (stub: single run)");
        f(&mut Bencher);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {}/{id} (stub: single run)", self.name);
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {}/{} (stub: single run)", self.name, id.0);
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

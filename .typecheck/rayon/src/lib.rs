//! Sequential stand-in for rayon, used only for offline typechecking and
//! local test runs in environments without a crates.io mirror. Mirrors
//! the subset of the rayon API this workspace uses; every "parallel"
//! iterator runs sequentially on the calling thread.

pub fn current_num_threads() -> usize {
    // Real rayon reports its pool size (the core count by default);
    // mirror that so thread-count-sensitive cost models behave the
    // same here as against the real crate, even though this stub
    // executes sequentially.
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sequential stand-in for a rayon parallel iterator: wraps a plain
/// iterator and mirrors rayon's method signatures (two-argument
/// `fold`/`reduce`, parallel `zip`, …).
pub struct Par<I>(pub I);

impl<I: Iterator> Par<I> {
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    pub fn chain<J: Iterator<Item = I::Item>>(self, other: Par<J>) -> Par<std::iter::Chain<I, J>> {
        Par(self.0.chain(other.0))
    }

    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, O, F>> {
        Par(self.0.flat_map(f))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// rayon-style fold: identity function + fold op, yielding the
    /// per-"thread" partial accumulations (a single one here).
    pub fn fold<T, ID: Fn() -> T, F: FnMut(T, I::Item) -> T>(
        self,
        identity: ID,
        fold_op: F,
    ) -> Par<std::iter::Once<T>> {
        Par(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// rayon-style reduce: identity function + reduce op.
    pub fn reduce<ID: Fn() -> I::Item, F: FnMut(I::Item, I::Item) -> I::Item>(
        self,
        identity: ID,
        reduce_op: F,
    ) -> I::Item {
        self.0.fold(identity(), reduce_op)
    }

    pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.0;
        let mut f = f;
        it.any(move |x| f(x))
    }

    pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.0;
        let mut f = f;
        it.all(move |x| f(x))
    }
}

pub trait ParallelSlice<T> {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }

    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(size))
    }
}

pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(size))
    }
}

pub trait IntoParallelIterator {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Iter = C::IntoIter;
    type Item = C::Item;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

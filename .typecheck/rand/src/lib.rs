//! Minimal rand stand-in (SplitMix64-based) for offline typechecking and
//! local test runs. Deterministic per seed, but NOT the real rand
//! streams — never use for golden-value tests.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_standard(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values samplable from a bounded range — rand's `SampleUniform`.
/// One generic `SampleRange` impl per range shape (mirroring the real
/// crate) keeps integer-literal inference flowing through `gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi_excl: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi_excl: Self, rng: &mut R) -> Self {
                assert!(lo < hi_excl, "empty gen_range");
                let span = (hi_excl as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi_excl: Self, rng: &mut R) -> Self {
                assert!(lo < hi_excl, "empty gen_range");
                lo + (f64::sample_standard(rng) as $t) * (hi_excl - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty gen_range");
                lo + (f64::sample_standard(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by `rng.gen_range(..)`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — stands in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) u64);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(seed)
        }
    }
}

//! Quickstart: compute betweenness centrality with TurboBC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use turbobc_suite::baselines::brandes_all_sources;
use turbobc_suite::graph::Graph;
use turbobc_suite::turbobc::{BcOptions, BcSolver, Kernel};

fn main() {
    // Zachary's karate club, the classic social-network test graph
    // (34 members, 78 friendships; vertex 0 = instructor, 33 = admin).
    #[rustfmt::skip]
    let friendships: &[(u32, u32)] = &[
        (0,1),(0,2),(0,3),(0,4),(0,5),(0,6),(0,7),(0,8),(0,10),(0,11),(0,12),(0,13),
        (0,17),(0,19),(0,21),(0,31),(1,2),(1,3),(1,7),(1,13),(1,17),(1,19),(1,21),
        (1,30),(2,3),(2,7),(2,8),(2,9),(2,13),(2,27),(2,28),(2,32),(3,7),(3,12),
        (3,13),(4,6),(4,10),(5,6),(5,10),(5,16),(6,16),(8,30),(8,32),(8,33),(9,33),
        (13,33),(14,32),(14,33),(15,32),(15,33),(18,32),(18,33),(19,33),(20,32),
        (20,33),(22,32),(22,33),(23,25),(23,27),(23,29),(23,32),(23,33),(24,25),
        (24,27),(24,31),(25,31),(26,29),(26,33),(27,33),(28,31),(28,33),(29,32),
        (29,33),(30,32),(30,33),(31,32),(31,33),(32,33),
    ];
    let graph = Graph::from_edges(34, false, friendships);

    // Default options: the kernel is selected automatically from the
    // graph's degree profile (§3.1 of the paper), engine = rayon.
    let solver = BcSolver::new(&graph, BcOptions::default()).unwrap();
    println!(
        "karate club: n = {}, m = {} stored arcs, kernel = {}",
        solver.n(),
        solver.m(),
        solver.kernel().name()
    );

    // Exact BC: every vertex as a BFS source.
    let result = solver.bc_exact().unwrap();
    let mut ranked: Vec<(usize, f64)> = result.bc.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 betweenness (who brokers the most shortest paths):");
    for (v, bc) in ranked.iter().take(5) {
        println!("  member {v:>2}: BC = {bc:8.2}");
    }
    println!("\n(members 0 and 33 — the instructor and the club admin — should dominate)");

    // Verify against the queue-based Brandes oracle.
    let oracle = brandes_all_sources(&graph);
    let max_err = result
        .bc
        .iter()
        .zip(&oracle)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |TurboBC - Brandes| = {max_err:.2e}");

    // The same computation with each explicit kernel gives identical
    // results; only the storage format and work mapping change.
    for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
        let s = BcSolver::new(
            &graph,
            BcOptions::builder().kernel(kernel).sequential().build(),
        )
        .unwrap();
        let r = s.bc_exact().unwrap();
        let diff =
            r.bc.iter()
                .zip(&result.bc)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
        println!(
            "kernel {:>6}: max diff vs default = {diff:.2e}",
            kernel.name()
        );
    }
}

//! One dataset, every analytic: the full shortest-path-centrality
//! toolkit (BC, edge BC, closeness/harmonic, approximate BC) plus the
//! linear-algebra extras (PageRank, reachability) on a single social
//! network — the "downstream user" workflow this library targets.
//!
//! ```text
//! cargo run --release --example analytics_suite
//! ```

use turbobc_suite::graph::{connected_components, gen, GraphStats};
use turbobc_suite::sparse::semiring;
use turbobc_suite::turbobc::{BcOptions, BcSolver};

fn top3(label: &str, scores: &[f64]) {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let row: Vec<String> = order
        .iter()
        .take(3)
        .map(|&v| format!("{v} ({:.2})", scores[v]))
        .collect();
    println!("  {label:<22} {}", row.join(", "));
}

fn main() {
    // A mid-sized collaboration network.
    let network = gen::preferential_attachment(5_000, 3, 42);
    let stats = GraphStats::compute(&network);
    let (_, components) = connected_components(&network);
    println!(
        "network: {} members, {} ties, degree max/mean {}/{:.1}, {} component(s)\n",
        network.n(),
        network.m() / 2,
        stats.degree.max,
        stats.degree.mean,
        components
    );

    println!("top-3 by each analytic:");

    // Exact BC (the headline metric).
    let solver = BcSolver::new(&network, BcOptions::default()).unwrap();
    let bc = solver.bc_exact().unwrap();
    top3("betweenness", &bc.bc);

    // Approximate BC with a guarantee — a fraction of the cost.
    let approx = solver.approx(0.05, 0.05, 0x70b0bc).unwrap();
    top3(&format!("approx BC (k={})", approx.samples), &approx.bc);

    // Closeness family.
    let close = solver.closeness().unwrap();
    top3("harmonic", &close.harmonic);
    top3("closeness", &close.closeness);

    // PageRank over the same adjacency.
    let pr = semiring::pagerank(&network.to_csr(), 0.85, 1e-10, 100);
    top3("pagerank", &pr);

    // Edge betweenness on a pivot sample (exact over all sources is
    // O(nm); 64 pivots suffice for ranking ties).
    let pivots: Vec<u32> = (0..64)
        .map(|k| (k * (network.n() as u32 / 64)).min(network.n() as u32 - 1))
        .collect();
    let ebc = solver.edge_bc_sources(&pivots).unwrap();
    let ((u, v), w) = ebc.top_arcs(1)[0];
    println!("  {:<22} {u} -> {v} ({w:.2})", "strongest tie (edge BC)");

    // Rank agreement: the degree-1 hub story vs path-based metrics.
    let mut by_bc: Vec<usize> = (0..network.n()).collect();
    by_bc.sort_by(|&a, &b| bc.bc[b].total_cmp(&bc.bc[a]));
    let mut by_pr: Vec<usize> = (0..network.n()).collect();
    by_pr.sort_by(|&a, &b| pr[b].total_cmp(&pr[a]));
    let overlap = by_bc[..25]
        .iter()
        .filter(|v| by_pr[..25].contains(v))
        .count();
    println!(
        "\ntop-25 agreement between betweenness and pagerank: {overlap}/25 — related but not\n\
         interchangeable, which is why shortest-path centralities are worth their O(nm)."
    );
}

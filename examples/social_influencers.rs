//! Influencer detection on a social network — the paper's other
//! motivating domain — using *sampled* BC to stay fast on a graph where
//! exact all-sources BC would be expensive.
//!
//! ```text
//! cargo run --release --example social_influencers
//! ```

use std::time::Instant;
use turbobc_suite::graph::{gen, GraphStats};
use turbobc_suite::turbobc::{BcOptions, BcSolver, Kernel};

fn main() {
    // A 30k-member preferential-attachment network (com-Youtube profile:
    // heavy-tailed degrees, a few celebrity hubs).
    let network = gen::preferential_attachment(30_000, 3, 7);
    let stats = GraphStats::compute(&network);
    println!(
        "social network: n = {}, m = {}, degree max/mean = {}/{:.1}",
        network.n(),
        network.m(),
        stats.degree.max,
        stats.degree.mean
    );

    // Auto-selection: the degree skew (max ≫ mean) picks the
    // edge-parallel scCOOC kernel, as the paper found for com-Youtube.
    let solver = BcSolver::new(&network, BcOptions::default()).unwrap();
    println!("auto-selected kernel: {}", solver.kernel().name());
    assert_eq!(solver.kernel(), Kernel::ScCooc);

    // Sampled BC: 64 evenly spaced pivots approximate the ranking at a
    // fraction of the exact cost (Brandes–Pich pivoting).
    let t0 = Instant::now();
    let sampled = solver.bc_sampled(64).unwrap();
    println!(
        "sampled BC (64 pivots) in {:.0} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let mut ranked: Vec<usize> = (0..network.n()).collect();
    ranked.sort_by(|&a, &b| sampled.bc[b].total_cmp(&sampled.bc[a]));
    println!("\ntop influencers (shortest-path brokers):");
    for &v in ranked.iter().take(5) {
        println!(
            "  user {v:>5}: sampled BC = {:>12.1}, followers = {}",
            sampled.bc[v],
            network.out_degrees()[v]
        );
    }

    // Check the sampled ranking against one more-expensive reference:
    // 512 pivots.
    let reference = solver.bc_sampled(512).unwrap();
    let mut ref_ranked: Vec<usize> = (0..network.n()).collect();
    ref_ranked.sort_by(|&a, &b| reference.bc[b].total_cmp(&reference.bc[a]));
    let overlap = ranked[..10]
        .iter()
        .filter(|v| ref_ranked[..10].contains(v))
        .count();
    println!("\ntop-10 overlap with a 512-pivot reference: {overlap}/10");

    // The same query on the sequential engine, to show the API parity
    // the paper's "(sequential)x" baseline uses.
    let seq = BcSolver::new(
        &network,
        BcOptions::builder()
            .kernel(Kernel::ScCooc)
            .sequential()
            .build(),
    )
    .unwrap();
    let t0 = Instant::now();
    let _ = seq.bc_sampled(8).unwrap();
    println!(
        "sequential engine, 8 pivots: {:.0} ms (the paper's CPU baseline path)",
        t0.elapsed().as_secs_f64() * 1e3
    );
}

//! Run TurboBC on the simulated Titan Xp and inspect what a GPU profiler
//! would show: per-kernel transactions, warp efficiency, coalescing,
//! modelled GLT and runtime, the device-memory ledger — and the
//! out-of-memory behaviour behind the paper's Table 4.
//!
//! ```text
//! cargo run --release --example gpu_simulation
//! ```

use turbobc_suite::baselines::gunrock_like;
use turbobc_suite::graph::gen;
use turbobc_suite::simt::{Device, DeviceProps};
use turbobc_suite::turbobc::{footprint, BcOptions, BcSolver, ExecutorKind, Kernel};

fn main() {
    // An irregular graph (Mycielskian): the veCSC kernel's home turf.
    let graph = gen::mycielski(11);
    println!("graph: mycielski11, n = {}, m = {}", graph.n(), graph.m());

    let solver = BcSolver::new(&graph, BcOptions::default()).unwrap();
    println!("auto-selected kernel: {}\n", solver.kernel().name());

    let device = Device::titan_xp();
    let plan = solver
        .plan_pinned(ExecutorKind::Simt, &[graph.default_source()])
        .unwrap();
    let ex = solver
        .execute_on(&device, &plan)
        .expect("12 GB Titan Xp fits this easily");
    let report = ex
        .simt_report()
        .cloned()
        .expect("SIMT plans carry a device report");
    let result = ex.into_bc().expect("BC plans produce a BC result");

    println!(
        "BC of top vertex: {:.2}",
        result.bc.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "BFS depth d = {}, reached {} vertices\n",
        result.stats.max_depth, result.stats.last_reached
    );

    println!("simulated profiler output (per kernel):");
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>8} {:>9} {:>9}",
        "kernel", "launches", "lane loads", "load txns", "eff", "lanes/tx", "GLT GB/s"
    );
    for (name, s) in report.metrics.iter() {
        println!(
            "{:<14} {:>9} {:>12} {:>12} {:>8.2} {:>9.1} {:>9.0}",
            name,
            s.launches,
            s.loads,
            s.load_transactions,
            s.warp_efficiency(),
            s.coalescing_factor(),
            device.timing().glt_gbs(s),
        );
    }
    println!(
        "\nmodelled runtime: {:.3} ms  |  whole-run GLT: {:.0} GB/s (DRAM ceiling {:.0})",
        report.modelled_time_s * 1e3,
        report.glt_gbs,
        device.props().mem_bandwidth_gbs
    );
    println!(
        "device memory peak: {:.2} MB of {:.0} MB",
        report.memory.peak as f64 / 1e6,
        report.memory.capacity as f64 / 1e6
    );

    // --- The Table 4 memory story, in miniature. -----------------------
    let (n, m) = (graph.n(), graph.m());
    let turbo_words = footprint::turbobc_words(n, m, Kernel::VeCsc);
    let gunrock_words = gunrock_like::footprint_words(n, m);
    println!(
        "\narray inventory: TurboBC 7n+m = {turbo_words} words, gunrock 9n+2m = {gunrock_words} words"
    );

    // Shrink the device to the midpoint of the two working sets — where
    // the paper's 12 GB card sat for the Table 4 graphs — and try both.
    let probe = Device::titan_xp();
    let turbo_peak = footprint::plan_peak_on_device(&probe, n, m, Kernel::VeCsc).unwrap();
    let probe2 = Device::titan_xp();
    let _plan = gunrock_like::plan_on_device(&probe2, n, m).unwrap();
    let small = Device::with_capacity(
        DeviceProps::titan_xp(),
        (turbo_peak + probe2.memory().peak) / 2,
    );
    println!(
        "shrinking the device to {:.2} MB:",
        small.memory().capacity as f64 / 1e6
    );
    match solver.execute_on(&small, &plan) {
        Ok(_) => println!("  TurboBC-veCSC: completed"),
        Err(e) => println!("  TurboBC-veCSC: {e}"),
    }
    match gunrock_like::plan_on_device(&small, n, m) {
        Ok(_) => println!("  gunrock-like : fits (unexpected!)"),
        Err(e) => println!("  gunrock-like : OOM — {e}"),
    }
    println!("(the paper's Table 4: gunrock OOM on every big graph, TurboBC completed them)");
}

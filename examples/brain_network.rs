//! Brain-network hub analysis — one of the paper's motivating domains
//! (Rubinov & Sporns 2010: BC identifies integrative hub regions in
//! connectomes).
//!
//! Structural connectomes are small-world: dense local clustering plus a
//! few long-range association fibres. We synthesise one with the
//! Watts–Strogatz generator, compute exact BC, and contrast the *hub*
//! ranking BC produces with plain degree ranking.
//!
//! ```text
//! cargo run --release --example brain_network
//! ```

use turbobc_suite::graph::{gen, GraphStats};
use turbobc_suite::turbobc::{BcOptions, BcSolver};

fn main() {
    // ~500 cortical regions, each wired to its 6 nearest neighbours per
    // side, with 8% of fibres rewired into long-range shortcuts.
    let connectome = gen::small_world(500, 6, 0.08, 2026);
    let stats = GraphStats::compute(&connectome);
    println!(
        "synthetic connectome: {} regions, {} fibre endpoints, mean degree {:.1}",
        connectome.n(),
        connectome.m(),
        stats.degree.mean
    );

    let solver = BcSolver::new(&connectome, BcOptions::default()).unwrap();
    println!(
        "selected kernel: {} (regular small-world profile)",
        solver.kernel().name()
    );

    let result = solver.bc_exact().unwrap();
    println!(
        "exact BC over {} sources in {:.1} ms (BFS depth ≤ {})",
        result.stats.sources,
        result.stats.elapsed.as_secs_f64() * 1e3,
        result.stats.max_depth
    );

    // Rank regions by BC and by degree.
    let degrees = connectome.out_degrees();
    let mut by_bc: Vec<usize> = (0..connectome.n()).collect();
    by_bc.sort_by(|&a, &b| result.bc[b].total_cmp(&result.bc[a]));
    let mut by_degree: Vec<usize> = (0..connectome.n()).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(degrees[v]));

    println!("\ntop hub regions by betweenness (vs their degree rank):");
    for &region in by_bc.iter().take(8) {
        let deg_rank = by_degree.iter().position(|&v| v == region).unwrap();
        println!(
            "  region {region:>3}: BC = {:>9.1}, degree = {:>2} (degree rank #{deg_rank})",
            result.bc[region], degrees[region]
        );
    }

    // In a small-world network the highest-BC regions are the ones whose
    // rewired long-range fibres bridge distant neighbourhoods — they need
    // not be the highest-degree ones.
    let overlap = by_bc[..20]
        .iter()
        .filter(|v| by_degree[..20].contains(v))
        .count();
    println!(
        "\noverlap between top-20 by BC and top-20 by degree: {overlap}/20 \
         (shortcut carriers ≠ local hubs)"
    );

    // Lesion study: removing the top bridge region lengthens paths.
    let hub = by_bc[0] as u32;
    let pruned_edges: Vec<(u32, u32)> = connectome
        .edges()
        .filter(|&(u, v)| u != hub && v != hub && u < v)
        .collect();
    let pruned = turbobc_suite::graph::Graph::from_edges(connectome.n(), false, &pruned_edges);
    let before = turbobc_suite::graph::bfs(&connectome, 0);
    let after = turbobc_suite::graph::bfs(&pruned, 0);
    println!(
        "lesioning region {hub}: BFS eccentricity from region 0 goes {} -> {} \
         (reached {} -> {})",
        before.height, after.height, before.reached, after.reached
    );
}

//! Weighted betweenness on a logistics network: travel-time-weighted
//! roads, Δ-stepping shortest paths, and the (min,+)/(max,min) semiring
//! toolkit — the extensions beyond the paper's unweighted scope.
//!
//! ```text
//! cargo run --release --example weighted_logistics
//! ```

use turbobc_suite::baselines::weighted_sssp;
use turbobc_suite::graph::weighted::weighted_road_network;
use turbobc_suite::sparse::semiring::{self, CsrValues};
use turbobc_suite::turbobc::weighted::{sssp_delta_stepping, weighted_bc_exact, WeightedBcOptions};

fn main() {
    // A road network whose arc weights are segment travel times.
    let roads = weighted_road_network(14, 14, 6, 2026);
    println!(
        "logistics network: {} nodes, {} road segments, total length {:.0}",
        roads.n(),
        roads.m() / 2,
        roads.total_weight() / 2.0
    );

    // Δ-stepping vs Dijkstra: same distances, bucketed parallel rounds.
    let (csr, w) = roads.to_weighted_csr();
    let depot = roads.graph().default_source();
    let (dist, phases) = sssp_delta_stepping(&csr, &w, depot, 50.0);
    let oracle = weighted_sssp(&roads, depot);
    let worst = dist
        .iter()
        .zip(&oracle)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let reachable = dist.iter().filter(|d| d.is_finite()).count();
    println!(
        "delta-stepping from depot {depot}: {reachable} reachable in {phases} bucket phases, \
         max |Δ-stepping − Dijkstra| = {worst:.2e}"
    );

    // Weighted BC: which junctions carry the most quickest routes?
    let result = weighted_bc_exact(&roads, WeightedBcOptions::default());
    let mut ranked: Vec<usize> = (0..roads.n()).collect();
    ranked.sort_by(|&a, &b| result.bc[b].total_cmp(&result.bc[a]));
    println!("\ncritical junctions by travel-time betweenness:");
    for &v in ranked.iter().take(5) {
        println!("  node {v:>5}: weighted BC = {:>12.1}", result.bc[v]);
    }
    println!(
        "(exact over {} sources in {:.1} ms; deepest route used {} buckets)",
        result.stats.sources,
        result.stats.elapsed.as_secs_f64() * 1e3,
        result.buckets
    );

    // The semiring toolkit on the same network: bottleneck (max,min)
    // capacities, reading weights as lane capacities instead of times.
    let a = CsrValues::new(csr.clone(), w.clone());
    let caps = semiring::widest_paths(&a, depot as usize);
    let (best, cap) = caps
        .iter()
        .enumerate()
        .filter(|&(v, _)| v != depot as usize)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!(
        "\nsemiring bonus — widest route from the depot: node {best} with bottleneck {cap:.1}"
    );
    let d_bf = semiring::bellman_ford(&a, depot as usize);
    let worst_bf = d_bf
        .iter()
        .zip(&oracle)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("(min,+) Bellman–Ford agrees with Dijkstra to {worst_bf:.2e}");
}

//! Multi-GPU BC scaling on the simulator: 1D column partitioning over
//! 1–4 devices, PCIe vs NVLink interconnects — the scalability frontier
//! of the paper's related work (Pan et al., Multi-GPU Graph Analytics).
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use turbobc_suite::graph::gen;
use turbobc_suite::simt::{DeviceProps, Interconnect};
use turbobc_suite::turbobc::multi_gpu::bc_multi_gpu;

fn main() {
    let graph = gen::mycielski(14);
    let source = graph.default_source();
    println!(
        "graph: mycielski14 (n = {}, m = {}), BC from hub {source}\n",
        graph.n(),
        graph.m()
    );

    for (link_name, link) in [
        ("PCIe3", Interconnect::pcie3()),
        ("NVLink", Interconnect::nvlink()),
    ] {
        println!("interconnect: {link_name}");
        println!(
            "{:>8} {:>12} {:>13} {:>10} {:>13} {:>15}",
            "devices", "compute ms", "transfer ms", "total ms", "exchange MB", "max device MB"
        );
        let mut baseline = 0.0;
        for p in [1usize, 2, 4] {
            let (bc, report) =
                bc_multi_gpu(&graph, &[source], p, DeviceProps::titan_xp(), link.clone())
                    .expect("fits");
            if p == 1 {
                baseline = report.modelled_time_s;
                // Sanity: the hub's BC is the same on every device count.
                let top = bc.iter().cloned().fold(0.0, f64::max);
                println!("         (top BC value {top:.2})");
            }
            let max_mem = report
                .per_device_memory
                .iter()
                .map(|m| m.peak)
                .max()
                .unwrap_or(0) as f64
                / 1e6;
            println!(
                "{:>8} {:>12.3} {:>13.3} {:>10.3} {:>13.2} {:>15.2}   ({:.2}x vs 1 GPU)",
                p,
                report.modelled_compute_s * 1e3,
                report.modelled_transfer_s * 1e3,
                report.modelled_time_s * 1e3,
                report.transfer_bytes as f64 / 1e6,
                max_mem,
                baseline / report.modelled_time_s
            );
        }
        println!();
    }
    println!(
        "takeaways: compute scales with devices; the frontier allgather does not — NVLink\n\
         moves the crossover; per-device memory is floored by the replicated f / delta_u\n\
         vectors (the textbook 1D-partitioning trade-off)."
    );
}

//! Road-network bottleneck analysis: edge-style reasoning with vertex BC
//! on a deep, regular graph (the paper's `luxembourg_osm` family), plus a
//! round trip through the MatrixMarket reader/writer.
//!
//! ```text
//! cargo run --release --example road_bottlenecks
//! ```

use turbobc_suite::graph::{bfs, gen, io, GraphStats};
use turbobc_suite::turbobc::{BcOptions, BcSolver, Kernel};

fn main() {
    // A city road grid with long subdivided streets: mean degree ≈ 2,
    // BFS depth in the hundreds.
    let roads = gen::road_network(24, 24, 10, 99);
    let stats = GraphStats::compute(&roads);
    let probe = bfs(&roads, roads.default_source());
    println!(
        "road network: {} junctions+segments, {} arcs, mean degree {:.2}, BFS depth {}",
        roads.n(),
        roads.m(),
        stats.degree.mean,
        probe.height
    );

    let solver = BcSolver::new(&roads, BcOptions::default()).unwrap();
    println!(
        "auto-selected kernel: {} (paper: scCSC for road networks)",
        solver.kernel().name()
    );
    assert_eq!(solver.kernel(), Kernel::ScCsc);

    // Sampled BC is plenty to surface the arterial bottlenecks.
    let result = solver.bc_sampled(128).unwrap();
    let mut ranked: Vec<usize> = (0..roads.n()).collect();
    ranked.sort_by(|&a, &b| result.bc[b].total_cmp(&result.bc[a]));

    println!("\nmost load-bearing intersections (highest sampled BC):");
    let degrees = roads.out_degrees();
    for &v in ranked.iter().take(6) {
        println!(
            "  node {v:>5}: BC = {:>10.1}, degree {} ({})",
            result.bc[v],
            degrees[v],
            if degrees[v] >= 3 {
                "junction"
            } else {
                "road segment"
            }
        );
    }

    // Persist the network as a MatrixMarket file and read it back — the
    // same format the paper's SuiteSparse graphs ship in.
    let dir = std::env::temp_dir().join("turbobc_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roads.mtx");
    let mut file = std::fs::File::create(&path).expect("create mtx");
    io::write_matrix_market(&roads, &mut file).expect("write mtx");
    let reloaded = io::read_matrix_market_file(&path).expect("read mtx");
    assert_eq!(reloaded.n(), roads.n());
    assert_eq!(reloaded.m(), roads.m());
    println!(
        "\nround-tripped the network through {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // BC is identical on the reloaded graph.
    let solver2 = BcSolver::new(&reloaded, BcOptions::default()).unwrap();
    let result2 = solver2.bc_sampled(128).unwrap();
    let max_diff = result
        .bc
        .iter()
        .zip(&result2.bc)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max BC difference after the round trip: {max_diff:.2e}");
}

//! Girvan–Newman community detection with the edge-betweenness
//! extension: repeatedly remove the highest-betweenness edge until the
//! graph splits.
//!
//! Edge BC falls out of the paper's backward recurrence for free (the
//! SpMV's per-edge addends *are* the edge dependencies — see
//! `turbobc::edge`), so the linear-algebraic machinery doubles as a
//! community-detection engine.
//!
//! ```text
//! cargo run --release --example community_detection
//! ```

use turbobc_suite::graph::{bfs, gen, Graph, VertexId};
use turbobc_suite::turbobc::{BcOptions, BcSolver};

/// Number of connected components (undirected).
fn components(g: &Graph) -> usize {
    let mut seen = vec![false; g.n()];
    let mut count = 0;
    for s in 0..g.n() {
        if !seen[s] {
            count += 1;
            let r = bfs(g, s as VertexId);
            for (v, &d) in r.depths.iter().enumerate() {
                if d != 0 {
                    seen[v] = true;
                }
            }
        }
    }
    count
}

fn main() {
    // Two dense communities bridged by a couple of weak ties: three
    // small-world villages wired together.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let village = |base: u32, edges: &mut Vec<(u32, u32)>| {
        let v = gen::small_world(40, 3, 0.2, base as u64);
        for (a, b) in v.edges() {
            if a < b {
                edges.push((base + a, base + b));
            }
        }
    };
    village(0, &mut edges);
    village(40, &mut edges);
    village(80, &mut edges);
    // Weak inter-village ties.
    edges.push((7, 53));
    edges.push((25, 99));
    let g = Graph::from_edges(120, false, &edges);
    println!(
        "network: {} people, {} ties, {} component(s)",
        g.n(),
        g.m() / 2,
        components(&g)
    );

    // Girvan–Newman: cut the highest-betweenness tie until communities
    // separate.
    let mut current = g;
    let mut cuts: Vec<(u32, u32)> = Vec::new();
    while components(&current) < 3 {
        let r = BcSolver::new(&current, BcOptions::default())
            .unwrap()
            .edge_bc()
            .unwrap();
        let ((u, v), score) = r.top_arcs(1)[0];
        println!("cutting tie {u} – {v} (edge betweenness {score:.1})");
        cuts.push((u, v));
        let remaining: Vec<(u32, u32)> = current
            .edges()
            .filter(|&(a, b)| a < b && !((a, b) == (u, v) || (a, b) == (v, u)))
            .collect();
        current = Graph::from_edges(120, false, &remaining);
    }
    println!(
        "\nsplit into {} communities after {} cuts: {:?}",
        components(&current),
        cuts.len(),
        cuts
    );
    println!("(the bridges 7–53 and 25–99 are exactly the planted weak ties)");
    assert!(cuts
        .iter()
        .all(|&(u, v)| { matches!((u.min(v), u.max(v)), (7, 53) | (25, 99)) }));
}

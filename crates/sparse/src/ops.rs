//! Elementwise vector operations used by the linear-algebraic BC algorithm.
//!
//! Algorithm 1 of the paper interleaves SpMV products with masked
//! elementwise updates (lines 20–27 and 32–40). These helpers implement the
//! masked updates as named operations so that the sequential, rayon and
//! SIMT engines share one specification (and one set of tests).

/// Line 20–22 of Algorithm 1: copy `f_t[i]` into `f[i]` for every vertex
/// that is still undiscovered (`sigma[i] == 0`); all other `f[i]` become 0.
/// Returns the number of vertices now in the frontier.
pub fn mask_new_frontier(f_t: &[i64], sigma: &[i64], f: &mut [i64]) -> usize {
    debug_assert_eq!(f_t.len(), sigma.len());
    debug_assert_eq!(f_t.len(), f.len());
    let mut count = 0;
    for i in 0..f_t.len() {
        if sigma[i] == 0 && f_t[i] != 0 {
            f[i] = f_t[i];
            count += 1;
        } else {
            f[i] = 0;
        }
    }
    count
}

/// Lines 23–27 of Algorithm 1: for every vertex with a non-zero frontier
/// value, record its discovery depth in `depths` and add its new shortest
/// paths into `sigma`. Returns `true` if any vertex was updated (the `c`
/// flag of the algorithm).
pub fn update_sigma_depth(f: &[i64], d: u32, depths: &mut [u32], sigma: &mut [i64]) -> bool {
    debug_assert_eq!(f.len(), depths.len());
    debug_assert_eq!(f.len(), sigma.len());
    let mut any = false;
    for i in 0..f.len() {
        if f[i] != 0 {
            depths[i] = d;
            sigma[i] = sigma[i].saturating_add(f[i]);
            any = true;
        }
    }
    any
}

/// Lines 32–36 of Algorithm 1: seed the backward auxiliary vector
/// `delta_u[i] = (1 + delta[i]) / sigma[i]` for every vertex discovered at
/// depth `d` (with positive path count); all other entries become 0.
pub fn seed_delta_u(depths: &[u32], sigma: &[i64], delta: &[f64], d: u32, delta_u: &mut [f64]) {
    debug_assert_eq!(depths.len(), sigma.len());
    debug_assert_eq!(depths.len(), delta.len());
    debug_assert_eq!(depths.len(), delta_u.len());
    for i in 0..depths.len() {
        delta_u[i] = if depths[i] == d && sigma[i] > 0 {
            (1.0 + delta[i]) / sigma[i] as f64
        } else {
            0.0
        };
    }
}

/// Lines 38–40 of Algorithm 1: fold the weighted dependency sums back into
/// `delta` for every vertex at depth `d - 1`.
pub fn accumulate_delta(
    depths: &[u32],
    sigma: &[i64],
    delta_ut: &[f64],
    d: u32,
    delta: &mut [f64],
) {
    debug_assert_eq!(depths.len(), delta_ut.len());
    debug_assert_eq!(depths.len(), delta.len());
    for i in 0..depths.len() {
        if depths[i] == d - 1 {
            delta[i] += delta_ut[i] * sigma[i] as f64;
        }
    }
}

/// Lines 43–47 of Algorithm 1: add the per-source dependencies into the
/// global BC vector, skipping the source itself. `scale` is 1.0 for
/// directed graphs and 0.5 for undirected graphs (the paper's compensation
/// for double counting of each unordered pair).
pub fn accumulate_bc(delta: &[f64], source: usize, scale: f64, bc: &mut [f64]) {
    debug_assert_eq!(delta.len(), bc.len());
    for (v, &dv) in delta.iter().enumerate() {
        if v != source {
            bc[v] += dv * scale;
        }
    }
}

/// The sentinel depth for "never discovered". Depth 1 is the source (the
/// paper's `d` starts at 1), so 0 is free to mean unreached.
pub const UNDISCOVERED: u32 = 0;

// ---------------------------------------------------------------------
// Batched (n×b panel) analogues of the masked updates above, used by
// the multi-source block engine. Layout follows `crate::spmm`: bit
// matrices hold `ceil(b/64)` u64 words per vertex, panels hold `b`
// entries per vertex, and panel entries are only meaningful where the
// corresponding bit is set.
// ---------------------------------------------------------------------

/// Lines 23–27 of Algorithm 1 over a block: for every lane `k` set in
/// `fresh[v]`, record depth `d` and add the new shortest paths from
/// `f_t` into the `σ` panel (saturating, like the scalar path).
/// Returns the total number of `(vertex, lane)` discoveries.
pub fn update_sigma_depth_panel(
    width: usize,
    fresh: &[u64],
    f_t: &[i64],
    d: u32,
    depths: &mut [u32],
    sigma: &mut [i64],
) -> usize {
    let w = width.div_ceil(64);
    debug_assert_eq!(fresh.len() * width, f_t.len() * w);
    debug_assert_eq!(f_t.len(), sigma.len());
    debug_assert_eq!(f_t.len(), depths.len());
    let n = f_t.len() / width.max(1);
    let mut count = 0usize;
    for v in 0..n {
        for t in 0..w {
            let mut bits = fresh[v * w + t];
            count += bits.count_ones() as usize;
            while bits != 0 {
                let k = t * 64 + bits.trailing_zeros() as usize;
                let i = v * width + k;
                depths[i] = d;
                sigma[i] = sigma[i].saturating_add(f_t[i]);
                bits &= bits - 1;
            }
        }
    }
    count
}

/// Lines 32–36 over a block: seed the backward panel
/// `δ_u[v,k] = (1 + δ[v,k]) / σ[v,k]` for every lane discovered at
/// depth `d`; every other entry becomes 0 (full overwrite). Lanes whose
/// BFS tree is shallower than `d` simply contribute zeros — the block
/// sweeps each depth once for all `b` sources.
pub fn seed_delta_u_panel(
    width: usize,
    depths: &[u32],
    sigma: &[i64],
    delta: &[f64],
    d: u32,
    delta_u: &mut [f64],
) {
    debug_assert_eq!(depths.len(), sigma.len());
    debug_assert_eq!(depths.len(), delta.len());
    debug_assert_eq!(depths.len(), delta_u.len());
    let _ = width;
    for i in 0..depths.len() {
        delta_u[i] = if depths[i] == d && sigma[i] > 0 {
            (1.0 + delta[i]) / sigma[i] as f64
        } else {
            0.0
        };
    }
}

/// Lines 38–40 over a block: fold the weighted dependency sums back
/// into the `δ` panel for every lane at depth `d - 1`.
pub fn accumulate_delta_panel(
    width: usize,
    depths: &[u32],
    sigma: &[i64],
    delta_ut: &[f64],
    d: u32,
    delta: &mut [f64],
) {
    debug_assert_eq!(depths.len(), delta_ut.len());
    debug_assert_eq!(depths.len(), delta.len());
    let _ = width;
    for i in 0..depths.len() {
        if depths[i] == d - 1 {
            delta[i] += delta_ut[i] * sigma[i] as f64;
        }
    }
}

/// Lines 43–47 over a block: fold the `δ` panel into the shared BC
/// vector, one lane (= one source) at a time in lane order — the same
/// source-major accumulation order as the per-source loop, so batching
/// does not perturb the float summation order.
pub fn fold_bc_panel(width: usize, delta: &[f64], sources: &[u32], scale: f64, bc: &mut [f64]) {
    debug_assert_eq!(delta.len(), bc.len() * width);
    debug_assert!(sources.len() <= width);
    for (k, &s) in sources.iter().enumerate() {
        for (v, bcv) in bc.iter_mut().enumerate() {
            if v != s as usize {
                let dv = delta[v * width + k];
                if dv != 0.0 {
                    *bcv += dv * scale;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Multiplicity-weighted variants, used by the graph-reduction pipeline
// (`turbobc::prep`). A reduced vertex stands for `κ(v)` identical
// original vertices (twin classes) carrying a combined source/target
// weight `Ω(v)` (folded subtree members). The invariant maintained by
// these ops is `delta[v] = Ω(v) − 1 + κ(v)·D(v)` where `D(v)` is the
// per-member Brandes dependency, so the unweighted `seed_delta_u`
// (which reads `1 + delta`) propagates exactly `Ω(v) + κ(v)·D(v)`.
// ---------------------------------------------------------------------

/// Multiplies the frontier entry of every vertex in `kappa_gt1` by its
/// class size `κ > 1` (saturating): arrivals *into* a twin class are
/// per-member path counts, arrivals *out of* it carry one copy per
/// member. Applied after [`update_sigma_depth`], so `σ` stores true
/// per-member counts. The source's initial frontier is never scaled —
/// the run counts paths from a single class member.
pub fn scale_frontier(f: &mut [i64], kappa_gt1: &[(u32, i64)]) {
    for &(v, k) in kappa_gt1 {
        let fv = &mut f[v as usize];
        if *fv != 0 {
            *fv = fv.saturating_mul(k);
        }
    }
}

/// Panel analogue of [`scale_frontier`]: scales the lanes of each
/// `κ > 1` vertex that were freshly discovered this level (bit set in
/// `fresh`). Stale lanes keep their masked-out garbage untouched.
pub fn scale_frontier_panel(
    width: usize,
    fresh: &[u64],
    f_t: &mut [i64],
    kappa_gt1: &[(u32, i64)],
) {
    let w = width.div_ceil(64);
    for &(v, kap) in kappa_gt1 {
        let v = v as usize;
        for t in 0..w {
            let mut bits = fresh[v * w + t];
            while bits != 0 {
                let k = t * 64 + bits.trailing_zeros() as usize;
                let i = v * width + k;
                f_t[i] = f_t[i].saturating_mul(kap);
                bits &= bits - 1;
            }
        }
    }
}

/// Seeds the backward `δ` panel with each vertex's target weight
/// `seed[v] = Ω(v) − 1` in every lane (the per-source engines just
/// `copy_from_slice`).
pub fn preseed_delta_panel(width: usize, seed: &[f64], delta: &mut [f64]) {
    debug_assert_eq!(seed.len() * width, delta.len());
    for (v, &s) in seed.iter().enumerate() {
        delta[v * width..(v + 1) * width].fill(s);
    }
}

/// Weighted [`accumulate_delta`]: the class's upstream contribution
/// counts once per member, so the parent-side fold multiplies by
/// `κ(v)`.
pub fn accumulate_delta_weighted(
    depths: &[u32],
    sigma: &[i64],
    kappa: &[f64],
    delta_ut: &[f64],
    d: u32,
    delta: &mut [f64],
) {
    debug_assert_eq!(depths.len(), kappa.len());
    debug_assert_eq!(depths.len(), delta.len());
    for i in 0..depths.len() {
        if depths[i] == d - 1 {
            delta[i] += kappa[i] * delta_ut[i] * sigma[i] as f64;
        }
    }
}

/// Weighted [`accumulate_delta_panel`]: `kappa` is per *vertex* (shared
/// by all lanes).
pub fn accumulate_delta_panel_weighted(
    width: usize,
    depths: &[u32],
    sigma: &[i64],
    kappa: &[f64],
    delta_ut: &[f64],
    d: u32,
    delta: &mut [f64],
) {
    debug_assert_eq!(depths.len(), delta_ut.len());
    debug_assert_eq!(depths.len(), delta.len());
    debug_assert_eq!(kappa.len() * width, delta.len());
    for i in 0..depths.len() {
        if depths[i] == d - 1 {
            delta[i] += kappa[i / width.max(1)] * delta_ut[i] * sigma[i] as f64;
        }
    }
}

/// Weighted [`accumulate_bc`]: recovers the per-member dependency
/// `D(v) = (delta[v] − seed[v]) / κ(v)` and adds it once per original
/// source member (`source_weight = Ω(source)`). Unreached vertices
/// still hold their preseed, so they contribute an exact `0.0`.
pub fn accumulate_bc_weighted(
    delta: &[f64],
    seed: &[f64],
    kappa: &[f64],
    source: usize,
    source_weight: f64,
    scale: f64,
    bc: &mut [f64],
) {
    debug_assert_eq!(delta.len(), bc.len());
    for (v, &dv) in delta.iter().enumerate() {
        if v != source {
            bc[v] += (dv - seed[v]) / kappa[v] * source_weight * scale;
        }
    }
}

/// Weighted [`fold_bc_panel`]: lane `k`'s source carries weight
/// `source_weights[k]`; target-side weights are per vertex.
#[allow(clippy::too_many_arguments)]
pub fn fold_bc_panel_weighted(
    width: usize,
    delta: &[f64],
    seed: &[f64],
    kappa: &[f64],
    sources: &[u32],
    source_weights: &[f64],
    scale: f64,
    bc: &mut [f64],
) {
    debug_assert_eq!(delta.len(), bc.len() * width);
    debug_assert_eq!(sources.len(), source_weights.len());
    debug_assert!(sources.len() <= width);
    for (k, (&s, &sw)) in sources.iter().zip(source_weights).enumerate() {
        for (v, bcv) in bc.iter_mut().enumerate() {
            if v != s as usize {
                let dv = delta[v * width + k] - seed[v];
                if dv != 0.0 {
                    *bcv += dv / kappa[v] * sw * scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_new_frontier_filters_discovered() {
        let f_t = vec![3, 2, 0, 5];
        let sigma = vec![0, 7, 0, 0];
        let mut f = vec![9i64; 4];
        let count = mask_new_frontier(&f_t, &sigma, &mut f);
        assert_eq!(f, vec![3, 0, 0, 5]);
        assert_eq!(count, 2);
    }

    #[test]
    fn update_sigma_depth_records_discoveries() {
        let f = vec![0i64, 2, 1, 0];
        let mut depths = vec![UNDISCOVERED; 4];
        let mut sigma = vec![0i64, 0, 3, 0];
        let any = update_sigma_depth(&f, 4, &mut depths, &mut sigma);
        assert!(any);
        assert_eq!(depths, vec![0, 4, 4, 0]);
        assert_eq!(sigma, vec![0, 2, 4, 0]);
    }

    #[test]
    fn update_sigma_depth_reports_empty_frontier() {
        let f = vec![0i64; 3];
        let mut depths = vec![0u32; 3];
        let mut sigma = vec![0i64; 3];
        assert!(!update_sigma_depth(&f, 2, &mut depths, &mut sigma));
    }

    #[test]
    fn seed_delta_u_selects_depth() {
        let depths = vec![1, 2, 2, 0];
        let sigma = vec![1i64, 2, 4, 0];
        let delta = vec![0.0, 1.0, 3.0, 0.0];
        let mut delta_u = vec![-1.0; 4];
        seed_delta_u(&depths, &sigma, &delta, 2, &mut delta_u);
        assert_eq!(delta_u, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn seed_delta_u_ignores_zero_sigma() {
        let depths = vec![2];
        let sigma = vec![0i64];
        let delta = vec![5.0];
        let mut delta_u = vec![9.0];
        seed_delta_u(&depths, &sigma, &delta, 2, &mut delta_u);
        assert_eq!(delta_u, vec![0.0]);
    }

    #[test]
    fn accumulate_delta_targets_parents() {
        let depths = vec![1, 2, 2];
        let sigma = vec![1i64, 2, 1];
        let delta_ut = vec![0.5, 9.0, 9.0];
        let mut delta = vec![0.0; 3];
        accumulate_delta(&depths, &sigma, &delta_ut, 2, &mut delta);
        assert_eq!(delta, vec![0.5, 0.0, 0.0]);
    }

    #[test]
    fn accumulate_bc_skips_source_and_scales() {
        let delta = vec![1.0, 2.0, 4.0];
        let mut bc = vec![0.0; 3];
        accumulate_bc(&delta, 1, 0.5, &mut bc);
        assert_eq!(bc, vec![0.5, 0.0, 2.0]);
    }

    #[test]
    fn scale_frontier_multiplies_only_active_entries() {
        let mut f = vec![2i64, 0, 5, 1];
        scale_frontier(&mut f, &[(0, 3), (1, 4), (3, i64::MAX)]);
        assert_eq!(f, vec![6, 0, 5, i64::MAX]);
    }

    #[test]
    fn scale_frontier_panel_touches_only_fresh_lanes() {
        // 2 vertices, width 2: vertex 1 has lane 0 fresh, lane 1 stale.
        let fresh = vec![0u64, 0b01];
        let mut f_t = vec![7, 7, 3, 3];
        scale_frontier_panel(2, &fresh, &mut f_t, &[(1, 5)]);
        assert_eq!(f_t, vec![7, 7, 15, 3]);
    }

    #[test]
    fn preseed_delta_panel_broadcasts_per_vertex_seed() {
        let mut delta = vec![0.0; 6];
        preseed_delta_panel(2, &[1.0, 0.0, 3.0], &mut delta);
        assert_eq!(delta, vec![1.0, 1.0, 0.0, 0.0, 3.0, 3.0]);
    }

    #[test]
    fn weighted_delta_accumulation_multiplies_kappa() {
        let depths = vec![1, 2];
        let sigma = vec![1i64, 2];
        let kappa = vec![3.0, 1.0];
        let delta_ut = vec![0.5, 9.0];
        let mut delta = vec![1.0, 0.0];
        accumulate_delta_weighted(&depths, &sigma, &kappa, &delta_ut, 2, &mut delta);
        assert_eq!(delta, vec![1.0 + 3.0 * 0.5, 0.0]);
        let mut panel = vec![1.0, 1.0, 0.0, 0.0];
        let depths_p = vec![1, 1, 2, 2];
        let sigma_p = vec![1i64, 1, 2, 2];
        let ut_p = vec![0.5, 0.25, 9.0, 9.0];
        accumulate_delta_panel_weighted(2, &depths_p, &sigma_p, &kappa, &ut_p, 2, &mut panel);
        assert_eq!(panel, vec![2.5, 1.75, 0.0, 0.0]);
    }

    #[test]
    fn weighted_bc_fold_recovers_per_member_dependency() {
        // delta = Ω−1 + κ·D with Ω−1 = seed; unreached vertex 2 holds
        // its preseed and must contribute exactly zero.
        let delta = vec![1.0 + 2.0 * 3.0, 0.0 + 4.0, 5.0];
        let seed = vec![1.0, 0.0, 5.0];
        let kappa = vec![2.0, 1.0, 2.0];
        let mut bc = vec![0.0; 3];
        accumulate_bc_weighted(&delta, &seed, &kappa, 1, 2.0, 0.5, &mut bc);
        assert_eq!(bc, vec![3.0, 0.0, 0.0]);
        // Panel version, lane weights differ.
        let panel = vec![7.0, 1.0, 4.0, 4.0, 5.0, 5.0];
        let mut bc2 = vec![0.0; 3];
        fold_bc_panel_weighted(
            2,
            &panel,
            &seed,
            &kappa,
            &[1, 0],
            &[2.0, 1.0],
            0.5,
            &mut bc2,
        );
        // Lane 0 (source 1, Ω=2): v0 → (7−1)/2·2·0.5 = 3; v2 → 0.
        // Lane 1 (source 0, Ω=1): v1 → (4−0)/1·1·0.5 = 2; v2 → 0.
        assert_eq!(bc2, vec![3.0, 2.0, 0.0]);
    }
}

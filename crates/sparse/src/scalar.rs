//! The accumulation scalar used by the SpMV kernels.

/// A numeric type SpMV kernels can accumulate.
///
/// Shortest-path counts grow multiplicatively with BFS depth and can
/// exceed any fixed-width integer on dense, shallow graphs (the paper's
/// own 32-bit `int` vectors overflow silently on its web-crawl inputs).
/// This crate gives integers **saturating** accumulation instead: counts
/// cap at `MAX`, which keeps the algorithms panic-free and monotone —
/// dependency ratios `σ_v/σ_w` of saturated counts degrade gracefully to
/// 1 instead of wrapping to garbage. Floats accumulate normally.
pub trait Scalar: Copy + Default + PartialOrd {
    /// Saturating addition for integers; plain addition for floats.
    fn acc(self, other: Self) -> Self;
}

macro_rules! int_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            #[inline]
            fn acc(self, other: Self) -> Self {
                self.saturating_add(other)
            }
        }
    )*};
}

macro_rules! float_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            #[inline]
            fn acc(self, other: Self) -> Self {
                self + other
            }
        }
    )*};
}

int_scalar!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, isize, usize);
float_scalar!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_saturate() {
        assert_eq!(i64::MAX.acc(1), i64::MAX);
        assert_eq!(100i32.acc(23), 123);
        assert_eq!(u8::MAX.acc(200), u8::MAX);
        assert_eq!((-5i64).acc(2), -3);
    }

    #[test]
    fn floats_add() {
        assert_eq!(1.5f64.acc(2.25), 3.75);
        assert_eq!(f32::MAX.acc(f32::MAX), f32::INFINITY);
    }
}

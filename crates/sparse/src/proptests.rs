//! Property-based tests across the sparse formats.

use crate::{Coo, DenseMatrix, Index};
use proptest::prelude::*;

/// Strategy: a random pattern matrix as (n_rows, n_cols, entries).
fn arb_coo() -> impl Strategy<Value = Coo> {
    (1usize..24, 1usize..24).prop_flat_map(|(nr, nc)| {
        let entry = (0..nr as Index, 0..nc as Index);
        proptest::collection::vec(entry, 0..120).prop_map(move |entries| {
            let (rows, cols): (Vec<_>, Vec<_>) = entries.into_iter().unzip();
            Coo::from_entries(nr, nc, rows, cols).expect("generated in bounds")
        })
    })
}

fn arb_square_coo() -> impl Strategy<Value = Coo> {
    (1usize..24).prop_flat_map(|n| {
        let entry = (0..n as Index, 0..n as Index);
        proptest::collection::vec(entry, 0..120).prop_map(move |entries| {
            let (rows, cols): (Vec<_>, Vec<_>) = entries.into_iter().unzip();
            Coo::from_entries(n, n, rows, cols).expect("generated in bounds")
        })
    })
}

proptest! {
    #[test]
    fn csc_round_trips_through_every_format(coo in arb_coo()) {
        let csc = coo.to_csc();
        prop_assert_eq!(csc.to_coo().to_csc(), csc.clone());
        prop_assert_eq!(coo.to_csr().to_csc(), csc.clone());
        prop_assert_eq!(coo.to_cooc().iter().count(), csc.nnz());
    }

    #[test]
    fn nnz_matches_dense(coo in arb_coo()) {
        let dense = DenseMatrix::from_coo(&coo);
        prop_assert_eq!(coo.to_csc().nnz(), dense.nnz());
        prop_assert_eq!(coo.to_csr().nnz(), dense.nnz());
        prop_assert_eq!(coo.to_cooc().nnz(), dense.nnz());
    }

    #[test]
    fn spmv_t_agrees_across_formats(coo in arb_coo(), seed in any::<u64>()) {
        let dense = DenseMatrix::from_coo(&coo);
        let n_rows = coo.n_rows();
        let n_cols = coo.n_cols();
        // Deterministic pseudo-random non-negative input with zeros.
        let x: Vec<i64> = (0..n_rows)
            .map(|i| {
                let h = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64);
                ((h >> 33) % 4) as i64
            })
            .collect();
        let mut expected = vec![0i64; n_cols];
        dense.spmv_t(&x, &mut expected);

        let mut via_csc = vec![0i64; n_cols];
        coo.to_csc().spmv_t(&x, &mut via_csc);
        prop_assert_eq!(&via_csc, &expected);

        let mut via_cooc = vec![0i64; n_cols];
        coo.to_cooc().spmv_t(&x, &mut via_cooc);
        prop_assert_eq!(&via_cooc, &expected);

        let mut via_csr = vec![0i64; n_cols];
        coo.to_csr().spmv_t(&x, &mut via_csr);
        prop_assert_eq!(&via_csr, &expected);
    }

    #[test]
    fn spmv_agrees_across_formats(coo in arb_coo(), seed in any::<u64>()) {
        let dense = DenseMatrix::from_coo(&coo);
        let n_rows = coo.n_rows();
        let n_cols = coo.n_cols();
        let x: Vec<i64> = (0..n_cols)
            .map(|j| {
                let h = seed.wrapping_mul(0xd1b54a32d192ed03).wrapping_add(j as u64);
                ((h >> 33) % 4) as i64
            })
            .collect();
        let mut expected = vec![0i64; n_rows];
        dense.spmv(&x, &mut expected);

        let mut via_csc = vec![0i64; n_rows];
        coo.to_csc().spmv(&x, &mut via_csc);
        prop_assert_eq!(&via_csc, &expected);

        let mut via_cooc = vec![0i64; n_rows];
        coo.to_cooc().spmv(&x, &mut via_cooc);
        prop_assert_eq!(&via_cooc, &expected);

        let mut via_csr = vec![0i64; n_rows];
        coo.to_csr().spmv(&x, &mut via_csr);
        prop_assert_eq!(&via_csr, &expected);
    }

    #[test]
    fn push_over_frontier_equals_full_pull(coo in arb_coo(), seed in any::<u64>()) {
        // The direction-optimizing engine's core identity: scattering
        // over exactly the rows with positive `x` (the sparse frontier)
        // produces the same product as the full transposed SpMV.
        let csr = coo.to_csr();
        let n_rows = coo.n_rows();
        let n_cols = coo.n_cols();
        let x: Vec<i64> = (0..n_rows)
            .map(|i| {
                let h = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64);
                ((h >> 33) % 4) as i64
            })
            .collect();
        let frontier: Vec<Index> = (0..n_rows as Index)
            .filter(|&i| x[i as usize] > 0)
            .collect();

        let mut pushed = vec![0i64; n_cols];
        csr.spmv_t_frontier(&frontier, &x, &mut pushed);
        let mut pulled = vec![0i64; n_cols];
        csr.spmv_t(&x, &mut pulled);
        prop_assert_eq!(&pushed, &pulled);

        // A superset frontier (extra zero-valued rows) changes nothing.
        let all: Vec<Index> = (0..n_rows as Index).collect();
        let mut superset = vec![0i64; n_cols];
        csr.spmv_t_frontier(&all, &x, &mut superset);
        prop_assert_eq!(&superset, &pulled);
    }

    #[test]
    fn transpose_is_involutive(coo in arb_coo()) {
        let csc = coo.to_csc();
        prop_assert_eq!(csc.transpose().transpose(), csc);
    }

    #[test]
    fn spmv_t_equals_spmv_of_transpose(coo in arb_square_coo()) {
        let csc = coo.to_csc();
        let n = csc.n_cols();
        let x: Vec<i64> = (0..n as i64).map(|i| i % 3).collect();
        let mut a = vec![0i64; n];
        let mut b = vec![0i64; n];
        csc.spmv_t(&x, &mut a);
        csc.transpose().spmv(&x, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn symmetrized_matrix_is_symmetric(coo in arb_square_coo()) {
        let mut s = coo;
        s.remove_diagonal();
        s.symmetrize();
        prop_assert!(s.to_csc().is_symmetric());
    }

    #[test]
    fn masked_spmv_matches_manual_mask(coo in arb_square_coo(), seed in any::<u64>()) {
        let csc = coo.to_csc();
        let n = csc.n_cols();
        let x: Vec<i64> = (0..n)
            .map(|i| {
                let h = seed.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(i as u64);
                ((h >> 40) % 3) as i64
            })
            .collect();
        let mask: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();

        let mut got = vec![0i64; n];
        csc.masked_spmv_t(&x, |j| mask[j], &mut got);

        // Manual reference: full gather, then apply mask and positivity.
        let mut full = vec![0i64; n];
        csc.spmv_t(&x, &mut full);
        let expected: Vec<i64> = (0..n)
            .map(|j| if mask[j] && full[j] > 0 { full[j] } else { 0 })
            .collect();
        prop_assert_eq!(got, expected);
    }
}

//! Coordinate (triplet) pattern matrix — the builder format.

use crate::{check_dim, Cooc, Csc, Csr, Index, SparseError};

/// A pattern matrix in coordinate (COO) format: a bag of `(row, col)`
/// entries in arbitrary order, possibly with duplicates until
/// [`Coo::dedup`] is called.
///
/// `Coo` is the *builder* format: graph generators and file readers push
/// edges into a `Coo`, then convert to [`Csc`]/[`Csr`]/[`Cooc`] for
/// computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coo {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<Index>,
    cols: Vec<Index>,
}

impl Coo {
    /// Creates an empty `n_rows × n_cols` COO matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Result<Self, SparseError> {
        check_dim(n_rows)?;
        check_dim(n_cols)?;
        Ok(Coo {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
        })
    }

    /// Creates a COO matrix from parallel index arrays.
    pub fn from_entries(
        n_rows: usize,
        n_cols: usize,
        rows: Vec<Index>,
        cols: Vec<Index>,
    ) -> Result<Self, SparseError> {
        check_dim(n_rows)?;
        check_dim(n_cols)?;
        if rows.len() != cols.len() {
            return Err(SparseError::LengthMismatch {
                rows: rows.len(),
                cols: cols.len(),
            });
        }
        for &r in &rows {
            if r as usize >= n_rows {
                return Err(SparseError::RowOutOfBounds(r, n_rows));
            }
        }
        for &c in &cols {
            if c as usize >= n_cols {
                return Err(SparseError::ColOutOfBounds(c, n_cols));
            }
        }
        Ok(Coo {
            n_rows,
            n_cols,
            rows,
            cols,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries (including any duplicates).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix stores no entries.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row-index array.
    pub fn rows(&self) -> &[Index] {
        &self.rows
    }

    /// Column-index array.
    pub fn cols(&self) -> &[Index] {
        &self.cols
    }

    /// Reserves capacity for `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
        self.cols.reserve(additional);
    }

    /// Pushes one entry. Panics if out of bounds (builder-time invariant).
    pub fn push(&mut self, row: Index, col: Index) {
        assert!((row as usize) < self.n_rows, "row {row} out of bounds");
        assert!((col as usize) < self.n_cols, "col {col} out of bounds");
        self.rows.push(row);
        self.cols.push(col);
    }

    /// Iterates over `(row, col)` entries in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index)> + '_ {
        self.rows.iter().copied().zip(self.cols.iter().copied())
    }

    /// Sorts entries by `(col, row)` and removes exact duplicates.
    ///
    /// Unweighted graphs cannot have parallel edges, so duplicate `(u, v)`
    /// pairs produced by generators or file readers collapse to one.
    pub fn dedup(&mut self) {
        let mut perm: Vec<usize> = (0..self.rows.len()).collect();
        perm.sort_unstable_by_key(|&k| (self.cols[k], self.rows[k]));
        let mut rows = Vec::with_capacity(self.rows.len());
        let mut cols = Vec::with_capacity(self.cols.len());
        for k in perm {
            let entry = (self.rows[k], self.cols[k]);
            if rows.last().map(|&r| (r, *cols.last().unwrap())) != Some(entry) {
                rows.push(entry.0);
                cols.push(entry.1);
            }
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Removes diagonal entries (self-loops contribute nothing to BC and the
    /// paper's datasets are loop-free after preprocessing).
    pub fn remove_diagonal(&mut self) {
        let mut w = 0;
        for k in 0..self.rows.len() {
            if self.rows[k] != self.cols[k] {
                self.rows[w] = self.rows[k];
                self.cols[w] = self.cols[k];
                w += 1;
            }
        }
        self.rows.truncate(w);
        self.cols.truncate(w);
    }

    /// Adds the transpose of every entry (symmetrises the pattern), then
    /// dedups. Used to turn a directed edge list into an undirected graph.
    pub fn symmetrize(&mut self) {
        assert_eq!(
            self.n_rows, self.n_cols,
            "symmetrize requires a square matrix"
        );
        let m = self.rows.len();
        self.rows.reserve(m);
        self.cols.reserve(m);
        for k in 0..m {
            let (r, c) = (self.rows[k], self.cols[k]);
            if r != c {
                self.rows.push(c);
                self.cols.push(r);
            }
        }
        self.dedup();
    }

    /// Returns the transpose as a new COO matrix.
    pub fn transpose(&self) -> Coo {
        Coo {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
        }
    }

    /// Converts to CSC (sorts and dedups first).
    pub fn to_csc(&self) -> Csc {
        let mut sorted = self.clone();
        sorted.dedup();
        // Counting sort of entries into columns.
        let mut col_ptr = vec![0usize; self.n_cols + 1];
        for &c in &sorted.cols {
            col_ptr[c as usize + 1] += 1;
        }
        for j in 0..self.n_cols {
            col_ptr[j + 1] += col_ptr[j];
        }
        // Entries are already sorted by (col, row); row_idx is just the rows.
        Csc::from_parts_unchecked(self.n_rows, self.n_cols, col_ptr, sorted.rows)
    }

    /// Converts to CSR (sorts and dedups first).
    pub fn to_csr(&self) -> Csr {
        self.transpose().to_csc().into_transposed_csr()
    }

    /// Converts to the paper's COOC format (entries sorted by column).
    pub fn to_cooc(&self) -> Cooc {
        let mut sorted = self.clone();
        sorted.dedup();
        Cooc::from_sorted_unchecked(self.n_rows, self.n_cols, sorted.rows, sorted.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        // 4x4:  edges (0,1) (0,2) (1,2) (2,0) (3,3)-loop (1,2)-dup
        Coo::from_entries(4, 4, vec![0, 0, 1, 2, 3, 1], vec![1, 2, 2, 0, 3, 2]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let c = sample();
        assert_eq!(c.n_rows(), 4);
        assert_eq!(c.n_cols(), 4);
        assert_eq!(c.nnz(), 6);
        assert!(!c.is_empty());
    }

    #[test]
    fn rejects_out_of_bounds() {
        let err = Coo::from_entries(2, 2, vec![2], vec![0]).unwrap_err();
        assert_eq!(err, SparseError::RowOutOfBounds(2, 2));
        let err = Coo::from_entries(2, 2, vec![0], vec![5]).unwrap_err();
        assert_eq!(err, SparseError::ColOutOfBounds(5, 2));
    }

    #[test]
    fn rejects_length_mismatch() {
        let err = Coo::from_entries(2, 2, vec![0, 1], vec![0]).unwrap_err();
        assert_eq!(err, SparseError::LengthMismatch { rows: 2, cols: 1 });
    }

    #[test]
    fn dedup_sorts_and_removes_duplicates() {
        let mut c = sample();
        c.dedup();
        assert_eq!(c.nnz(), 5);
        // Sorted by (col, row).
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(2, 0), (0, 1), (0, 2), (1, 2), (3, 3)]);
    }

    #[test]
    fn remove_diagonal_drops_loops() {
        let mut c = sample();
        c.remove_diagonal();
        assert_eq!(c.nnz(), 5);
        assert!(c.iter().all(|(r, col)| r != col));
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let mut c = Coo::from_entries(3, 3, vec![0, 1], vec![1, 2]).unwrap();
        c.symmetrize();
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries.len(), 4);
        assert!(entries.contains(&(1, 0)));
        assert!(entries.contains(&(2, 1)));
    }

    #[test]
    fn transpose_swaps_indices() {
        let c = sample().transpose();
        assert!(c.iter().any(|e| e == (1, 0)));
        assert_eq!(c.nnz(), 6);
    }

    #[test]
    fn push_and_reserve() {
        let mut c = Coo::new(3, 3).unwrap();
        c.reserve(2);
        c.push(0, 1);
        c.push(2, 2);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut c = Coo::new(2, 2).unwrap();
        c.push(3, 0);
    }

    #[test]
    fn empty_matrix() {
        let c = Coo::new(0, 0).unwrap();
        assert!(c.is_empty());
        let csc = c.to_csc();
        assert_eq!(csc.n_cols(), 0);
        assert_eq!(csc.nnz(), 0);
    }
}

//! Bit-sliced **masked SpMM** kernels for batched multi-source BC.
//!
//! TurboBC's per-source engines sweep the whole sparse matrix once per
//! BFS level *per source*, even though the matrix never changes. The
//! batched formulation (Solomonik et al., *Scaling Betweenness
//! Centrality using Communication-Efficient Sparse Matrix
//! Multiplication*; GraphBLAST's masked-SpMM BC) processes a block of
//! `b` sources per sweep instead: the frontier becomes an `n×b`
//! **bit-sliced matrix** and the path-count vector `σ` becomes an `n×b`
//! integer **panel**, so one traversal of the index structure serves
//! all `b` lanes at once.
//!
//! # Layout conventions
//!
//! For a batch width `b`, `w = ceil(b/64)` words per vertex:
//!
//! * **bit matrix** — `&[u64]` of length `n·w`; vertex `v`'s words are
//!   `bits[v*w .. (v+1)*w]`, and lane `k` is bit `k % 64` of word
//!   `k / 64`. Bits `>= b` of the last word are always zero.
//! * **count panel** — `&[i64]` of length `n·b`; vertex `v`, lane `k`
//!   at `panel[v*b + k]`. Entries are only meaningful where the
//!   corresponding bit matrix has the lane set — kernels never read a
//!   panel entry whose frontier bit is clear.
//! * **float panel** — `&[f64]`, same indexing, for the backward stage.
//!
//! Count accumulation uses the same saturating arithmetic as the
//! per-source kernels ([`crate::Scalar::acc`]). Over non-negative
//! counts, saturating addition is associative and commutative
//! (`min(Σ, MAX)`), so every variant — and every batch width — produces
//! bit-identical `σ` panels.
//!
//! Three forward variants mirror the paper's Algorithms 2–4, plus a
//! push-direction gather over CSR for the Beamer direction switch, and
//! `σ`-free bit-only variants that the multi-source BFS
//! (`turbobc::msbfs`) is the `w = 1` special case of.

use crate::{Cooc, Csc, Csr, Index};

/// Number of `u64` words needed for `width` lanes: `ceil(width/64)`.
pub fn lane_words(width: usize) -> usize {
    width.div_ceil(64)
}

/// Visits every set lane in word `t` of a bit row, calling `f(k)` with
/// the lane index.
#[inline]
fn for_each_lane(word: u64, t: usize, mut f: impl FnMut(usize)) {
    let mut bits = word;
    while bits != 0 {
        let k = t * 64 + bits.trailing_zeros() as usize;
        f(k);
        bits &= bits - 1;
    }
}

impl Csc {
    /// Batched masked forward product, **scalar-CSC** mapping
    /// (Algorithm 3 lifted to `b` lanes, one "thread" per column): for
    /// every column `j`, OR-gather the in-neighbours' frontier words,
    /// mask with `!seen[j]` (the fused `σ == 0` test, per lane), write
    /// the fresh lanes to `tbits[j]`, and for each fresh lane `k`
    /// overwrite `f_t[j*b + k]` with the saturating sum of the
    /// in-neighbours' counts.
    ///
    /// Columns with no fresh lane cost only the bit OR — the
    /// amortization: one structure sweep serves all `b` sources.
    /// `tbits` is fully overwritten; `f_t` is written **only at fresh
    /// lanes** (stale entries elsewhere are never read back, per the
    /// module's layout contract), so neither needs pre-clearing.
    pub fn spmm_t_frontier(
        &self,
        width: usize,
        fbits: &[u64],
        f: &[i64],
        seen: &[u64],
        tbits: &mut [u64],
        f_t: &mut [i64],
    ) {
        let w = lane_words(width);
        debug_assert_eq!(fbits.len(), self.n_rows() * w);
        debug_assert_eq!(f.len(), self.n_rows() * width);
        debug_assert_eq!(seen.len(), self.n_cols() * w);
        debug_assert_eq!(tbits.len(), self.n_cols() * w);
        debug_assert_eq!(f_t.len(), self.n_cols() * width);
        let mut acc = vec![0u64; w];
        for j in 0..self.n_cols() {
            let col = self.column(j);
            acc.fill(0);
            for &r in col {
                let rb = r as usize * w;
                for t in 0..w {
                    acc[t] |= fbits[rb + t];
                }
            }
            let mut any = 0u64;
            for t in 0..w {
                acc[t] &= !seen[j * w + t];
                any |= acc[t];
            }
            tbits[j * w..(j + 1) * w].copy_from_slice(&acc);
            if any == 0 {
                continue;
            }
            let out = &mut f_t[j * width..(j + 1) * width];
            for t in 0..w {
                for_each_lane(acc[t], t, |k| out[k] = 0);
            }
            for &r in col {
                let rb = r as usize * w;
                let fb = r as usize * width;
                for t in 0..w {
                    let common = fbits[rb + t] & acc[t];
                    for_each_lane(common, t, |k| {
                        out[k] = out[k].saturating_add(f[fb + k]);
                    });
                }
            }
        }
    }

    /// Batched masked forward product, **vector-CSC** mapping
    /// (Algorithm 4 lifted to `b` lanes, one "warp" per column): same
    /// masked product as [`Csc::spmm_t_frontier`], but the column is
    /// consumed in 32-entry stripes with per-stripe partial sums folded
    /// into the output afterwards — the CPU mirror of the warp's
    /// strided gather plus tree reduction. Saturating addition over
    /// non-negative counts is associative, so the result is
    /// bit-identical to the scalar variant.
    pub fn spmm_t_frontier_vector(
        &self,
        width: usize,
        fbits: &[u64],
        f: &[i64],
        seen: &[u64],
        tbits: &mut [u64],
        f_t: &mut [i64],
    ) {
        let w = lane_words(width);
        debug_assert_eq!(fbits.len(), self.n_rows() * w);
        debug_assert_eq!(f.len(), self.n_rows() * width);
        let mut acc = vec![0u64; w];
        let mut stripe = vec![0i64; width];
        for j in 0..self.n_cols() {
            let col = self.column(j);
            acc.fill(0);
            for &r in col {
                let rb = r as usize * w;
                for t in 0..w {
                    acc[t] |= fbits[rb + t];
                }
            }
            let mut any = 0u64;
            for t in 0..w {
                acc[t] &= !seen[j * w + t];
                any |= acc[t];
            }
            tbits[j * w..(j + 1) * w].copy_from_slice(&acc);
            if any == 0 {
                continue;
            }
            let out = &mut f_t[j * width..(j + 1) * width];
            for t in 0..w {
                for_each_lane(acc[t], t, |k| out[k] = 0);
            }
            for tile in col.chunks(32) {
                for t in 0..w {
                    for_each_lane(acc[t], t, |k| stripe[k] = 0);
                }
                for &r in tile {
                    let rb = r as usize * w;
                    let fb = r as usize * width;
                    for t in 0..w {
                        let common = fbits[rb + t] & acc[t];
                        for_each_lane(common, t, |k| {
                            stripe[k] = stripe[k].saturating_add(f[fb + k]);
                        });
                    }
                }
                for t in 0..w {
                    for_each_lane(acc[t], t, |k| {
                        out[k] = out[k].saturating_add(stripe[k]);
                    });
                }
            }
        }
    }

    /// `σ`-free bit advance: `next[j] = (OR of in-neighbour frontier
    /// words) & !seen[j]`, fully overwriting `next`. The multi-source
    /// BFS (`(∨,∧)` semiring of Then et al.) is exactly this product;
    /// [`Csc::spmm_t_frontier`] adds the count panels on top.
    pub fn spmm_t_bits(&self, words: usize, fbits: &[u64], seen: &[u64], next: &mut [u64]) {
        debug_assert_eq!(fbits.len(), self.n_rows() * words);
        debug_assert_eq!(seen.len(), self.n_cols() * words);
        debug_assert_eq!(next.len(), self.n_cols() * words);
        for j in 0..self.n_cols() {
            let out = &mut next[j * words..(j + 1) * words];
            out.fill(0);
            for &r in self.column(j) {
                let rb = r as usize * words;
                for t in 0..words {
                    out[t] |= fbits[rb + t];
                }
            }
            for t in 0..words {
                out[t] &= !seen[j * words + t];
            }
        }
    }

    /// Batched backward product `Y ← Y + A X` over `width` float lanes:
    /// scatter each column's panel row along its stored entries,
    /// skipping non-positive values — [`Csc::spmv`] per lane, in the
    /// same column/entry order, so each lane's sums are bit-identical
    /// to the per-source backward stage.
    pub fn spmm_panel(&self, width: usize, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n_cols() * width);
        debug_assert_eq!(y.len(), self.n_rows() * width);
        for j in 0..self.n_cols() {
            let xj = &x[j * width..(j + 1) * width];
            if xj.iter().all(|&v| v <= 0.0) {
                continue;
            }
            for &r in self.column(j) {
                let rb = r as usize * width;
                for (k, &v) in xj.iter().enumerate() {
                    if v > 0.0 {
                        y[rb + k] += v;
                    }
                }
            }
        }
    }
}

impl Cooc {
    /// Batched forward product, **scalar-COOC** mapping (Algorithm 2
    /// lifted to `b` lanes, one "thread" per edge): for every entry
    /// `(r, c)` whose row has any frontier lane set, OR the row's words
    /// into `tbits[c]` and add the row's counts into `f_t[c]` for each
    /// set lane. Unmasked, like the per-source scCOOC kernel — the
    /// caller masks afterwards (`tbits &= !seen`). Both `tbits` and
    /// `f_t` accumulate and must be zeroed by the caller.
    pub fn spmm_t_frontier(
        &self,
        width: usize,
        fbits: &[u64],
        f: &[i64],
        tbits: &mut [u64],
        f_t: &mut [i64],
    ) {
        let w = lane_words(width);
        debug_assert_eq!(fbits.len(), self.n_rows() * w);
        debug_assert_eq!(f.len(), self.n_rows() * width);
        debug_assert_eq!(tbits.len(), self.n_cols() * w);
        debug_assert_eq!(f_t.len(), self.n_cols() * width);
        for (r, c) in self.iter() {
            let rb = r as usize * w;
            let fb = r as usize * width;
            let cb = c as usize * w;
            let ob = c as usize * width;
            for t in 0..w {
                let word = fbits[rb + t];
                if word == 0 {
                    continue;
                }
                tbits[cb + t] |= word;
                for_each_lane(word, t, |k| {
                    f_t[ob + k] = f_t[ob + k].saturating_add(f[fb + k]);
                });
            }
        }
    }

    /// `σ`-free bit advance over the edge list: zeroes `next`,
    /// accumulates `next[c] |= fbits[r]` per entry, then masks with
    /// `!seen` — the COOC arm of the multi-source BFS.
    pub fn spmm_t_bits(&self, words: usize, fbits: &[u64], seen: &[u64], next: &mut [u64]) {
        debug_assert_eq!(fbits.len(), self.n_rows() * words);
        debug_assert_eq!(next.len(), self.n_cols() * words);
        next.fill(0);
        for (r, c) in self.iter() {
            let rb = r as usize * words;
            let cb = c as usize * words;
            for t in 0..words {
                next[cb + t] |= fbits[rb + t];
            }
        }
        for (nw, sw) in next.iter_mut().zip(seen) {
            *nw &= !sw;
        }
    }

    /// Batched backward product `Y ← Y + A X` over `width` float
    /// lanes: the per-edge scatter of [`Cooc::spmv`], one lane at a
    /// time in the same entry order.
    pub fn spmm_panel(&self, width: usize, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n_cols() * width);
        debug_assert_eq!(y.len(), self.n_rows() * width);
        for (r, c) in self.iter() {
            let xc = &x[c as usize * width..(c as usize + 1) * width];
            let yb = r as usize * width;
            for (k, &v) in xc.iter().enumerate() {
                if v > 0.0 {
                    y[yb + k] += v;
                }
            }
        }
    }
}

impl Csr {
    /// Batched forward product in the **push** direction: for each row
    /// `u` in `frontier` (the union of all lanes' frontiers), scatter
    /// `u`'s frontier words and counts along its out-edges — the
    /// batched analogue of [`Csr::spmv_t_frontier`], used when the
    /// Beamer switch picks push. Unmasked; `tbits`/`f_t` accumulate
    /// and must be zeroed by the caller, which masks afterwards.
    ///
    /// Rows listed more than once are scattered more than once; callers
    /// must pass a duplicate-free frontier.
    pub fn spmm_t_frontier_push(
        &self,
        width: usize,
        frontier: &[Index],
        fbits: &[u64],
        f: &[i64],
        tbits: &mut [u64],
        f_t: &mut [i64],
    ) {
        let w = lane_words(width);
        debug_assert_eq!(fbits.len(), self.n_rows() * w);
        debug_assert_eq!(f.len(), self.n_rows() * width);
        debug_assert_eq!(tbits.len(), self.n_cols() * w);
        debug_assert_eq!(f_t.len(), self.n_cols() * width);
        for &u in frontier {
            let u = u as usize;
            let ub = u * w;
            let fb = u * width;
            for &c in self.row(u) {
                let cb = c as usize * w;
                let ob = c as usize * width;
                for t in 0..w {
                    let word = fbits[ub + t];
                    if word == 0 {
                        continue;
                    }
                    tbits[cb + t] |= word;
                    for_each_lane(word, t, |k| {
                        f_t[ob + k] = f_t[ob + k].saturating_add(f[fb + k]);
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// Directed: 0→1, 0→2, 1→2, 2→0, 2→3, 3→1 — plus a duplicate-ish
    /// fan so columns have multiple entries.
    fn sample() -> Coo {
        Coo::from_entries(
            5,
            5,
            vec![0, 0, 1, 2, 2, 3, 4, 4],
            vec![1, 2, 2, 0, 3, 1, 2, 3],
        )
        .unwrap()
    }

    /// Expands a bit matrix + panel pair into per-lane (x, mask) inputs
    /// and checks each lane against the per-source reference kernels.
    fn reference_masked_lane(
        csc: &Csc,
        width: usize,
        lane: usize,
        fbits: &[u64],
        f: &[i64],
        seen: &[u64],
    ) -> (Vec<u64>, Vec<i64>) {
        let w = lane_words(width);
        let n = csc.n_rows();
        let (t, bit) = (lane / 64, 1u64 << (lane % 64));
        let x: Vec<i64> = (0..n)
            .map(|v| {
                if fbits[v * w + t] & bit != 0 {
                    f[v * width + lane]
                } else {
                    0
                }
            })
            .collect();
        let mut y = vec![0i64; csc.n_cols()];
        csc.masked_spmv_t(&x, |j| seen[j * w + t] & bit == 0, &mut y);
        // Reference fresh bits: y > 0 at unseen columns.
        let fresh: Vec<u64> = (0..csc.n_cols())
            .map(|j| {
                if y[j] > 0 && seen[j * w + t] & bit == 0 {
                    bit
                } else {
                    0
                }
            })
            .collect();
        (fresh, y)
    }

    /// A deterministic mid-BFS state with `width` lanes: lane k's
    /// frontier is vertex `k % n` plus `(k*3) % n`, seen marks
    /// `(k+1) % n`.
    fn state(n: usize, width: usize) -> (Vec<u64>, Vec<i64>, Vec<u64>) {
        let w = lane_words(width);
        let mut fbits = vec![0u64; n * w];
        let mut f = vec![0i64; n * width];
        let mut seen = vec![0u64; n * w];
        for k in 0..width {
            let (t, bit) = (k / 64, 1u64 << (k % 64));
            for (i, v) in [k % n, (k * 3) % n].into_iter().enumerate() {
                fbits[v * w + t] |= bit;
                f[v * width + k] = (k + i + 1) as i64;
            }
            let s = (k + 1) % n;
            seen[s * w + t] |= bit;
        }
        (fbits, f, seen)
    }

    #[test]
    fn csc_scalar_matches_per_source_masked_spmv_per_lane() {
        for width in [1usize, 3, 64, 65, 130] {
            let csc = sample().to_csc();
            let n = csc.n_rows();
            let w = lane_words(width);
            let (fbits, f, seen) = state(n, width);
            let mut tbits = vec![0xdeadbeefu64; n * w];
            let mut f_t = vec![-1i64; n * width];
            csc.spmm_t_frontier(width, &fbits, &f, &seen, &mut tbits, &mut f_t);
            for lane in 0..width {
                let (t, bit) = (lane / 64, 1u64 << (lane % 64));
                let (fresh, y) = reference_masked_lane(&csc, width, lane, &fbits, &f, &seen);
                for j in 0..n {
                    assert_eq!(
                        tbits[j * w + t] & bit,
                        fresh[j],
                        "width {width} lane {lane} col {j} fresh bit"
                    );
                    if fresh[j] != 0 {
                        assert_eq!(
                            f_t[j * width + lane],
                            y[j],
                            "width {width} lane {lane} col {j} count"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vector_variant_is_bit_identical_to_scalar() {
        for width in [1usize, 3, 64, 65] {
            let csc = sample().to_csc();
            let n = csc.n_rows();
            let w = lane_words(width);
            let (fbits, f, seen) = state(n, width);
            let (mut tb1, mut ft1) = (vec![0u64; n * w], vec![0i64; n * width]);
            let (mut tb2, mut ft2) = (vec![0u64; n * w], vec![0i64; n * width]);
            csc.spmm_t_frontier(width, &fbits, &f, &seen, &mut tb1, &mut ft1);
            csc.spmm_t_frontier_vector(width, &fbits, &f, &seen, &mut tb2, &mut ft2);
            assert_eq!(tb1, tb2, "width {width}: fresh bits");
            for j in 0..n {
                for t in 0..w {
                    for_each_lane(tb1[j * w + t], t, |k| {
                        assert_eq!(ft1[j * width + k], ft2[j * width + k], "col {j} lane {k}");
                    });
                }
            }
        }
    }

    #[test]
    fn cooc_after_masking_matches_csc() {
        for width in [1usize, 3, 65] {
            let coo = sample();
            let csc = coo.to_csc();
            let cooc = coo.to_cooc();
            let n = csc.n_rows();
            let w = lane_words(width);
            let (fbits, f, seen) = state(n, width);
            let (mut tb1, mut ft1) = (vec![0u64; n * w], vec![0i64; n * width]);
            csc.spmm_t_frontier(width, &fbits, &f, &seen, &mut tb1, &mut ft1);
            let (mut tb2, mut ft2) = (vec![0u64; n * w], vec![0i64; n * width]);
            cooc.spmm_t_frontier(width, &fbits, &f, &mut tb2, &mut ft2);
            for (j, (got, want)) in tb2.chunks(w).zip(tb1.chunks(w)).enumerate() {
                for t in 0..w {
                    let masked = got[t] & !seen[j * w + t];
                    assert_eq!(masked, want[t], "width {width} col {j} word {t}");
                    for_each_lane(masked, t, |k| {
                        assert_eq!(ft2[j * width + k], ft1[j * width + k], "col {j} lane {k}");
                    });
                }
            }
        }
    }

    #[test]
    fn push_over_full_frontier_matches_csc() {
        for width in [1usize, 64, 70] {
            let coo = sample();
            let csc = coo.to_csc();
            let csr = coo.to_csr();
            let n = csc.n_rows();
            let w = lane_words(width);
            let (fbits, f, seen) = state(n, width);
            let frontier: Vec<Index> = (0..n as Index)
                .filter(|&v| {
                    fbits[v as usize * w..(v as usize + 1) * w]
                        .iter()
                        .any(|&x| x != 0)
                })
                .collect();
            let (mut tb1, mut ft1) = (vec![0u64; n * w], vec![0i64; n * width]);
            csc.spmm_t_frontier(width, &fbits, &f, &seen, &mut tb1, &mut ft1);
            let (mut tb2, mut ft2) = (vec![0u64; n * w], vec![0i64; n * width]);
            csr.spmm_t_frontier_push(width, &frontier, &fbits, &f, &mut tb2, &mut ft2);
            for j in 0..n {
                for t in 0..w {
                    let masked = tb2[j * w + t] & !seen[j * w + t];
                    assert_eq!(masked, tb1[j * w + t], "width {width} col {j}");
                    for_each_lane(masked, t, |k| {
                        assert_eq!(ft2[j * width + k], ft1[j * width + k], "col {j} lane {k}");
                    });
                }
            }
        }
    }

    #[test]
    fn bit_advance_matches_frontier_variant_bits() {
        let coo = sample();
        let csc = coo.to_csc();
        let cooc = coo.to_cooc();
        let n = csc.n_rows();
        let width = 64;
        let w = lane_words(width);
        let (fbits, f, seen) = state(n, width);
        let (mut tb, mut ft) = (vec![0u64; n * w], vec![0i64; n * width]);
        csc.spmm_t_frontier(width, &fbits, &f, &seen, &mut tb, &mut ft);
        let mut next = vec![0u64; n * w];
        csc.spmm_t_bits(w, &fbits, &seen, &mut next);
        assert_eq!(next, tb, "CSC bit advance == frontier variant's bits");
        let mut next_c = vec![0xffu64; n * w];
        cooc.spmm_t_bits(w, &fbits, &seen, &mut next_c);
        assert_eq!(next_c, tb, "COOC bit advance agrees");
    }

    #[test]
    fn counts_saturate_like_the_scalar_kernels() {
        // Two frontier vertices both feeding column 2 with near-MAX
        // counts: the panel sum must clamp, not wrap.
        let coo = Coo::from_entries(3, 3, vec![0, 1], vec![2, 2]).unwrap();
        let csc = coo.to_csc();
        let width = 3;
        let w = lane_words(width);
        let mut fbits = vec![0u64; 3 * w];
        let mut f = vec![0i64; 3 * width];
        for v in [0usize, 1] {
            fbits[v * w] |= 0b10; // lane 1 only
            f[v * width + 1] = i64::MAX - 1;
        }
        let seen = vec![0u64; 3 * w];
        let (mut tb, mut ft) = (vec![0u64; 3 * w], vec![0i64; 3 * width]);
        csc.spmm_t_frontier(width, &fbits, &f, &seen, &mut tb, &mut ft);
        assert_eq!(tb[2 * w], 0b10);
        assert_eq!(ft[2 * width + 1], i64::MAX);
        let (mut tb2, mut ft2) = (vec![0u64; 3 * w], vec![0i64; 3 * width]);
        csc.spmm_t_frontier_vector(width, &fbits, &f, &seen, &mut tb2, &mut ft2);
        assert_eq!(ft2[2 * width + 1], i64::MAX);
    }

    #[test]
    fn backward_panel_matches_per_lane_spmv() {
        for width in [1usize, 3, 65] {
            let coo = sample();
            let csc = coo.to_csc();
            let cooc = coo.to_cooc();
            let n = csc.n_rows();
            let x: Vec<f64> = (0..n * width)
                .map(|i| {
                    if i % 3 == 0 {
                        0.0
                    } else {
                        (i % 7) as f64 * 0.25
                    }
                })
                .collect();
            let mut y_csc = vec![0.0f64; n * width];
            csc.spmm_panel(width, &x, &mut y_csc);
            let mut y_cooc = vec![0.0f64; n * width];
            cooc.spmm_panel(width, &x, &mut y_cooc);
            for lane in 0..width {
                let xl: Vec<f64> = (0..n).map(|v| x[v * width + lane]).collect();
                let mut want = vec![0.0f64; n];
                csc.spmv(&xl, &mut want);
                for v in 0..n {
                    assert_eq!(y_csc[v * width + lane], want[v], "csc lane {lane} v {v}");
                    assert_eq!(y_cooc[v * width + lane], want[v], "cooc lane {lane} v {v}");
                }
            }
        }
    }

    #[test]
    fn lane_words_rounds_up() {
        assert_eq!(lane_words(1), 1);
        assert_eq!(lane_words(64), 1);
        assert_eq!(lane_words(65), 2);
        assert_eq!(lane_words(128), 2);
        assert_eq!(lane_words(129), 3);
    }
}

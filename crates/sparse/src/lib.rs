//! Sparse matrix storage formats and sparse matrix–vector products for the
//! TurboBC reproduction.
//!
//! The TurboBC paper (Artiles & Saeed, ICPP Workshops '21) represents an
//! unweighted graph by the *pattern* of its sparse adjacency matrix `A`
//! (`A[i][j] = 1` iff there is an edge `i → j`) and formulates betweenness
//! centrality as a sequence of masked sparse matrix–vector products. To
//! minimise the device memory footprint, the non-zero *values* are never
//! stored — only the index structure is. This crate therefore implements
//! **pattern matrices**: index structure without a value array.
//!
//! Four storage formats are provided:
//!
//! * [`Coo`] — coordinate triplets in arbitrary order; the builder format.
//! * [`Cooc`] — the paper's "COOC" format: the COO entries of `A` sorted by
//!   column, stored as the pair of arrays `row_a` / `col_a` (Figure 1 of the
//!   paper). One-thread-per-*edge* kernels (`scCOOC`) iterate it directly.
//! * [`Csc`] — compressed sparse column: `col_ptr` (length `n_cols + 1`) and
//!   `row_idx` (length `m`). One-thread-per-*vertex* kernels (`scCSC`) and
//!   one-warp-per-vertex kernels (`veCSC`) iterate its columns.
//! * [`Csr`] — compressed sparse row; provided for completeness, for the
//!   baselines (gunrock-like / ligra-like traverse out-neighbour lists), and
//!   for transposition tests.
//!
//! All formats support the two multiplication directions needed by Brandes'
//! algorithm in linear-algebraic form:
//!
//! * `y ← Aᵀ x` ([`Csc::spmv_t`], [`Cooc::spmv_t`]) — the *forward* (BFS)
//!   direction: path counts flow along edges `u → v`.
//! * `y ← A x` ([`Csc::spmv`], [`Cooc::spmv`]) — the *backward* (dependency
//!   accumulation) direction: dependencies flow from children back to
//!   parents. (The paper's pseudocode writes `Aᵀ` in both stages, which is
//!   only correct for symmetric matrices; see `DESIGN.md` §2.)
//!
//! Indices are stored as `u32` (the paper uses 32-bit `int` arrays on the
//! device); matrices are limited to `u32::MAX` rows/columns and entries.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod coo;
mod cooc;
mod csc;
mod csr;
mod delta;
mod dense;
mod error;
pub mod ops;
mod scalar;
pub mod semiring;
mod spmm;

pub use scalar::Scalar;
pub use spmm::lane_words;

pub use coo::Coo;
pub use cooc::Cooc;
pub use csc::Csc;
pub use csr::Csr;
pub use delta::DeltaCsc;
pub use dense::DenseMatrix;
pub use error::SparseError;

/// Vertex / row / column index type used throughout the workspace.
///
/// The paper stores all index arrays as 32-bit integers on the device; we do
/// the same, which also halves memory traffic relative to `usize` on 64-bit
/// hosts.
pub type Index = u32;

/// Checks that a dimension fits in [`Index`].
pub(crate) fn check_dim(dim: usize) -> Result<(), SparseError> {
    if dim > Index::MAX as usize {
        Err(SparseError::DimensionTooLarge(dim))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod proptests;

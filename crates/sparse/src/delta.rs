//! Delta-aware CSC view for dynamic graphs.
//!
//! A [`DeltaCsc`] layers two CSC-shaped overlays — an *insert* log and a
//! *delete* log (tombstones) — over a borrowed base [`Csc`], presenting
//! the updated pattern `(base ∖ deletes) ∪ inserts` without rebuilding
//! the base arrays. Every product the batched BC engine needs is
//! mirrored here (`spmv_t` / `masked_spmv_t` / `spmv`, the bit-sliced
//! [`DeltaCsc::spmm_t_frontier`] and the backward
//! [`DeltaCsc::spmm_panel`]), iterating each logical column as a sorted
//! three-way merge. Because base columns are row-sorted and the overlays
//! are sorted at construction, the merged entry order is **identical**
//! to the column order of a freshly materialised CSC — so saturating
//! `σ` sums and `f64` dependency sums are bit-identical to a full
//! rebuild ([`DeltaCsc::materialize`] is the test oracle for this).
//!
//! The view is square-matrix oriented (adjacency patterns): rows and
//! columns share the base's dimensions, and overlays are validated
//! against them.

use crate::{lane_words, Csc, Index, SparseError};

/// A CSC pattern plus insert/delete overlays: the updated matrix
/// `(base ∖ deletes) ∪ inserts` as a borrowing view.
///
/// Semantics per entry `(r, c)`:
/// * in `inserts` → present (even if also tombstoned — an insert after
///   a delete of a base entry re-adds it);
/// * in `base` and not in `deletes` → present;
/// * otherwise absent.
///
/// Duplicate inserts of a live base entry and deletes of an absent
/// entry are tolerated: the merge emits each logical entry exactly once.
#[derive(Debug, Clone)]
pub struct DeltaCsc<'a> {
    base: &'a Csc,
    ins_ptr: Vec<usize>,
    ins_row: Vec<Index>,
    del_ptr: Vec<usize>,
    del_row: Vec<Index>,
    nnz: usize,
}

/// Builds a CSC-shaped overlay (`ptr`, sorted/deduped per-column rows)
/// from `(row, col)` arcs, validating bounds.
fn overlay(
    n_rows: usize,
    n_cols: usize,
    arcs: &[(Index, Index)],
) -> Result<(Vec<usize>, Vec<Index>), SparseError> {
    let mut sorted: Vec<(Index, Index)> = Vec::with_capacity(arcs.len());
    for &(r, c) in arcs {
        if r as usize >= n_rows {
            return Err(SparseError::RowOutOfBounds(r, n_rows));
        }
        if c as usize >= n_cols {
            return Err(SparseError::ColOutOfBounds(c, n_cols));
        }
        sorted.push((c, r));
    }
    sorted.sort_unstable();
    sorted.dedup();
    let mut ptr = vec![0usize; n_cols + 1];
    for &(c, _) in &sorted {
        ptr[c as usize + 1] += 1;
    }
    for j in 0..n_cols {
        ptr[j + 1] += ptr[j];
    }
    let rows = sorted.into_iter().map(|(_, r)| r).collect();
    Ok((ptr, rows))
}

/// Sorted merge over one logical column: base rows (minus tombstones)
/// interleaved with insert rows, ascending, each emitted once.
struct MergedCol<'b> {
    base: &'b [Index],
    dels: &'b [Index],
    ins: &'b [Index],
    bi: usize,
    di: usize,
    ii: usize,
}

impl Iterator for MergedCol<'_> {
    type Item = Index;

    fn next(&mut self) -> Option<Index> {
        loop {
            let b = self.base.get(self.bi).copied();
            let i = self.ins.get(self.ii).copied();
            match (b, i) {
                (None, None) => return None,
                (None, Some(iv)) => {
                    self.ii += 1;
                    return Some(iv);
                }
                (Some(bv), iopt) => {
                    if let Some(iv) = iopt {
                        if iv < bv {
                            self.ii += 1;
                            return Some(iv);
                        }
                        if iv == bv {
                            // Inserted entry shadows the base one (and any
                            // tombstone): emit once, consume both.
                            self.ii += 1;
                            self.bi += 1;
                            return Some(bv);
                        }
                    }
                    self.bi += 1;
                    while self.di < self.dels.len() && self.dels[self.di] < bv {
                        self.di += 1;
                    }
                    if self.di < self.dels.len() && self.dels[self.di] == bv {
                        self.di += 1;
                        continue; // tombstoned base entry
                    }
                    return Some(bv);
                }
            }
        }
    }
}

impl<'a> DeltaCsc<'a> {
    /// Builds the view from `(row, col)` arc lists. Overlays are sorted
    /// and deduplicated here; arcs out of the base's bounds are
    /// rejected. Duplicate inserts of live base entries and deletes of
    /// absent entries are accepted (the merge neutralises them), so the
    /// caller may pass its raw logs.
    pub fn new(
        base: &'a Csc,
        inserts: &[(Index, Index)],
        deletes: &[(Index, Index)],
    ) -> Result<Self, SparseError> {
        let (ins_ptr, ins_row) = overlay(base.n_rows(), base.n_cols(), inserts)?;
        let (del_ptr, del_row) = overlay(base.n_rows(), base.n_cols(), deletes)?;
        let mut view = DeltaCsc {
            base,
            ins_ptr,
            ins_row,
            del_ptr,
            del_row,
            nnz: 0,
        };
        let mut nnz = 0usize;
        for j in 0..view.n_cols() {
            nnz += view.col_iter(j).count();
        }
        view.nnz = nnz;
        Ok(view)
    }

    /// Number of rows (the base's).
    pub fn n_rows(&self) -> usize {
        self.base.n_rows()
    }

    /// Number of columns (the base's).
    pub fn n_cols(&self) -> usize {
        self.base.n_cols()
    }

    /// Number of logical entries after applying both overlays.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The borrowed base pattern.
    pub fn base(&self) -> &Csc {
        self.base
    }

    /// Iterates the logical entries of column `j` in ascending row
    /// order — the same order a materialised CSC would store them.
    fn col_iter(&self, j: usize) -> MergedCol<'_> {
        MergedCol {
            base: self.base.column(j),
            dels: &self.del_row[self.del_ptr[j]..self.del_ptr[j + 1]],
            ins: &self.ins_row[self.ins_ptr[j]..self.ins_ptr[j + 1]],
            bi: 0,
            di: 0,
            ii: 0,
        }
    }

    /// Visits the logical entries of column `j` in ascending row order.
    pub fn for_col(&self, j: usize, mut f: impl FnMut(Index)) {
        for r in self.col_iter(j) {
            f(r);
        }
    }

    /// Membership test for the logical entry `(row, col)`.
    pub fn contains(&self, row: Index, col: Index) -> bool {
        let j = col as usize;
        if j >= self.n_cols() || row as usize >= self.n_rows() {
            return false;
        }
        let ins = &self.ins_row[self.ins_ptr[j]..self.ins_ptr[j + 1]];
        if ins.binary_search(&row).is_ok() {
            return true;
        }
        if self.base.column(j).binary_search(&row).is_err() {
            return false;
        }
        let dels = &self.del_row[self.del_ptr[j]..self.del_ptr[j + 1]];
        dels.binary_search(&row).is_err()
    }

    /// `y ← y + Aᵀ x` over the updated pattern — mirror of
    /// [`Csc::spmv_t`].
    pub fn spmv_t<T>(&self, x: &[T], y: &mut [T])
    where
        T: crate::Scalar,
    {
        assert_eq!(x.len(), self.n_rows(), "x must have one entry per row");
        assert_eq!(y.len(), self.n_cols(), "y must have one entry per column");
        for j in 0..self.n_cols() {
            let mut sum = T::default();
            for r in self.col_iter(j) {
                sum = sum.acc(x[r as usize]);
            }
            y[j] = y[j].acc(sum);
        }
    }

    /// Masked gather over the updated pattern — mirror of
    /// [`Csc::masked_spmv_t`] (Algorithm 3's fused `σ == 0` mask).
    pub fn masked_spmv_t<T>(&self, x: &[T], mask: impl Fn(usize) -> bool, y: &mut [T])
    where
        T: crate::Scalar,
    {
        assert_eq!(x.len(), self.n_rows(), "x must have one entry per row");
        assert_eq!(y.len(), self.n_cols(), "y must have one entry per column");
        let zero = T::default();
        for j in 0..self.n_cols() {
            if mask(j) {
                let mut sum = T::default();
                for r in self.col_iter(j) {
                    sum = sum.acc(x[r as usize]);
                }
                if sum > zero {
                    y[j] = sum;
                }
            }
        }
    }

    /// `y ← y + A x` over the updated pattern — mirror of [`Csc::spmv`]
    /// (the backward-stage scatter).
    pub fn spmv<T>(&self, x: &[T], y: &mut [T])
    where
        T: crate::Scalar,
    {
        assert_eq!(x.len(), self.n_cols(), "x must have one entry per column");
        assert_eq!(y.len(), self.n_rows(), "y must have one entry per row");
        let zero = T::default();
        for j in 0..self.n_cols() {
            let xv = x[j];
            if xv > zero {
                for r in self.col_iter(j) {
                    let ri = r as usize;
                    y[ri] = y[ri].acc(xv);
                }
            }
        }
    }

    /// Batched masked forward product over the updated pattern — the
    /// delta arm of the batched engine's pull step, mirroring
    /// [`Csc::spmm_t_frontier`] loop-for-loop (same masking contract:
    /// `tbits` fully overwritten, `f_t` written at fresh lanes only; no
    /// pre-clear needed). Because merged columns visit rows in the same
    /// ascending order as a rebuilt CSC, the saturating count sums are
    /// bit-identical to running the static kernel on the updated graph.
    pub fn spmm_t_frontier(
        &self,
        width: usize,
        fbits: &[u64],
        f: &[i64],
        seen: &[u64],
        tbits: &mut [u64],
        f_t: &mut [i64],
    ) {
        let w = lane_words(width);
        debug_assert_eq!(fbits.len(), self.n_rows() * w);
        debug_assert_eq!(f.len(), self.n_rows() * width);
        debug_assert_eq!(seen.len(), self.n_cols() * w);
        debug_assert_eq!(tbits.len(), self.n_cols() * w);
        debug_assert_eq!(f_t.len(), self.n_cols() * width);
        let mut acc = vec![0u64; w];
        for j in 0..self.n_cols() {
            acc.fill(0);
            for r in self.col_iter(j) {
                let rb = r as usize * w;
                for t in 0..w {
                    acc[t] |= fbits[rb + t];
                }
            }
            let mut any = 0u64;
            for t in 0..w {
                acc[t] &= !seen[j * w + t];
                any |= acc[t];
            }
            tbits[j * w..(j + 1) * w].copy_from_slice(&acc);
            if any == 0 {
                continue;
            }
            let out = &mut f_t[j * width..(j + 1) * width];
            for t in 0..w {
                let mut bits = acc[t];
                while bits != 0 {
                    out[t * 64 + bits.trailing_zeros() as usize] = 0;
                    bits &= bits - 1;
                }
            }
            for r in self.col_iter(j) {
                let rb = r as usize * w;
                let fb = r as usize * width;
                for t in 0..w {
                    let common = fbits[rb + t] & acc[t];
                    let mut bits = common;
                    while bits != 0 {
                        let k = t * 64 + bits.trailing_zeros() as usize;
                        out[k] = out[k].saturating_add(f[fb + k]);
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    /// Batched backward product `Y ← Y + A X` over the updated pattern —
    /// mirror of [`Csc::spmm_panel`], same column/entry order.
    pub fn spmm_panel(&self, width: usize, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n_cols() * width);
        debug_assert_eq!(y.len(), self.n_rows() * width);
        for j in 0..self.n_cols() {
            let xj = &x[j * width..(j + 1) * width];
            if xj.iter().all(|&v| v <= 0.0) {
                continue;
            }
            for r in self.col_iter(j) {
                let rb = r as usize * width;
                for (k, &v) in xj.iter().enumerate() {
                    if v > 0.0 {
                        y[rb + k] += v;
                    }
                }
            }
        }
    }

    /// Rebuilds the updated pattern as an owned [`Csc`] — compaction,
    /// and the differential oracle the view's tests compare against.
    pub fn materialize(&self) -> Csc {
        let n_cols = self.n_cols();
        let mut col_ptr = vec![0usize; n_cols + 1];
        let mut row_idx = Vec::with_capacity(self.nnz);
        for j in 0..n_cols {
            for r in self.col_iter(j) {
                row_idx.push(r);
            }
            col_ptr[j + 1] = row_idx.len();
        }
        Csc::from_parts(self.n_rows(), n_cols, col_ptr, row_idx)
            .expect("merged columns preserve CSC invariants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Directed 5-vertex pattern with multi-entry columns.
    fn base() -> Csc {
        Coo::from_entries(
            5,
            5,
            vec![0, 0, 1, 2, 2, 3, 4, 4],
            vec![1, 2, 2, 0, 3, 1, 2, 3],
        )
        .unwrap()
        .to_csc()
    }

    /// Reference: rebuild the updated pattern from an edge set.
    fn rebuilt(base: &Csc, ins: &[(Index, Index)], del: &[(Index, Index)]) -> Csc {
        let mut set: BTreeSet<(Index, Index)> = BTreeSet::new();
        for j in 0..base.n_cols() {
            for &r in base.column(j) {
                set.insert((r, j as Index));
            }
        }
        for e in del {
            set.remove(e);
        }
        for &e in ins {
            set.insert(e);
        }
        let (rows, cols): (Vec<Index>, Vec<Index>) = set.into_iter().unzip();
        Coo::from_entries(base.n_rows(), base.n_cols(), rows, cols)
            .unwrap()
            .to_csc()
    }

    #[test]
    fn merge_applies_inserts_and_tombstones() {
        let b = base();
        let ins = [(3, 2), (0, 0)];
        let del = [(1, 2), (4, 3)];
        let view = DeltaCsc::new(&b, &ins, &del).unwrap();
        let want = rebuilt(&b, &ins, &del);
        assert_eq!(view.materialize(), want);
        assert_eq!(view.nnz(), want.nnz());
        assert!(view.contains(3, 2) && view.contains(0, 0));
        assert!(!view.contains(1, 2) && !view.contains(4, 3));
        assert!(view.contains(0, 2), "untouched base entry survives");
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_tolerated() {
        let b = base();
        // (0, 1) already in base; (4, 4) never existed.
        let view = DeltaCsc::new(&b, &[(0, 1), (0, 1)], &[(4, 4)]).unwrap();
        assert_eq!(view.materialize(), b.clone());
        assert_eq!(view.nnz(), b.nnz());
    }

    #[test]
    fn insert_after_delete_restores_the_entry() {
        let b = base();
        let view = DeltaCsc::new(&b, &[(0, 1)], &[(0, 1)]).unwrap();
        assert!(view.contains(0, 1), "insert shadows the tombstone");
        assert_eq!(view.materialize(), b);
    }

    #[test]
    fn out_of_bounds_arcs_are_rejected() {
        let b = base();
        assert_eq!(
            DeltaCsc::new(&b, &[(5, 0)], &[]).unwrap_err(),
            SparseError::RowOutOfBounds(5, 5)
        );
        assert_eq!(
            DeltaCsc::new(&b, &[], &[(0, 9)]).unwrap_err(),
            SparseError::ColOutOfBounds(9, 5)
        );
    }

    #[test]
    fn spmv_family_matches_materialized() {
        let b = base();
        let ins = [(3, 2), (1, 4), (0, 0)];
        let del = [(0, 2), (3, 4)];
        let view = DeltaCsc::new(&b, &ins, &del).unwrap();
        let mat = view.materialize();
        let x: Vec<i64> = (0..5).map(|i| (i as i64 % 3) + 1).collect();

        let mut y1 = vec![0i64; 5];
        let mut y2 = vec![0i64; 5];
        view.spmv_t(&x, &mut y1);
        mat.spmv_t(&x, &mut y2);
        assert_eq!(y1, y2);

        let mask = [true, false, true, true, false];
        let mut m1 = vec![0i64; 5];
        let mut m2 = vec![0i64; 5];
        view.masked_spmv_t(&x, |j| mask[j], &mut m1);
        mat.masked_spmv_t(&x, |j| mask[j], &mut m2);
        assert_eq!(m1, m2);

        let xf: Vec<f64> = x.iter().map(|&v| v as f64 * 0.5).collect();
        let mut s1 = vec![0.0f64; 5];
        let mut s2 = vec![0.0f64; 5];
        view.spmv(&xf, &mut s1);
        mat.spmv(&xf, &mut s2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn spmm_kernels_are_bit_identical_to_materialized() {
        let b = base();
        let ins = [(3, 2), (1, 4)];
        let del = [(0, 2)];
        let view = DeltaCsc::new(&b, &ins, &del).unwrap();
        let mat = view.materialize();
        for width in [1usize, 3, 64, 65] {
            let n = 5;
            let w = lane_words(width);
            let mut fbits = vec![0u64; n * w];
            let mut f = vec![0i64; n * width];
            let mut seen = vec![0u64; n * w];
            for k in 0..width {
                let (t, bit) = (k / 64, 1u64 << (k % 64));
                for v in [k % n, (k * 3) % n] {
                    fbits[v * w + t] |= bit;
                    f[v * width + k] = (k + v + 1) as i64;
                }
                seen[((k + 1) % n) * w + t] |= bit;
            }
            let (mut tb1, mut ft1) = (vec![0u64; n * w], vec![0i64; n * width]);
            let (mut tb2, mut ft2) = (vec![0u64; n * w], vec![0i64; n * width]);
            view.spmm_t_frontier(width, &fbits, &f, &seen, &mut tb1, &mut ft1);
            mat.spmm_t_frontier(width, &fbits, &f, &seen, &mut tb2, &mut ft2);
            assert_eq!(tb1, tb2, "width {width} fresh bits");
            for j in 0..n {
                for t in 0..w {
                    let mut bits = tb1[j * w + t];
                    while bits != 0 {
                        let k = t * 64 + bits.trailing_zeros() as usize;
                        assert_eq!(ft1[j * width + k], ft2[j * width + k], "col {j} lane {k}");
                        bits &= bits - 1;
                    }
                }
            }

            let xp: Vec<f64> = (0..n * width)
                .map(|i| if i % 4 == 0 { 0.0 } else { (i % 5) as f64 })
                .collect();
            let mut p1 = vec![0.0f64; n * width];
            let mut p2 = vec![0.0f64; n * width];
            view.spmm_panel(width, &xp, &mut p1);
            mat.spmm_panel(width, &xp, &mut p2);
            assert_eq!(p1, p2, "width {width} backward panel");
        }
    }

    proptest! {
        #[test]
        fn view_equals_rebuild_for_arbitrary_overlays(
            base_arcs in proptest::collection::vec((0u32..12, 0u32..12), 0..60),
            ins in proptest::collection::vec((0u32..12, 0u32..12), 0..20),
            del in proptest::collection::vec((0u32..12, 0u32..12), 0..20),
        ) {
            let (rows, cols): (Vec<Index>, Vec<Index>) = base_arcs.into_iter().unzip();
            let b = Coo::from_entries(12, 12, rows, cols).unwrap().to_csc();
            let view = DeltaCsc::new(&b, &ins, &del).unwrap();
            let want = rebuilt(&b, &ins, &del);
            prop_assert_eq!(view.materialize(), want.clone());
            prop_assert_eq!(view.nnz(), want.nnz());
            for r in 0..12u32 {
                for c in 0..12u32 {
                    prop_assert_eq!(
                        view.contains(r, c),
                        want.column(c as usize).binary_search(&r).is_ok(),
                        "entry ({}, {})", r, c
                    );
                }
            }
        }
    }
}

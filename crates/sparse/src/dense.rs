//! Dense boolean matrix — the test oracle for the sparse formats.

use crate::{Coo, Index, Scalar};

/// A dense boolean matrix, used only as a reference implementation in tests
/// and property checks. Not intended for large inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<bool>,
}

impl DenseMatrix {
    /// Creates an all-zero dense matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        DenseMatrix {
            n_rows,
            n_cols,
            data: vec![false; n_rows * n_cols],
        }
    }

    /// Builds a dense matrix from any COO pattern.
    pub fn from_coo(coo: &Coo) -> Self {
        let mut m = DenseMatrix::zeros(coo.n_rows(), coo.n_cols());
        for (r, c) in coo.iter() {
            m.set(r as usize, c as usize);
        }
        m
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Sets entry `(i, j)` to one.
    pub fn set(&mut self, i: usize, j: usize) {
        self.data[i * self.n_cols + j] = true;
    }

    /// Reads entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.data[i * self.n_cols + j]
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Reference `y ← y + A x` over the pattern, skipping non-positive `x`
    /// entries exactly like the sparse kernels do.
    pub fn spmv<T>(&self, x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        let zero = T::default();
        for i in 0..self.n_rows {
            for j in 0..self.n_cols {
                if self.get(i, j) && x[j] > zero {
                    y[i] = y[i].acc(x[j]);
                }
            }
        }
    }

    /// Reference `y ← y + Aᵀ x` over the pattern, skipping non-positive `x`.
    pub fn spmv_t<T>(&self, x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_rows);
        assert_eq!(y.len(), self.n_cols);
        let zero = T::default();
        for i in 0..self.n_rows {
            if x[i] > zero {
                for j in 0..self.n_cols {
                    if self.get(i, j) {
                        y[j] = y[j].acc(x[i]);
                    }
                }
            }
        }
    }

    /// Converts the dense pattern back to COO (row-major entry order).
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.n_rows, self.n_cols).expect("dims checked at build");
        for i in 0..self.n_rows {
            for j in 0..self.n_cols {
                if self.get(i, j) {
                    coo.push(i as Index, j as Index);
                }
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_coo() {
        let coo = Coo::from_entries(3, 4, vec![0, 2, 2], vec![3, 0, 1]).unwrap();
        let dense = DenseMatrix::from_coo(&coo);
        assert_eq!(dense.nnz(), 3);
        assert!(dense.get(0, 3));
        assert!(dense.get(2, 0));
        assert!(!dense.get(1, 1));
        let mut back = dense.to_coo();
        back.dedup();
        let mut orig = coo.clone();
        orig.dedup();
        assert_eq!(back.to_csc(), orig.to_csc());
    }

    #[test]
    fn dense_spmv_matches_hand_computation() {
        // A = [1 1; 0 1]
        let coo = Coo::from_entries(2, 2, vec![0, 0, 1], vec![0, 1, 1]).unwrap();
        let dense = DenseMatrix::from_coo(&coo);
        let x = vec![2i32, 3];
        let mut y = vec![0i32; 2];
        dense.spmv(&x, &mut y);
        assert_eq!(y, vec![5, 3]);
        let mut yt = vec![0i32; 2];
        dense.spmv_t(&x, &mut yt);
        assert_eq!(yt, vec![2, 5]);
    }
}

//! The paper's COOC format: coordinate entries of `A` sorted by column.

use crate::{Coo, Index, Scalar, SparseError};

/// A pattern matrix in the paper's **COOC** format — "the transpose of the
/// Coordinate Sparse (COO) format" (Figure 1): the entry list of `A` sorted
/// by column index, stored as two parallel arrays `row_a` (size `m`) and
/// `col_a` (size `m`).
///
/// This is the storage used by the `scCOOC` kernel, which assigns **one
/// thread per edge**: thread `k` reads `row_a[k]`/`col_a[k]` directly, so
/// consecutive threads make perfectly coalesced index loads regardless of
/// the degree distribution — the reason the paper finds COOC "less affected
/// by load unbalance" for graphs with a few extreme-degree vertices
/// (Table 2's mawi group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cooc {
    n_rows: usize,
    n_cols: usize,
    row_a: Vec<Index>,
    col_a: Vec<Index>,
}

impl Cooc {
    /// Builds a COOC matrix from entry arrays that are already sorted by
    /// `(col, row)` and duplicate-free. Used by [`Coo::to_cooc`].
    pub(crate) fn from_sorted_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_a: Vec<Index>,
        col_a: Vec<Index>,
    ) -> Self {
        debug_assert!(
            col_a.windows(2).all(|w| w[0] <= w[1]),
            "COOC must be column-sorted"
        );
        Cooc {
            n_rows,
            n_cols,
            row_a,
            col_a,
        }
    }

    /// Builds a COOC matrix from arbitrary entry arrays, validating bounds
    /// and sorting by column.
    pub fn from_entries(
        n_rows: usize,
        n_cols: usize,
        rows: Vec<Index>,
        cols: Vec<Index>,
    ) -> Result<Self, SparseError> {
        Ok(Coo::from_entries(n_rows, n_cols, rows, cols)?.to_cooc())
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_a.len()
    }

    /// The `row_a` array (row index of each entry, column-sorted order).
    pub fn row_a(&self) -> &[Index] {
        &self.row_a
    }

    /// The `col_a` array (column index of each entry, column-sorted order).
    pub fn col_a(&self) -> &[Index] {
        &self.col_a
    }

    /// Device words needed to store this matrix (the paper transfers only
    /// `row_a` and `col_a` for a COOC run): `2m`.
    pub fn storage_words(&self) -> usize {
        2 * self.nnz()
    }

    /// Sequential `y ← y + Aᵀ x` over the pattern — **Algorithm 2** of the
    /// paper (`scCOOC-SpMV`): for every entry `(r, c)` with `x[r] > 0`,
    /// `y[c] += x[r]`. The sparsity of `x` is exploited by the `> 0` guard.
    pub fn spmv_t<T>(&self, x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_rows, "x must have one entry per row");
        assert_eq!(y.len(), self.n_cols, "y must have one entry per column");
        let zero = T::default();
        for k in 0..self.row_a.len() {
            let xv = x[self.row_a[k] as usize];
            if xv > zero {
                let c = self.col_a[k] as usize;
                y[c] = y[c].acc(xv);
            }
        }
    }

    /// Sequential `y ← y + A x` over the pattern — the backward-stage
    /// direction: for every entry `(r, c)` with `x[c] > 0`, `y[r] += x[c]`.
    /// Same kernel as [`Cooc::spmv_t`] with the roles of the two index
    /// arrays swapped, so a COOC run still needs only one copy of the
    /// structure (preserving the paper's one-format-per-run rule).
    pub fn spmv<T>(&self, x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_cols, "x must have one entry per column");
        assert_eq!(y.len(), self.n_rows, "y must have one entry per row");
        let zero = T::default();
        for k in 0..self.row_a.len() {
            let xv = x[self.col_a[k] as usize];
            if xv > zero {
                let r = self.row_a[k] as usize;
                y[r] = y[r].acc(xv);
            }
        }
    }

    /// Iterates over `(row, col)` entries in column-sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index)> + '_ {
        self.row_a.iter().copied().zip(self.col_a.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The directed graph 0→1, 0→2, 1→2, 2→0, 2→3.
    fn sample() -> Cooc {
        Cooc::from_entries(4, 4, vec![0, 0, 1, 2, 2], vec![1, 2, 2, 0, 3]).unwrap()
    }

    #[test]
    fn entries_are_column_sorted() {
        let m = sample();
        assert!(m.col_a().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.storage_words(), 10);
    }

    #[test]
    fn spmv_t_pushes_along_edges() {
        let m = sample();
        // Frontier at vertex 0: reaches 1 and 2.
        let x = vec![1i32, 0, 0, 0];
        let mut y = vec![0i32; 4];
        m.spmv_t(&x, &mut y);
        assert_eq!(y, vec![0, 1, 1, 0]);
    }

    #[test]
    fn spmv_t_accumulates_path_counts() {
        let m = sample();
        // Frontier at 0 (1 path) and 1 (2 paths): vertex 2 gets 1+2=3.
        let x = vec![1i32, 2, 0, 0];
        let mut y = vec![0i32; 4];
        m.spmv_t(&x, &mut y);
        assert_eq!(y, vec![0, 1, 3, 0]);
    }

    #[test]
    fn spmv_pulls_from_out_neighbours() {
        let m = sample();
        // x on vertex 2: flows back to its in-neighbours 0 and 1 under Aᵀx?
        // No: spmv computes y = A x, i.e. y[r] += x[c] for each edge r→c.
        let x = vec![0.0f32, 0.0, 1.0, 0.0];
        let mut y = vec![0.0f32; 4];
        m.spmv(&x, &mut y);
        // Edges into column 2 are 0→2 and 1→2, so y[0] = y[1] = 1.
        assert_eq!(y, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn spmv_skips_nonpositive_entries() {
        let m = sample();
        let x = vec![-1.0f32, 0.0, 2.0, 0.0];
        let mut y = vec![0.0f32; 4];
        m.spmv_t(&x, &mut y);
        // Only x[2] = 2.0 propagates (2→0 and 2→3).
        assert_eq!(y, vec![2.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn spmv_accumulates_into_existing_y() {
        let m = sample();
        let x = vec![1i64, 0, 0, 0];
        let mut y = vec![10i64; 4];
        m.spmv_t(&x, &mut y);
        assert_eq!(y, vec![10, 11, 11, 10]);
    }

    #[test]
    #[should_panic(expected = "one entry per row")]
    fn spmv_t_checks_lengths() {
        let m = sample();
        let x = vec![0i32; 3];
        let mut y = vec![0i32; 4];
        m.spmv_t(&x, &mut y);
    }
}

//! Error type shared by the sparse formats.

use std::fmt;

/// Errors produced by sparse-matrix constructors and conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A row or column dimension exceeds `u32::MAX`.
    DimensionTooLarge(usize),
    /// An entry's row index is out of bounds: `(row, n_rows)`.
    RowOutOfBounds(u32, usize),
    /// An entry's column index is out of bounds: `(col, n_cols)`.
    ColOutOfBounds(u32, usize),
    /// The index arrays of a coordinate format have different lengths.
    LengthMismatch {
        /// Length of the row-index array.
        rows: usize,
        /// Length of the column-index array.
        cols: usize,
    },
    /// A pointer array is not monotonically non-decreasing at `position`.
    NonMonotonicPointer {
        /// Index in the pointer array at which the violation occurs.
        position: usize,
    },
    /// A pointer array has the wrong length: `(expected, actual)`.
    PointerLength {
        /// Expected pointer-array length (`dim + 1`).
        expected: usize,
        /// Actual pointer-array length.
        actual: usize,
    },
    /// The last pointer entry does not equal the number of stored entries.
    PointerTotal {
        /// Value of the final pointer entry.
        last: usize,
        /// Number of stored index entries.
        nnz: usize,
    },
    /// A vector passed to an SpMV routine has the wrong length:
    /// `(expected, actual)`.
    VectorLength {
        /// Expected vector length.
        expected: usize,
        /// Actual vector length.
        actual: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionTooLarge(d) => {
                write!(f, "dimension {d} exceeds u32::MAX")
            }
            SparseError::RowOutOfBounds(r, n) => {
                write!(f, "row index {r} out of bounds for {n} rows")
            }
            SparseError::ColOutOfBounds(c, n) => {
                write!(f, "column index {c} out of bounds for {n} columns")
            }
            SparseError::LengthMismatch { rows, cols } => {
                write!(
                    f,
                    "row array has {rows} entries but column array has {cols}"
                )
            }
            SparseError::NonMonotonicPointer { position } => {
                write!(f, "pointer array decreases at position {position}")
            }
            SparseError::PointerLength { expected, actual } => {
                write!(f, "pointer array has length {actual}, expected {expected}")
            }
            SparseError::PointerTotal { last, nnz } => {
                write!(f, "final pointer entry {last} does not match nnz {nnz}")
            }
            SparseError::VectorLength { expected, actual } => {
                write!(f, "vector has length {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

//! Compressed sparse row pattern matrix.

use crate::{check_dim, Coo, Csc, Index, Scalar, SparseError};

/// A pattern matrix in **CSR** (compressed sparse row) format: `row_ptr`
/// (length `n_rows + 1`) gives, for each row `i`, the slice
/// `col_idx[row_ptr[i] .. row_ptr[i+1]]` of column indices stored in that
/// row.
///
/// For an adjacency matrix with `A[u][v] = 1` encoding `u → v`, row `u`
/// lists the **out-neighbours** of `u`. The ligra-like and gunrock-like
/// baselines traverse out-neighbour lists, so they consume this format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
}

impl Csr {
    /// Builds a CSR matrix from raw parts, validating every invariant.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
    ) -> Result<Self, SparseError> {
        check_dim(n_rows)?;
        check_dim(n_cols)?;
        if row_ptr.len() != n_rows + 1 {
            return Err(SparseError::PointerLength {
                expected: n_rows + 1,
                actual: row_ptr.len(),
            });
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::NonMonotonicPointer { position: 0 });
        }
        for i in 0..n_rows {
            if row_ptr[i] > row_ptr[i + 1] {
                return Err(SparseError::NonMonotonicPointer { position: i + 1 });
            }
        }
        if *row_ptr.last().unwrap() != col_idx.len() {
            return Err(SparseError::PointerTotal {
                last: *row_ptr.last().unwrap(),
                nnz: col_idx.len(),
            });
        }
        for &c in &col_idx {
            if c as usize >= n_cols {
                return Err(SparseError::ColOutOfBounds(c, n_cols));
            }
        }
        Ok(Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
        })
    }

    pub(crate) fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), n_rows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row-pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn col_idx(&self) -> &[Index] {
        &self.col_idx
    }

    /// The column indices stored in row `i` (out-neighbours of vertex `i`).
    pub fn row(&self, i: usize) -> &[Index] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Number of stored entries in row `i` (the out-degree of vertex `i`).
    pub fn row_len(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Sequential `y ← y + A x` (gather over rows).
    pub fn spmv<T>(&self, x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_cols, "x must have one entry per column");
        assert_eq!(y.len(), self.n_rows, "y must have one entry per row");
        for i in 0..self.n_rows {
            let mut sum = T::default();
            for &c in self.row(i) {
                sum = sum.acc(x[c as usize]);
            }
            y[i] = y[i].acc(sum);
        }
    }

    /// Push-style `y ← y + Aᵀ x` restricted to a sparse frontier: for each
    /// row index `u` in `frontier` with `x[u] > 0`, scatter `x[u]` along
    /// row `u`. Equivalent to [`Csr::spmv_t`] whenever `frontier` contains
    /// every row with a positive entry — the direction-optimised BFS
    /// forward step, where the frontier index list replaces the full scan
    /// over rows.
    ///
    /// Rows listed more than once are scattered more than once; callers
    /// must pass a duplicate-free frontier.
    pub fn spmv_t_frontier<T>(&self, frontier: &[Index], x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_rows, "x must have one entry per row");
        assert_eq!(y.len(), self.n_cols, "y must have one entry per column");
        let zero = T::default();
        for &u in frontier {
            let i = u as usize;
            let xv = x[i];
            if xv > zero {
                for &c in self.row(i) {
                    let ci = c as usize;
                    y[ci] = y[ci].acc(xv);
                }
            }
        }
    }

    /// Sequential `y ← y + Aᵀ x` (scatter along rows).
    pub fn spmv_t<T>(&self, x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_rows, "x must have one entry per row");
        assert_eq!(y.len(), self.n_cols, "y must have one entry per column");
        let zero = T::default();
        for i in 0..self.n_rows {
            let xv = x[i];
            if xv > zero {
                for &c in self.row(i) {
                    let ci = c as usize;
                    y[ci] = y[ci].acc(xv);
                }
            }
        }
    }

    /// Reinterprets this CSR structure as the CSC of the transposed matrix
    /// (`CSR(A)` and `CSC(Aᵀ)` are the same arrays).
    pub fn into_transposed_csc(self) -> Csc {
        Csc::from_parts_unchecked(self.n_cols, self.n_rows, self.row_ptr, self.col_idx)
    }

    /// Converts to CSC (of the same matrix).
    pub fn to_csc(&self) -> Csc {
        self.to_coo().to_csc()
    }

    /// Converts to COO (entries in row-sorted order).
    pub fn to_coo(&self) -> Coo {
        let mut rows = Vec::with_capacity(self.nnz());
        for i in 0..self.n_rows {
            rows.extend(std::iter::repeat_n(i as Index, self.row_len(i)));
        }
        Coo::from_entries(self.n_rows, self.n_cols, rows, self.col_idx.clone())
            .expect("CSR invariants guarantee valid COO")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Directed: 0→1, 0→2, 1→2, 2→0, 2→3.
    fn sample() -> Csr {
        Coo::from_entries(4, 4, vec![0, 0, 1, 2, 2], vec![1, 2, 2, 0, 3])
            .unwrap()
            .to_csr()
    }

    #[test]
    fn rows_list_out_neighbours() {
        let m = sample();
        assert_eq!(m.row(0), &[1, 2]);
        assert_eq!(m.row(1), &[2]);
        assert_eq!(m.row(2), &[0, 3]);
        assert_eq!(m.row(3), &[] as &[Index]);
        assert_eq!(m.row_len(2), 2);
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csr::from_parts(2, 3, vec![0, 1, 2], vec![0, 2]).is_ok());
        assert_eq!(
            Csr::from_parts(2, 2, vec![0, 1, 2], vec![0, 9]).unwrap_err(),
            SparseError::ColOutOfBounds(9, 2)
        );
        assert_eq!(
            Csr::from_parts(1, 1, vec![0], vec![]).unwrap_err(),
            SparseError::PointerLength {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn spmv_matches_csc_spmv() {
        let csr = sample();
        let csc = csr.to_csc();
        let x = vec![1i32, 2, 3, 4];
        let mut y1 = vec![0i32; 4];
        let mut y2 = vec![0i32; 4];
        csr.spmv(&x, &mut y1);
        csc.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmv_t_matches_csc_spmv_t() {
        let csr = sample();
        let csc = csr.to_csc();
        let x = vec![1i32, 0, 2, 0];
        let mut y1 = vec![0i32; 4];
        let mut y2 = vec![0i32; 4];
        csr.spmv_t(&x, &mut y1);
        csc.spmv_t(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmv_t_frontier_matches_full_scatter() {
        let csr = sample();
        let x = vec![1i32, 0, 2, 0];
        let mut full = vec![0i32; 4];
        csr.spmv_t(&x, &mut full);
        // The frontier lists exactly the rows with positive entries.
        let mut pushed = vec![0i32; 4];
        csr.spmv_t_frontier(&[0, 2], &x, &mut pushed);
        assert_eq!(pushed, full);
        // Extra frontier members with zero entries contribute nothing.
        let mut padded = vec![0i32; 4];
        csr.spmv_t_frontier(&[0, 1, 2, 3], &x, &mut padded);
        assert_eq!(padded, full);
        // An empty frontier scatters nothing.
        let mut none = vec![0i32; 4];
        csr.spmv_t_frontier(&[], &x, &mut none);
        assert_eq!(none, vec![0; 4]);
    }

    #[test]
    fn csr_csc_round_trip() {
        let csr = sample();
        assert_eq!(csr.to_csc().to_coo().to_csr(), csr);
    }

    #[test]
    fn csc_into_transposed_csr_shares_arrays() {
        // CSC(A) reinterpreted as CSR gives CSR(Aᵀ): row i of the result
        // lists the in-neighbours of i in A.
        let csc = sample().to_csc();
        let csr_t = csc.clone().into_transposed_csr();
        assert_eq!(csr_t.row(2), csc.column(2));
        assert_eq!(csr_t.row(0), csc.column(0));
    }
}

//! Semiring sparse linear algebra — the Kepner–Gilbert foundation
//! (*Graph Algorithms in the Language of Linear Algebra*, the paper's
//! reference [10] and the source of its BC formulation).
//!
//! A graph algorithm in the language of linear algebra is a sequence of
//! matrix–vector products over a *semiring* `(⊕, ⊗, 0̄, 1̄)`:
//!
//! | semiring | ⊕ | ⊗ | computes |
//! |---|---|---|---|
//! | [`PlusTimes`] | `+` | `×` | path counting (the BC forward stage) |
//! | [`OrAnd`] | `∨` | `∧` | reachability / BFS frontiers |
//! | [`MinPlus`] | `min` | `+` | shortest distances (Bellman–Ford) |
//! | [`MaxMin`] | `max` | `min` | widest / bottleneck paths |
//!
//! [`spmv`]/[`spmv_t`] evaluate `y = A ⊗ x` over any of them for a
//! values-carrying matrix ([`CsrValues`]); the iteration helpers below
//! ([`bellman_ford`], [`reachable`], [`widest_paths`]) are the classic
//! one-matrix algorithms, used as oracles and building blocks elsewhere
//! in the workspace.

use crate::Csr;

/// An algebraic semiring over element type `T`.
pub trait Semiring {
    /// Element type.
    type T: Copy + PartialEq + std::fmt::Debug;
    /// Additive identity `0̄` (and multiplicative annihilator).
    fn zero() -> Self::T;
    /// Multiplicative identity `1̄` (the implicit value of a pattern
    /// matrix entry).
    fn one() -> Self::T;
    /// `⊕` — combines path alternatives.
    fn add(a: Self::T, b: Self::T) -> Self::T;
    /// `⊗` — extends a path by an edge.
    fn mul(a: Self::T, b: Self::T) -> Self::T;
}

/// Classic arithmetic `(+, ×)` over `f64` — path counting.
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type T = f64;
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// Boolean `(∨, ∧)` — reachability.
pub struct OrAnd;

impl Semiring for OrAnd {
    type T = bool;
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(a: bool, b: bool) -> bool {
        a || b
    }
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
}

/// Tropical `(min, +)` — shortest distances. `0̄ = +∞`, `1̄ = 0`.
pub struct MinPlus;

impl Semiring for MinPlus {
    type T = f64;
    fn zero() -> f64 {
        f64::INFINITY
    }
    fn one() -> f64 {
        0.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Bottleneck `(max, min)` — widest paths. `0̄ = 0`, `1̄ = +∞` (an
/// unconstrained edge).
pub struct MaxMin;

impl Semiring for MaxMin {
    type T = f64;
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        f64::INFINITY
    }
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

/// A CSR pattern matrix with one value per stored entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrValues<T> {
    csr: Csr,
    values: Vec<T>,
}

impl<T: Copy> CsrValues<T> {
    /// Pairs a CSR structure with aligned values.
    ///
    /// # Panics
    /// Panics if `values.len() != csr.nnz()`.
    pub fn new(csr: Csr, values: Vec<T>) -> Self {
        assert_eq!(values.len(), csr.nnz(), "one value per stored entry");
        CsrValues { csr, values }
    }

    /// The index structure.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The value array (CSR entry order).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The values of row `i`, aligned with `csr().row(i)`.
    pub fn row_values(&self, i: usize) -> &[T] {
        &self.values[self.csr.row_ptr()[i]..self.csr.row_ptr()[i + 1]]
    }
}

/// `y = A ⊗ x` over semiring `S`: `y_i = ⊕_j A_ij ⊗ x_j`.
pub fn spmv<S: Semiring>(a: &CsrValues<S::T>, x: &[S::T]) -> Vec<S::T> {
    assert_eq!(x.len(), a.csr.n_cols());
    let mut y = vec![S::zero(); a.csr.n_rows()];
    for i in 0..a.csr.n_rows() {
        let mut acc = S::zero();
        for (k, &j) in a.csr.row(i).iter().enumerate() {
            acc = S::add(acc, S::mul(a.row_values(i)[k], x[j as usize]));
        }
        y[i] = acc;
    }
    y
}

/// `y = Aᵀ ⊗ x` over semiring `S` (scatter along rows).
pub fn spmv_t<S: Semiring>(a: &CsrValues<S::T>, x: &[S::T]) -> Vec<S::T> {
    assert_eq!(x.len(), a.csr.n_rows());
    let mut y = vec![S::zero(); a.csr.n_cols()];
    for i in 0..a.csr.n_rows() {
        if x[i] == S::zero() {
            continue;
        }
        for (k, &j) in a.csr.row(i).iter().enumerate() {
            let ji = j as usize;
            y[ji] = S::add(y[ji], S::mul(a.row_values(i)[k], x[i]));
        }
    }
    y
}

/// Pattern SpMV: every stored entry carries `1̄`.
pub fn spmv_pattern<S: Semiring>(a: &Csr, x: &[S::T]) -> Vec<S::T> {
    assert_eq!(x.len(), a.n_cols());
    let mut y = vec![S::zero(); a.n_rows()];
    for i in 0..a.n_rows() {
        let mut acc = S::zero();
        for &j in a.row(i) {
            acc = S::add(acc, x[j as usize]);
        }
        y[i] = acc;
    }
    y
}

/// Bellman–Ford over `(min, +)`: iterates `d ← d ⊕ (Aᵀ ⊗ d)` to the
/// fixed point.
///
/// ```
/// use turbobc_sparse::semiring::{bellman_ford, CsrValues};
/// use turbobc_sparse::Coo;
///
/// // 0 →(1) 1 →(1) 2 and a long direct arc 0 →(5) 2.
/// let coo = Coo::from_entries(3, 3, vec![0, 1, 0], vec![1, 2, 2]).unwrap();
/// let csr = coo.to_csr();
/// // Row order: row0 = [1, 2], row1 = [2].
/// let a = CsrValues::new(csr, vec![1.0, 5.0, 1.0]);
/// assert_eq!(bellman_ford(&a, 0), vec![0.0, 1.0, 2.0]);
/// ```
///
/// `a` holds arc lengths on the *out*-adjacency; returns the distance
/// vector from `source`. Runs at most `n` rounds (no negative cycles are
/// possible with the positive weights this workspace uses, but the guard
/// keeps it total).
pub fn bellman_ford(a: &CsrValues<f64>, source: usize) -> Vec<f64> {
    let n = a.csr.n_rows();
    let mut dist = vec![MinPlus::zero(); n];
    if n == 0 {
        return dist;
    }
    dist[source] = 0.0;
    for _ in 0..n {
        let relaxed = spmv_t::<MinPlus>(a, &dist);
        let mut changed = false;
        for i in 0..n {
            let next = MinPlus::add(dist[i], relaxed[i]);
            if next < dist[i] {
                dist[i] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Reachability over `(∨, ∧)`: the set of vertices reachable from
/// `source` by iterating the boolean frontier product.
pub fn reachable(a: &Csr, source: usize) -> Vec<bool> {
    let n = a.n_rows();
    let mut seen = vec![false; n];
    if n == 0 {
        return seen;
    }
    seen[source] = true;
    loop {
        // frontier product: y_j = ∨_i A_ij ∧ seen_i  (push over out-arcs)
        let mut next = seen.clone();
        for i in 0..n {
            if seen[i] {
                for &j in a.row(i) {
                    next[j as usize] = true;
                }
            }
        }
        if next == seen {
            return seen;
        }
        seen = next;
    }
}

/// Widest (bottleneck) path capacities from `source` over `(max, min)`.
pub fn widest_paths(a: &CsrValues<f64>, source: usize) -> Vec<f64> {
    let n = a.csr.n_rows();
    let mut cap = vec![MaxMin::zero(); n];
    if n == 0 {
        return cap;
    }
    cap[source] = MaxMin::one();
    for _ in 0..n {
        let widened = spmv_t::<MaxMin>(a, &cap);
        let mut changed = false;
        for i in 0..n {
            let next = MaxMin::add(cap[i], widened[i]);
            if next > cap[i] {
                cap[i] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    cap
}

/// PageRank by power iteration over the `(+, ×)` semiring:
/// `r ← (1 − d)/n + d · (Aᵀ_colnorm ⊗ r)` until the L1 change drops
/// below `tol` (or `max_iters`). `a` is the out-adjacency *pattern*;
/// column normalisation (division by out-degree) and the dangling-mass
/// redistribution are folded in. Returns the rank vector (sums to 1).
pub fn pagerank(a: &Csr, damping: f64, tol: f64, max_iters: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let n = a.n_rows();
    if n == 0 {
        return Vec::new();
    }
    let out_deg: Vec<usize> = (0..n).map(|i| a.row_len(i)).collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        // Dangling vertices spread their rank uniformly.
        let dangling: f64 = (0..n).filter(|&i| out_deg[i] == 0).map(|i| rank[i]).sum();
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        for i in 0..n {
            if out_deg[i] > 0 {
                let share = damping * rank[i] / out_deg[i] as f64;
                for &j in a.row(i) {
                    next[j as usize] += share;
                }
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tol {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// 0→1 (w 2), 0→2 (w 5), 1→2 (w 1), 2→3 (w 4).
    fn sample() -> CsrValues<f64> {
        let coo = Coo::from_entries(4, 4, vec![0, 0, 1, 2], vec![1, 2, 2, 3]).unwrap();
        let csr = coo.to_csr();
        // CSR row order: row0 = [1, 2], row1 = [2], row2 = [3].
        CsrValues::new(csr, vec![2.0, 5.0, 1.0, 4.0])
    }

    #[test]
    fn plus_times_counts_paths() {
        // Pattern of sample over PlusTimes from an indicator at 0:
        // one step reaches 1 and 2.
        let a = sample();
        let x = vec![1.0, 0.0, 0.0, 0.0];
        let y = spmv_t::<PlusTimes>(&CsrValues::new(a.csr().clone(), vec![1.0; 4]), &x);
        assert_eq!(y, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn min_plus_spmv_relaxes_edges() {
        let a = sample();
        let mut d = vec![f64::INFINITY; 4];
        d[0] = 0.0;
        let y = spmv_t::<MinPlus>(&a, &d);
        assert_eq!(y[1], 2.0);
        assert_eq!(y[2], 5.0);
        assert!(y[3].is_infinite());
    }

    #[test]
    fn bellman_ford_finds_shortest_distances() {
        let a = sample();
        let d = bellman_ford(&a, 0);
        // 0→1→2 (3) beats 0→2 (5); 0→…→3 = 3 + 4.
        assert_eq!(d, vec![0.0, 2.0, 3.0, 7.0]);
    }

    #[test]
    fn reachability_matches_structure() {
        let a = sample();
        assert_eq!(reachable(a.csr(), 0), vec![true, true, true, true]);
        assert_eq!(reachable(a.csr(), 2), vec![false, false, true, true]);
        assert_eq!(reachable(a.csr(), 3), vec![false, false, false, true]);
    }

    #[test]
    fn widest_path_takes_the_fat_pipe() {
        // Two routes 0→3: via 1 with min capacity 3, via 2 with 5.
        let coo = Coo::from_entries(4, 4, vec![0, 1, 0, 2], vec![1, 3, 2, 3]).unwrap();
        let csr = coo.to_csr();
        // Row order: row0 = [1, 2], row1 = [3], row2 = [3].
        let a = CsrValues::new(csr, vec![3.0, 10.0, 3.0, 5.0]);
        let c = widest_paths(&a, 0);
        assert_eq!(c[3], 5.0, "capacities: {c:?}");
    }

    #[test]
    fn spmv_and_spmv_t_transpose_relation() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        // Over PlusTimes, (Aᵀ x)_j = Σ_i A_ij x_i — compare against the
        // gather on a transposed structure.
        let y_scatter = spmv_t::<PlusTimes>(&a, &x);
        let t = a.csr().to_coo().transpose().to_csr();
        // Rebuild the transposed values by matching entries.
        let mut tv = Vec::new();
        for i in 0..t.n_rows() {
            for &j in t.row(i) {
                let pos = a
                    .csr()
                    .row(j as usize)
                    .iter()
                    .position(|&c| c as usize == i)
                    .unwrap();
                tv.push(a.row_values(j as usize)[pos]);
            }
        }
        let y_gather = spmv::<PlusTimes>(&CsrValues::new(t, tv), &x);
        for (g, s) in y_gather.iter().zip(&y_scatter) {
            assert!((g - s).abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        // Two pages linking to a sink, sink links back to one of them.
        let coo = Coo::from_entries(3, 3, vec![0, 1, 2], vec![2, 2, 0]).unwrap();
        let csr = coo.to_csr();
        let r = pagerank(&csr, 0.85, 1e-12, 200);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(
            r[2] > r[0] && r[2] > r[1],
            "the sink of two links ranks first: {r:?}"
        );
    }

    #[test]
    fn pagerank_uniform_on_a_cycle() {
        let coo = Coo::from_entries(4, 4, vec![0, 1, 2, 3], vec![1, 2, 3, 0]).unwrap();
        let r = pagerank(&coo.to_csr(), 0.85, 1e-12, 500);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn pagerank_handles_dangling_vertices() {
        // 0 → 1, 1 dangles.
        let coo = Coo::from_entries(2, 2, vec![0], vec![1]).unwrap();
        let r = pagerank(&coo.to_csr(), 0.85, 1e-12, 500);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r[1] > r[0]);
    }

    #[test]
    #[should_panic(expected = "one value per stored entry")]
    fn value_length_must_match() {
        let a = sample();
        CsrValues::new(a.csr().clone(), vec![1.0]);
    }
}

//! Compressed sparse column pattern matrix.

use crate::{check_dim, Coo, Csr, Index, Scalar, SparseError};

/// A pattern matrix in **CSC** (compressed sparse column) format:
/// `col_ptr` (length `n_cols + 1`) gives, for each column `j`, the slice
/// `row_idx[col_ptr[j] .. col_ptr[j+1]]` of row indices with a stored entry
/// in that column.
///
/// This is the storage used by the `scCSC` (one thread per vertex/column,
/// Algorithm 3) and `veCSC` (one warp per column, Algorithm 4) kernels. In
/// graph terms, when `A[u][v] = 1` encodes the edge `u → v`, column `v`
/// lists the **in-neighbours** of `v`, so a gather over a column computes
/// one component of `Aᵀ x` — the BFS "pull" direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csc {
    n_rows: usize,
    n_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<Index>,
}

impl Csc {
    /// Builds a CSC matrix from raw parts, validating every invariant.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Index>,
    ) -> Result<Self, SparseError> {
        check_dim(n_rows)?;
        check_dim(n_cols)?;
        if col_ptr.len() != n_cols + 1 {
            return Err(SparseError::PointerLength {
                expected: n_cols + 1,
                actual: col_ptr.len(),
            });
        }
        if col_ptr[0] != 0 {
            return Err(SparseError::NonMonotonicPointer { position: 0 });
        }
        for j in 0..n_cols {
            if col_ptr[j] > col_ptr[j + 1] {
                return Err(SparseError::NonMonotonicPointer { position: j + 1 });
            }
        }
        if *col_ptr.last().unwrap() != row_idx.len() {
            return Err(SparseError::PointerTotal {
                last: *col_ptr.last().unwrap(),
                nnz: row_idx.len(),
            });
        }
        for &r in &row_idx {
            if r as usize >= n_rows {
                return Err(SparseError::RowOutOfBounds(r, n_rows));
            }
        }
        Ok(Csc {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
        })
    }

    pub(crate) fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Index>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), n_cols + 1);
        debug_assert_eq!(*col_ptr.last().unwrap_or(&0), row_idx.len());
        Csc {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The column-pointer array (`CP_A` in the paper, zero-based here).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row-index array (`row_A` in the paper).
    pub fn row_idx(&self) -> &[Index] {
        &self.row_idx
    }

    /// The row indices stored in column `j`.
    pub fn column(&self, j: usize) -> &[Index] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Number of stored entries in column `j` (the in-degree of vertex `j`
    /// for an adjacency matrix).
    pub fn column_len(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Device words needed to store this matrix (the paper transfers
    /// `CP_A` and `row_A` for a CSC run): `n + 1 + m`.
    pub fn storage_words(&self) -> usize {
        self.n_cols + 1 + self.nnz()
    }

    /// Sequential `y[j] ← Σ_{i ∈ column j} x[i]` for all columns, i.e.
    /// `y ← Aᵀ x` (unmasked gather).
    pub fn spmv_t<T>(&self, x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_rows, "x must have one entry per row");
        assert_eq!(y.len(), self.n_cols, "y must have one entry per column");
        for j in 0..self.n_cols {
            let mut sum = T::default();
            for &r in self.column(j) {
                sum = sum.acc(x[r as usize]);
            }
            y[j] = y[j].acc(sum);
        }
    }

    /// Sequential **Algorithm 3** (`scCSC-SpMV`): the masked gather used in
    /// the BFS stage. For every column `j` with `mask[j] == true` (the paper
    /// tests `σ(j) == 0`, i.e. *undiscovered*), gathers `sum = Σ x[row]` and
    /// writes `y[j] = sum` only when `sum > 0` (exploiting frontier
    /// sparsity). Unmasked columns are left untouched.
    pub fn masked_spmv_t<T>(&self, x: &[T], mask: impl Fn(usize) -> bool, y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_rows, "x must have one entry per row");
        assert_eq!(y.len(), self.n_cols, "y must have one entry per column");
        let zero = T::default();
        for j in 0..self.n_cols {
            if mask(j) {
                let mut sum = T::default();
                for &r in self.column(j) {
                    sum = sum.acc(x[r as usize]);
                }
                if sum > zero {
                    y[j] = sum;
                }
            }
        }
    }

    /// Sequential `y ← y + A x` (scatter): for every column `j` with
    /// `x[j] > 0`, adds `x[j]` to `y[i]` for each stored row `i` of column
    /// `j`. This is the backward-stage direction computed from the *same*
    /// CSC structure (no transpose copy is materialised), preserving the
    /// paper's one-format-per-run memory rule.
    pub fn spmv<T>(&self, x: &[T], y: &mut [T])
    where
        T: Scalar,
    {
        assert_eq!(x.len(), self.n_cols, "x must have one entry per column");
        assert_eq!(y.len(), self.n_rows, "y must have one entry per row");
        let zero = T::default();
        for j in 0..self.n_cols {
            let xv = x[j];
            if xv > zero {
                for &r in self.column(j) {
                    let ri = r as usize;
                    y[ri] = y[ri].acc(xv);
                }
            }
        }
    }

    /// Returns the transpose as a new CSC matrix.
    pub fn transpose(&self) -> Csc {
        let mut col_ptr = vec![0usize; self.n_rows + 1];
        for &r in &self.row_idx {
            col_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.n_rows {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0 as Index; self.nnz()];
        for j in 0..self.n_cols {
            for &r in self.column(j) {
                row_idx[cursor[r as usize]] = j as Index;
                cursor[r as usize] += 1;
            }
        }
        Csc::from_parts_unchecked(self.n_cols, self.n_rows, col_ptr, row_idx)
    }

    /// Reinterprets this CSC structure as the CSR of the transposed matrix
    /// (`CSC(A)` and `CSR(Aᵀ)` are the same arrays).
    pub fn into_transposed_csr(self) -> Csr {
        Csr::from_parts_unchecked(self.n_cols, self.n_rows, self.col_ptr, self.row_idx)
    }

    /// Converts to COO (entries in column-sorted order).
    pub fn to_coo(&self) -> Coo {
        let mut cols = Vec::with_capacity(self.nnz());
        for j in 0..self.n_cols {
            cols.extend(std::iter::repeat_n(j as Index, self.column_len(j)));
        }
        Coo::from_entries(self.n_rows, self.n_cols, self.row_idx.clone(), cols)
            .expect("CSC invariants guarantee valid COO")
    }

    /// Whether the pattern is symmetric (`A = Aᵀ`). Requires square.
    pub fn is_symmetric(&self) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        let t = self.transpose();
        self.col_ptr == t.col_ptr && self.row_idx == t.row_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Directed: 0→1, 0→2, 1→2, 2→0, 2→3.
    fn sample() -> Csc {
        Coo::from_entries(4, 4, vec![0, 0, 1, 2, 2], vec![1, 2, 2, 0, 3])
            .unwrap()
            .to_csc()
    }

    #[test]
    fn structure_matches_graph() {
        let m = sample();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.column(2), &[0, 1]); // in-neighbours of 2
        assert_eq!(m.column(0), &[2]);
        assert_eq!(m.column_len(3), 1);
        assert_eq!(m.storage_words(), 4 + 1 + 5);
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csc::from_parts(2, 2, vec![0, 1, 2], vec![0, 1]).is_ok());
        assert_eq!(
            Csc::from_parts(2, 2, vec![0, 1], vec![0]).unwrap_err(),
            SparseError::PointerLength {
                expected: 3,
                actual: 2
            }
        );
        assert_eq!(
            Csc::from_parts(2, 2, vec![0, 1, 1], vec![0, 0]).unwrap_err(),
            SparseError::PointerTotal { last: 1, nnz: 2 }
        );
        assert!(matches!(
            Csc::from_parts(2, 2, vec![0, 2, 1], vec![0, 0]).unwrap_err(),
            SparseError::NonMonotonicPointer { position: 2 }
        ));
        assert_eq!(
            Csc::from_parts(2, 2, vec![0, 1, 2], vec![0, 7]).unwrap_err(),
            SparseError::RowOutOfBounds(7, 2)
        );
    }

    #[test]
    fn spmv_t_gathers_in_neighbours() {
        let m = sample();
        let x = vec![1i32, 2, 0, 0];
        let mut y = vec![0i32; 4];
        m.spmv_t(&x, &mut y);
        assert_eq!(y, vec![0, 1, 3, 0]);
    }

    #[test]
    fn masked_spmv_t_skips_discovered_columns() {
        let m = sample();
        let sigma = [1i32, 0, 5, 0]; // vertices 0 and 2 already discovered
        let x = vec![1i32, 1, 1, 0];
        let mut y = vec![0i32; 4];
        m.masked_spmv_t(&x, |j| sigma[j] == 0, &mut y);
        // Column 1 (in-nb {0}): sum 1 → written. Column 3 (in-nb {2}): 1.
        // Columns 0 and 2 masked out.
        assert_eq!(y, vec![0, 1, 0, 1]);
    }

    #[test]
    fn masked_spmv_t_skips_zero_sums() {
        let m = sample();
        let x = vec![0i32; 4];
        let mut y = vec![9i32; 4];
        m.masked_spmv_t(&x, |_| true, &mut y);
        assert_eq!(y, vec![9; 4], "zero sums must not overwrite y");
    }

    #[test]
    fn spmv_scatters_along_columns() {
        let m = sample();
        let x = vec![0.0f32, 0.0, 1.5, 0.0];
        let mut y = vec![0.0f32; 4];
        m.spmv(&x, &mut y);
        // Column 2 holds rows {0, 1}.
        assert_eq!(y, vec![1.5, 1.5, 0.0, 0.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_agrees_with_coo_transpose() {
        let m = sample();
        let via_coo = m.to_coo().transpose().to_csc();
        assert_eq!(m.transpose(), via_coo);
    }

    #[test]
    fn spmv_equals_transposed_spmv_t() {
        let m = sample();
        let t = m.transpose();
        let x = vec![1i32, 2, 3, 4];
        let mut y1 = vec![0i32; 4];
        let mut y2 = vec![0i32; 4];
        m.spmv(&x, &mut y1);
        t.spmv_t(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn symmetry_detection() {
        let asym = sample();
        assert!(!asym.is_symmetric());
        let mut coo = Coo::from_entries(3, 3, vec![0, 1], vec![1, 2]).unwrap();
        coo.symmetrize();
        assert!(coo.to_csc().is_symmetric());
    }

    #[test]
    fn to_coo_round_trip() {
        let m = sample();
        assert_eq!(m.to_coo().to_csc(), m);
    }
}

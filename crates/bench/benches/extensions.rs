//! Criterion benchmarks for the extension APIs: TurboBFS, weighted BC
//! (Δ-stepping vs Dijkstra oracle), approximate BC, edge BC and the
//! semiring kernels.
//!
//! Run: `cargo bench -p turbobc-bench --bench extensions`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use turbobc::weighted::{sssp_delta_stepping, weighted_bc_sources, WeightedBcOptions};
use turbobc::{BcOptions, BcSolver, TurboBfs};
use turbobc_baselines::weighted_sssp;
use turbobc_graph::weighted::WeightedGraph;
use turbobc_graph::{gen, Graph};
use turbobc_sparse::semiring::{self, CsrValues};

fn workloads() -> Vec<(&'static str, Graph)> {
    vec![
        ("delaunay", gen::delaunay(4000, 1)),
        ("mycielski", gen::mycielski(10)),
        ("smallworld", gen::small_world(4000, 5, 0.05, 2)),
    ]
}

fn bench_turbobfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("turbobfs");
    for (name, g) in workloads() {
        let source = g.default_source();
        let bfs = TurboBfs::new(&g, BcOptions::default());
        group.throughput(Throughput::Elements(g.m() as u64));
        group.bench_with_input(BenchmarkId::new("la_bfs", name), &(), |b, _| {
            b.iter(|| bfs.run(source))
        });
        group.bench_with_input(BenchmarkId::new("queue_bfs", name), &(), |b, _| {
            b.iter(|| turbobc_graph::bfs(&g, source))
        });
    }
    group.finish();
}

fn bench_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted");
    for (name, g) in workloads() {
        let wg = WeightedGraph::random_weights(g, 1.0, 16.0, 5);
        let (csr, w) = wg.to_weighted_csr();
        let source = wg.graph().default_source();
        group.throughput(Throughput::Elements(wg.m() as u64));
        group.bench_with_input(BenchmarkId::new("delta_stepping", name), &(), |b, _| {
            b.iter(|| sssp_delta_stepping(&csr, &w, source, 8.0))
        });
        group.bench_with_input(BenchmarkId::new("dijkstra", name), &(), |b, _| {
            b.iter(|| weighted_sssp(&wg, source))
        });
        group.bench_with_input(BenchmarkId::new("bc_16_sources", name), &(), |b, _| {
            let sources: Vec<u32> = (0..16).collect();
            b.iter(|| weighted_bc_sources(&wg, &sources, WeightedBcOptions::default()))
        });
    }
    group.finish();
}

fn bench_approx_and_edge(c: &mut Criterion) {
    let g = gen::preferential_attachment(4000, 3, 7);
    let mut group = c.benchmark_group("approx_and_edge");
    group.throughput(Throughput::Elements(g.m() as u64));
    let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
    group.bench_function("approx_eps_0.2", |b| {
        b.iter(|| solver.approx(0.2, 0.2, 0x70b0bc).unwrap())
    });
    let small = gen::small_world(400, 3, 0.1, 3);
    let edge_solver = BcSolver::new(&small, BcOptions::default()).unwrap();
    group.bench_function("edge_bc_exact_400", |b| {
        b.iter(|| edge_solver.edge_bc().unwrap())
    });
    group.finish();
}

fn bench_msbfs(c: &mut Criterion) {
    let g = gen::delaunay(4000, 11);
    let sources: Vec<u32> = (0..64).collect();
    let mut group = c.benchmark_group("msbfs");
    group.throughput(Throughput::Elements(g.m() as u64 * 64));
    let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
    let plan = solver.plan_ms_bfs(&sources).unwrap();
    group.bench_function("batched_64_sources", |b| {
        b.iter(|| solver.execute(&plan).unwrap())
    });
    group.bench_function("individual_64_sources", |b| {
        let bfs = TurboBfs::new(&g, BcOptions::default());
        b.iter(|| {
            for &s in &sources {
                std::hint::black_box(bfs.run(s));
            }
        })
    });
    group.finish();
}

fn bench_semirings(c: &mut Criterion) {
    let g = gen::delaunay(4000, 9);
    let wg = WeightedGraph::random_weights(g, 1.0, 10.0, 1);
    let (csr, w) = wg.to_weighted_csr();
    let a = CsrValues::new(csr.clone(), w);
    let n = wg.n();
    let mut group = c.benchmark_group("semiring_spmv");
    group.throughput(Throughput::Elements(wg.m() as u64));
    let xf: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
    group.bench_function("plus_times", |b| {
        b.iter(|| semiring::spmv::<semiring::PlusTimes>(&a, &xf))
    });
    group.bench_function("min_plus", |b| {
        b.iter(|| semiring::spmv::<semiring::MinPlus>(&a, &xf))
    });
    let xb: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
    group.bench_function("or_and_pattern", |b| {
        b.iter(|| semiring::spmv_pattern::<semiring::OrAnd>(&csr, &xb))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_turbobfs, bench_weighted, bench_approx_and_edge, bench_msbfs, bench_semirings
}
criterion_main!(benches);

//! Criterion end-to-end BC benchmarks: one group per paper table, one
//! benchmark per graph family (small stand-ins), comparing TurboBC
//! against all baselines — the wall-clock companion to the `experiments`
//! binary's table reports.
//!
//! Run: `cargo bench -p turbobc-bench --bench bc_end_to_end`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use turbobc::{BcOptions, BcSolver};
use turbobc_baselines::gunrock_like::GunrockBc;
use turbobc_bench::runner::kernel_from_name;
use turbobc_graph::families::{self, Scale};

/// One representative per table to keep bench time bounded.
const REPRESENTATIVES: &[(&str, u8)] = &[
    ("mark3jac060sc", 1),
    ("delaunay_n15", 1),
    ("smallworld", 2),
    ("com-Youtube", 2),
    ("mycielskian16", 3),
    ("kron_g500-logn18", 3),
    ("it-2004", 4),
];

fn bench_tables(c: &mut Criterion) {
    for &(name, table) in REPRESENTATIVES {
        let row = families::find(name).expect("catalogued");
        let graph = families::generate(name, Scale::Tiny).expect("generator");
        let source = graph.default_source();
        let kernel = kernel_from_name(row.kernel);
        let mut group = c.benchmark_group(format!("table{table}/{name}"));
        group.throughput(Throughput::Elements(graph.m() as u64));

        let turbo = BcSolver::new(
            &graph,
            BcOptions::builder().kernel(kernel).parallel().build(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("turbobc", row.kernel), &(), |b, _| {
            b.iter(|| turbo.bc_single_source(source).unwrap())
        });

        let seq = BcSolver::new(
            &graph,
            BcOptions::builder().kernel(kernel).sequential().build(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("sequential", row.kernel), &(), |b, _| {
            b.iter(|| seq.bc_single_source(source).unwrap())
        });

        let gunrock = GunrockBc::new(&graph);
        group.bench_function("gunrock_like", |b| {
            b.iter(|| gunrock.bc_single_source(source))
        });

        group.bench_function("ligra_like", |b| {
            b.iter(|| turbobc_ligra::bc::bc_single_source(&graph, source))
        });
        group.finish();
    }
}

fn bench_exact(c: &mut Criterion) {
    // Table 5's exact BC on a tiny instance, 16 sources.
    let graph = families::generate("mycielskian15", Scale::Tiny).unwrap();
    let row = families::find("mycielskian15").unwrap();
    let solver = BcSolver::new(
        &graph,
        BcOptions::builder()
            .kernel(kernel_from_name(row.kernel))
            .parallel()
            .build(),
    )
    .unwrap();
    let sources: Vec<u32> = (0..16.min(graph.n() as u32)).collect();
    let mut group = c.benchmark_group("table5/exact");
    group.throughput(Throughput::Elements(
        graph.m() as u64 * sources.len() as u64,
    ));
    let plan = solver.plan(&sources).unwrap();
    group.bench_function("turbobc-16-sources", |b| {
        b.iter(|| solver.execute(&plan).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_exact
}
criterion_main!(benches);

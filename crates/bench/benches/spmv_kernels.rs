//! Criterion benchmarks for the three SpMV kernels (the paper's §3.3:
//! "the SpMV operation can be up to 90% of the total runtime").
//!
//! Run: `cargo bench -p turbobc-bench --bench spmv_kernels`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use turbobc_graph::{gen, Graph};

fn forward_inputs(g: &Graph) -> (Vec<i64>, Vec<i64>) {
    // A quarter-full frontier with σ marking another quarter discovered —
    // a mid-BFS state.
    let n = g.n();
    let f: Vec<i64> = (0..n)
        .map(|i| if i % 4 == 0 { 1 + (i % 3) as i64 } else { 0 })
        .collect();
    let sigma: Vec<i64> = (0..n).map(|i| if i % 4 == 1 { 1 } else { 0 }).collect();
    (f, sigma)
}

fn bench_forward(c: &mut Criterion) {
    let workloads: Vec<(&str, Graph)> = vec![
        ("regular/delaunay", gen::delaunay(4000, 1)),
        ("regular/road", gen::road_network(16, 16, 8, 2)),
        ("skewed/mawi", gen::mawi_star(8000, 8, 3)),
        ("irregular/mycielski", gen::mycielski(10)),
        ("irregular/rmat", gen::rmat(11, 48, 4)),
    ];
    let mut group = c.benchmark_group("forward_spmv");
    for (name, g) in &workloads {
        let csc = g.to_csc();
        let cooc = g.to_cooc();
        let (f, sigma) = forward_inputs(g);
        let mut y = vec![0i64; g.n()];
        group.throughput(Throughput::Elements(g.m() as u64));
        group.bench_with_input(BenchmarkId::new("scCOOC", name), &(), |b, _| {
            b.iter(|| {
                y.fill(0);
                cooc.spmv_t(&f, &mut y);
            })
        });
        group.bench_with_input(BenchmarkId::new("scCSC", name), &(), |b, _| {
            b.iter(|| {
                y.fill(0);
                csc.masked_spmv_t(&f, |j| sigma[j] == 0, &mut y);
            })
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let workloads: Vec<(&str, Graph)> = vec![
        ("regular/delaunay", gen::delaunay(4000, 1)),
        ("irregular/mycielski", gen::mycielski(10)),
    ];
    let mut group = c.benchmark_group("backward_spmv");
    for (name, g) in &workloads {
        let csc = g.to_csc();
        let cooc = g.to_cooc();
        let n = g.n();
        let du: Vec<f64> = (0..n).map(|i| if i % 3 == 0 { 0.5 } else { 0.0 }).collect();
        let mut y = vec![0.0f64; n];
        group.throughput(Throughput::Elements(g.m() as u64));
        group.bench_with_input(BenchmarkId::new("COOC", name), &(), |b, _| {
            b.iter(|| {
                y.fill(0.0);
                cooc.spmv(&du, &mut y);
            })
        });
        group.bench_with_input(BenchmarkId::new("CSC-scatter", name), &(), |b, _| {
            b.iter(|| {
                y.fill(0.0);
                csc.spmv(&du, &mut y);
            })
        });
        group.bench_with_input(
            BenchmarkId::new("CSC-gather-symmetric", name),
            &(),
            |b, _| {
                b.iter(|| {
                    y.fill(0.0);
                    csc.spmv_t(&du, &mut y);
                })
            },
        );
    }
    group.finish();
}

fn bench_int_vs_float(c: &mut Criterion) {
    // The §3.4 ablation at the SpMV level.
    let g = gen::mycielski(11);
    let csc = g.to_csc();
    let n = g.n();
    let fi: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
    let ff: Vec<f64> = fi.iter().map(|&x| x as f64).collect();
    let mut yi = vec![0i64; n];
    let mut yf = vec![0.0f64; n];
    let mut group = c.benchmark_group("int_vs_float_spmv");
    group.throughput(Throughput::Elements(g.m() as u64));
    group.bench_function("i64", |b| {
        b.iter(|| {
            yi.fill(0);
            csc.spmv_t(&fi, &mut yi);
        })
    });
    group.bench_function("f64", |b| {
        b.iter(|| {
            yf.fill(0.0);
            csc.spmv_t(&ff, &mut yf);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_forward, bench_backward, bench_int_vs_float
}
criterion_main!(benches);

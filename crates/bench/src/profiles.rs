//! `BENCH_*.json` emission — machine-readable run profiles for every
//! engine family, produced by the same [`turbobc::observe`] machinery
//! the CLI's `--profile` flag uses.
//!
//! Each emitted file is a complete `turbobc-profile-v1` document
//! (schema-validated before it hits disk), so downstream tooling can
//! consume CLI profiles and bench profiles interchangeably:
//!
//! ```text
//! cargo run -p turbobc-bench --release --bin experiments -- profiles --out target/profiles
//! ```

use std::path::{Path, PathBuf};
use turbobc::multi_gpu::bc_multi_gpu;
use turbobc::observe::{ProfileObserver, RunProfile};
use turbobc::{BcOptions, BcSolver};
use turbobc_graph::{gen, Graph, VertexId};

/// Run one engine per family on `graph` and write a `BENCH_<name>.json`
/// profile for each into `dir` (created if missing). Returns the paths
/// written, in emission order: `cpu_par`, `simt`, `msbfs`,
/// `multi_gpu_1d`.
pub fn emit_profiles(dir: &Path, graph: &Graph) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let solver = BcSolver::new(graph, BcOptions::builder().parallel().build())
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let source = graph.default_source();
    let batch: Vec<VertexId> = (0..graph.n().min(8) as VertexId).collect();
    let mut written = Vec::new();

    let io_err = |e: turbobc::TurboBcError| std::io::Error::other(e.to_string());

    let mut obs = ProfileObserver::new();
    let plan = solver.plan(&[source]).map_err(io_err)?;
    solver.execute_observed(&plan, &mut obs).map_err(io_err)?;
    written.push(write_profile(dir, "cpu_par", obs.into_profile())?);

    let mut obs = ProfileObserver::new();
    let plan = solver
        .plan_pinned(turbobc::ExecutorKind::Simt, &[source])
        .map_err(io_err)?;
    solver.execute_observed(&plan, &mut obs).map_err(io_err)?;
    written.push(write_profile(dir, "simt", obs.into_profile())?);

    let mut obs = ProfileObserver::new();
    let plan = solver.plan_ms_bfs(&batch).map_err(io_err)?;
    solver.execute_observed(&plan, &mut obs).map_err(io_err)?;
    written.push(write_profile(dir, "msbfs", obs.into_profile())?);

    let (_, report) = bc_multi_gpu(
        graph,
        &batch,
        2,
        turbobc_simt::DeviceProps::titan_xp(),
        turbobc_simt::Interconnect::pcie3(),
    )
    .map_err(|e| std::io::Error::other(e.to_string()))?;
    written.push(write_profile(
        dir,
        "multi_gpu_1d",
        report.run_profile(graph.n(), graph.m(), batch.len()),
    )?);

    Ok(written)
}

/// [`emit_profiles`] on the default bench workload (a small-world
/// graph, the shape the paper's Table 4 row 1 models).
pub fn emit_default_profiles(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    emit_profiles(dir, &gen::small_world(2000, 4, 0.05, 7))
}

fn write_profile(dir: &Path, name: &str, profile: RunProfile) -> std::io::Result<PathBuf> {
    let text = profile.to_json_string();
    // Never write a profile the CLI's `validate-profile` would reject.
    RunProfile::validate(&text)
        .map_err(|e| std::io::Error::other(format!("BENCH_{name}.json failed validation: {e}")))?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_profiles_validate_and_cover_every_engine() {
        let dir = std::env::temp_dir().join(format!("turbobc-profiles-{}", std::process::id()));
        let g = gen::small_world(300, 3, 0.1, 11);
        let paths = emit_profiles(&dir, &g).unwrap();
        assert_eq!(paths.len(), 4);
        let mut engines = Vec::new();
        for p in &paths {
            let text = std::fs::read_to_string(p).unwrap();
            let doc = RunProfile::validate(&text).unwrap();
            engines.push(
                doc.get("engine")
                    .and_then(|v| v.as_str())
                    .unwrap_or_default()
                    .to_string(),
            );
            assert!(
                p.file_name()
                    .unwrap()
                    .to_str()
                    .unwrap()
                    .starts_with("BENCH_"),
                "{p:?}"
            );
        }
        assert_eq!(engines, ["par", "simt", "msbfs", "multi_gpu_1d"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simt_bench_profile_carries_levels_and_memory() {
        let dir = std::env::temp_dir().join(format!("turbobc-profiles-m-{}", std::process::id()));
        let g = gen::mycielski(5);
        let paths = emit_profiles(&dir, &g).unwrap();
        let text = std::fs::read_to_string(&paths[1]).unwrap();
        let doc = RunProfile::validate(&text).unwrap();
        let levels = doc.get("levels").and_then(|v| v.as_arr()).unwrap();
        assert!(
            !levels.is_empty(),
            "simt profile must trace per-level events"
        );
        let mem = doc.get("memory").unwrap();
        assert!(
            mem.get("paper_words").is_some(),
            "7n + m model words recorded"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

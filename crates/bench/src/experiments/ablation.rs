//! Ablations for the design choices §3 argues for:
//!
//! 1. **Kernel crossover** — scalar kernels win the regular families,
//!    the vector kernel wins the irregular ones (the premise behind the
//!    paper's Table 1/2/3 split and the `Auto` selector).
//! 2. **Integer vs float forward vectors** — §3.4 claims the integer
//!    SpMV in the BFS stage runs up to 2.7× faster than the float one.
//! 3. **Warp efficiency** — the mechanism behind (1) on the simulator:
//!    one warp per dense column keeps lanes busy; one thread per skewed
//!    column starves them.
//! 4. **Shuffle vs shared-memory reduction** — §3.3: Algorithm 4 uses
//!    `__shfl_down_sync` "to reduce the local sums ... without using
//!    shared memory"; the ablation compares it against the Bell &
//!    Garland shared-memory original.

use super::Config;
use crate::runner::time_best;
use crate::table::{fnum, TextTable};
use turbobc::{BcOptions, BcSolver, Kernel};
use turbobc_graph::families::Scale;
use turbobc_graph::{gen, Graph};
use turbobc_simt::Device;

fn workloads(scale: Scale) -> Vec<(&'static str, Graph)> {
    let f = scale.factor();
    let sz = |base: usize| ((base as f64 * f) as usize).max(256);
    vec![
        (
            "road (regular)",
            gen::road_network(
                (12.0 * f.sqrt()) as usize + 4,
                (12.0 * f.sqrt()) as usize + 4,
                8,
                11,
            ),
        ),
        ("delaunay (regular)", gen::delaunay(sz(8000), 12)),
        ("mawi (regular, skewed)", gen::mawi_star(sz(60_000), 8, 13)),
        (
            "mycielski (irregular)",
            gen::mycielski((11 + scale.log2_offset()) as u32),
        ),
        (
            "rmat (irregular)",
            gen::rmat((13 + scale.log2_offset()) as u32, 48, 14),
        ),
    ]
}

/// Runs all ablations.
pub fn run(cfg: Config) -> String {
    let mut out = String::from("== Ablations ==\n\n");
    out.push_str(&kernel_crossover(cfg));
    out.push('\n');
    out.push_str(&int_vs_float(cfg));
    out.push('\n');
    out.push_str(&warp_efficiency(cfg));
    out.push('\n');
    out.push_str(&reduction_strategy(cfg));
    out.push('\n');
    out.push_str(&relabeling(cfg));
    out
}

/// Ablation 1: every kernel on every family (rayon engine wall-clock).
pub fn kernel_crossover(cfg: Config) -> String {
    let mut out = String::from(
        "(1) kernel crossover — modelled Titan-Xp BC/vertex time (ms) per kernel (SIMT simulator):\n",
    );
    let mut t = TextTable::new(vec!["graph", "scCOOC", "scCSC", "veCSC", "winner"]);
    for (name, g) in workloads(cfg.scale) {
        let source = g.default_source();
        let mut times = Vec::new();
        for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
            let solver =
                BcSolver::new(&g, BcOptions::builder().kernel(kernel).parallel().build()).unwrap();
            let dev = Device::titan_xp();
            let report = crate::simt_report_on(&solver, &dev, &[source]);
            times.push(report.modelled_time_s * 1e3);
        }
        let winner = ["scCOOC", "scCSC", "veCSC"][times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0];
        t.row(vec![
            name.to_string(),
            fnum(times[0]),
            fnum(times[1]),
            fnum(times[2]),
            winner.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(paper split: scalar kernels on the regular families, veCSC on the irregular ones)\n",
    );
    out
}

/// Ablation 2: the §3.4 integer-vs-float claim, at the SpMV level: the
/// same forward gather with `i64` path counts vs `f64`.
pub fn int_vs_float(cfg: Config) -> String {
    let mut out =
        String::from("(2) integer vs float frontier vectors — forward SpMV sweep time (ms):\n");
    let mut t = TextTable::new(vec![
        "graph",
        "i64 sat SpMV",
        "i64 wrap SpMV",
        "f64 SpMV",
        "int speedup (wrap/f64)",
    ]);
    for (name, g) in workloads(cfg.scale) {
        let csc = g.to_csc();
        let n = g.n();
        let fi: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        let ff: Vec<f64> = fi.iter().map(|&x| x as f64).collect();
        let mut yi = vec![0i64; n];
        let mut yf = vec![0.0f64; n];
        // The library's saturating integer path.
        let (ti, _) = time_best(cfg.trials.max(3), || {
            yi.fill(0);
            csc.spmv_t(&fi, &mut yi);
        });
        // Plain wrapping integer adds — the paper's `int` kernels.
        let (tw, _) = time_best(cfg.trials.max(3), || {
            yi.fill(0);
            for j in 0..csc.n_cols() {
                let mut sum = 0i64;
                for &r in csc.column(j) {
                    sum = sum.wrapping_add(fi[r as usize]);
                }
                yi[j] = yi[j].wrapping_add(sum);
            }
        });
        let (tf, _) = time_best(cfg.trials.max(3), || {
            yf.fill(0.0);
            csc.spmv_t(&ff, &mut yf);
        });
        t.row(vec![
            name.to_string(),
            fnum(ti.as_secs_f64() * 1e3),
            fnum(tw.as_secs_f64() * 1e3),
            fnum(tf.as_secs_f64() * 1e3),
            format!("{:.2}x", tf.as_secs_f64() / tw.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(paper: up to 2.7x on the GPU. The wrap column is the paper's plain-int kernel; the\n\
         library's production path saturates instead, trading some of that gain for defined\n\
         overflow behaviour — reported as measured)\n",
    );
    out
}

/// Ablation 4: warp-shuffle vs shared-memory reduction in the veCSC
/// forward kernel (one mid-BFS sweep per variant).
pub fn reduction_strategy(cfg: Config) -> String {
    let mut out = String::from(
        "(4) veCSC reduction: warp shuffle (Algorithm 4) vs shared memory (Bell & Garland):\n",
    );
    let mut t = TextTable::new(vec![
        "graph",
        "shuffle instr",
        "smem instr",
        "smem ops",
        "bank conflicts",
        "issue-side gain",
        "busy-time gain",
    ]);
    for (name, g) in workloads(cfg.scale) {
        let (shfl, smem, t_shfl, t_smem) =
            turbobc::vecsc_reduction_ablation(&g, g.default_source());
        t.row(vec![
            name.to_string(),
            shfl.instructions.to_string(),
            smem.instructions.to_string(),
            smem.smem_ops.to_string(),
            smem.smem_bank_conflicts.to_string(),
            format!(
                "{:.2}x",
                (smem.instructions + smem.smem_bank_conflicts) as f64 / shfl.instructions as f64
            ),
            format!("{:.2}x", t_smem / t_shfl),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(paper's §3.3 design choice: the shuffle reduction issues ~1.4x fewer warp instructions\n\
         than the Bell & Garland shared-memory original. At these sizes the sweep is DRAM-bound, so\n\
         the wall-clock `busy-time gain` only materialises where the kernel turns compute-bound —\n\
         which is exactly the regime the shuffle instruction was introduced for)\n",
    );
    out
}

/// Ablation 5: degree relabelling (hubs first) as locality
/// preprocessing — its effect on coalescing and modelled BC time.
pub fn relabeling(cfg: Config) -> String {
    let _ = cfg;
    let mut out = String::from(
        "(5) degree relabelling (hubs-first ids) — full BC/vertex on the simulator:\n",
    );
    let mut t = TextTable::new(vec![
        "graph",
        "lanes/tx before",
        "lanes/tx after",
        "t_gpu before ms",
        "t_gpu after ms",
        "gain",
    ]);
    for (name, g) in [
        ("rmat", gen::rmat(11, 48, 3)),
        ("mycielski", gen::mycielski(10)),
        ("webgraph", gen::webgraph(8000, 12, 0.5, 5)),
    ] {
        let kernel = if g.directed() {
            Kernel::ScCooc
        } else {
            Kernel::VeCsc
        };
        let run = |graph: &Graph| {
            let solver = BcSolver::new(
                graph,
                BcOptions::builder().kernel(kernel).parallel().build(),
            )
            .unwrap();
            let dev = Device::titan_xp();
            let report = crate::simt_report_on(&solver, &dev, &[graph.default_source()]);
            (
                report.total().coalescing_factor(),
                report.modelled_time_s * 1e3,
            )
        };
        let (coal_before, t_before) = run(&g);
        let (relabelled, _) = g.relabeled_by_degree();
        let (coal_after, t_after) = run(&relabelled);
        t.row(vec![
            name.to_string(),
            format!("{coal_before:.2}"),
            format!("{coal_after:.2}"),
            fnum(t_before),
            fnum(t_after),
            format!("{:.2}x", t_before / t_after),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(standard GPU BC preprocessing: clustering hubs at low ids packs the hot gather targets\n\
         into fewer sectors. Measured effect here is small — at reproduction scale the per-vertex\n\
         vectors are L2-resident with or without relabelling, so only the slight RMAT coalescing\n\
         gain shows; the technique pays off when vectors outgrow the cache — reported as measured)\n",
    );
    out
}

/// Ablation 3: warp efficiency of scCSC vs veCSC on the simulator.
pub fn warp_efficiency(cfg: Config) -> String {
    let mut out =
        String::from("(3) warp execution efficiency, forward SpMV kernels (SIMT simulator):\n");
    let mut t = TextTable::new(vec![
        "graph",
        "scCSC efficiency",
        "veCSC efficiency",
        "scCSC lanes/tx",
        "veCSC lanes/tx",
    ]);
    // The simulator is sequential: run it one scale below the wall-clock
    // experiments.
    let scale = match cfg.scale {
        Scale::Tiny | Scale::Small => Scale::Tiny,
        Scale::Medium => Scale::Small,
        Scale::Large => Scale::Medium,
    };
    for (name, g) in workloads(scale) {
        let source = g.default_source();
        let mut eff = Vec::new();
        let mut coal = Vec::new();
        for kernel in [Kernel::ScCsc, Kernel::VeCsc] {
            let solver =
                BcSolver::new(&g, BcOptions::builder().kernel(kernel).parallel().build()).unwrap();
            let dev = Device::titan_xp();
            let report = crate::simt_report_on(&solver, &dev, &[source]);
            let kname = if kernel == Kernel::ScCsc {
                "fwd_scCSC"
            } else {
                "fwd_veCSC"
            };
            let s = report.metrics.kernel(kname).expect("forward kernel ran");
            eff.push(s.warp_efficiency());
            coal.push(s.coalescing_factor());
        }
        t.row(vec![
            name.to_string(),
            format!("{:.2}", eff[0]),
            format!("{:.2}", eff[1]),
            format!("{:.1}", coal[0]),
            format!("{:.1}", coal[1]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("(paper's premise: the vector kernel removes the divergence that starves scalar kernels on dense columns)\n");
    out
}

//! The `dispatch` experiment: wall clock of the cost-model dispatcher
//! (`DispatchMode::CostModel`) against every pinned CPU-side executor on
//! the catalogued fixtures, plus the decision trace the planner emitted.
//! The release acceptance bar: auto stays within 10% of the best pinned
//! engine everywhere, and on at least one power-law fixture the
//! cost-model plan (block-parallel batched panels) strictly beats every
//! single pinned engine.
//!
//! Emits `BENCH_dispatch.json` (schema `turbobc-dispatch-v1`) into its
//! own directory so CI can upload it as an artifact.

use super::Config;
use crate::table::{fcount, fnum, TextTable};
use std::path::{Path, PathBuf};
use std::time::Instant;
use turbobc::observe::json::Json;
use turbobc::observe::{DispatchTrace, ProfileObserver};
use turbobc::{BcOptions, BcSolver, DispatchMode, ExecutorKind};
use turbobc_graph::families::{self, Scale};
use turbobc_graph::Graph;

/// The pinned executors auto competes against. The SIMT and hybrid
/// executors are deliberately absent: the device is a cycle-level
/// simulator whose wall clock is dominated by host-side interpretation,
/// so timing them says nothing the cost model's `simt_wall_factor`
/// calibration does not already encode.
pub const PINNED: [ExecutorKind; 3] = [
    ExecutorKind::CpuSequential,
    ExecutorKind::CpuParallel,
    ExecutorKind::Batched,
];

/// One fixture's auto-vs-pinned timings plus the planner's decisions.
#[derive(Debug, Clone)]
pub struct DispatchRow {
    /// Fixture name (a `turbobc_graph::families` stand-in).
    pub graph: String,
    /// Whether the fixture has a power-law degree distribution — the
    /// regime where the cost model's block-parallel panels must win.
    pub power_law: bool,
    /// Vertex count.
    pub n: usize,
    /// Stored arc count.
    pub m: usize,
    /// Best-of-trials wall clock of the cost-model plan, ms.
    pub auto_ms: f64,
    /// The plan the cost model built ([`turbobc::ExecutionPlan::summary`]).
    pub auto_plan: String,
    /// Best-of-trials wall clock per pinned executor, in [`PINNED`] order.
    pub pinned_ms: [f64; 3],
    /// The dispatch events one observed cost-model run emitted.
    pub decisions: Vec<DispatchTrace>,
}

impl DispatchRow {
    /// The cheapest pinned executor: (name, ms).
    pub fn best_pinned(&self) -> (&'static str, f64) {
        PINNED
            .iter()
            .zip(self.pinned_ms)
            .map(|(k, t)| (k.name(), t))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("PINNED is non-empty")
    }
}

/// Fixtures: the differential battery's always-on trio plus one more
/// power-law stand-in, all from the paper's catalogue.
fn fixtures(scale: Scale) -> Vec<(&'static str, bool, Graph)> {
    [
        ("mark3jac060sc", false),
        ("luxembourg_osm", false),
        ("com-Youtube", true),
        ("kron_g500-logn18", true),
    ]
    .into_iter()
    .map(|(name, power_law)| {
        let g = families::generate(name, scale).expect("catalogued family");
        (name, power_law, g)
    })
    .collect()
}

/// Evenly spread BC sources, starting from the graph's default.
fn pick_sources(g: &Graph, count: usize) -> Vec<u32> {
    let n = g.n().max(1);
    let first = g.default_source() as usize;
    (0..count.max(1))
        .map(|i| ((first + i * n / count.max(1)) % n) as u32)
        .collect()
}

/// Best-of-`trials` wall clock of plan + execute on `solver`, ms.
fn time_ms(solver: &BcSolver, sources: &[u32], n: usize, trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let out = crate::bc_via_plan(solver, sources);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(out.bc.len() == n);
        best = best.min(elapsed);
    }
    best
}

/// Measures every fixture; the module tests and [`run`] share this.
pub fn measure(cfg: Config) -> Vec<DispatchRow> {
    let sources_per_graph = cfg.max_sources.clamp(1, 64);
    fixtures(cfg.scale)
        .into_iter()
        .map(|(name, power_law, g)| {
            let sources = pick_sources(&g, sources_per_graph);

            let auto = BcSolver::new(
                &g,
                BcOptions::builder()
                    .dispatch(DispatchMode::CostModel)
                    .build(),
            )
            .expect("fixture graphs are non-empty");
            let plan = auto.plan(&sources).expect("sources are in range");
            let auto_plan = plan.summary();

            // One observed run collects the decision trace; the timing
            // loop then runs unobserved.
            let mut obs = ProfileObserver::new();
            auto.execute_observed(&plan, &mut obs)
                .expect("cpu engines are total");
            let decisions = obs.into_profile().dispatch;

            let auto_ms = time_ms(&auto, &sources, g.n(), cfg.trials);
            let mut pinned_ms = [0.0f64; 3];
            for (i, &kind) in PINNED.iter().enumerate() {
                let solver = BcSolver::new(
                    &g,
                    BcOptions::builder()
                        .dispatch(DispatchMode::Pinned(kind))
                        .build(),
                )
                .expect("fixture graphs are non-empty");
                pinned_ms[i] = time_ms(&solver, &sources, g.n(), cfg.trials);
            }

            DispatchRow {
                graph: name.to_string(),
                power_law,
                n: g.n(),
                m: g.m(),
                auto_ms,
                auto_plan,
                pinned_ms,
                decisions,
            }
        })
        .collect()
}

/// Serialises one dispatch decision.
fn decision_to_json(d: &DispatchTrace) -> Json {
    Json::Obj(vec![
        ("granularity".into(), d.granularity.as_str().into()),
        ("executor".into(), d.executor.as_str().into()),
        ("source".into(), d.source.into()),
        ("depth".into(), d.depth.into()),
        ("frontier".into(), d.frontier.into()),
        ("reason".into(), d.reason.as_str().into()),
    ])
}

/// Serialises the rows under the `turbobc-dispatch-v1` schema.
pub fn rows_to_json(rows: &[DispatchRow], cfg: Config) -> Json {
    Json::Obj(vec![
        ("schema".into(), "turbobc-dispatch-v1".into()),
        ("trials".into(), cfg.trials.into()),
        (
            "pinned_executors".into(),
            Json::Arr(PINNED.iter().map(|k| k.name().into()).collect()),
        ),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        let (best_name, best_ms) = r.best_pinned();
                        Json::Obj(vec![
                            ("graph".into(), r.graph.as_str().into()),
                            ("power_law".into(), r.power_law.into()),
                            ("n".into(), r.n.into()),
                            ("m".into(), r.m.into()),
                            ("auto_ms".into(), r.auto_ms.into()),
                            ("auto_plan".into(), r.auto_plan.as_str().into()),
                            (
                                "pinned_ms".into(),
                                Json::Obj(
                                    PINNED
                                        .iter()
                                        .zip(r.pinned_ms)
                                        .map(|(k, t)| (k.name().to_string(), t.into()))
                                        .collect(),
                                ),
                            ),
                            ("best_pinned".into(), best_name.into()),
                            ("best_pinned_ms".into(), best_ms.into()),
                            (
                                "speedup_vs_best_pinned".into(),
                                (best_ms / r.auto_ms.max(1e-9)).into(),
                            ),
                            (
                                "decisions".into(),
                                Json::Arr(r.decisions.iter().map(decision_to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Where the BENCH JSON lands; overridable so CI can point it at the
/// artifact directory.
pub fn out_path() -> PathBuf {
    std::env::var_os("TURBOBC_DISPATCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("target").join("dispatch"))
        .join("BENCH_dispatch.json")
}

/// Runs the experiment: a text table plus the BENCH JSON on disk.
pub fn run(cfg: Config) -> String {
    let rows = measure(cfg);
    let mut out =
        String::from("== Dispatch: cost-model auto vs pinned executors (best-of trials) ==\n\n");
    let mut t = TextTable::new(vec![
        "graph",
        "class",
        "n",
        "m",
        "auto ms",
        "seq ms",
        "par ms",
        "batched ms",
        "best pinned",
        "auto/best",
        "plan",
    ]);
    for r in &rows {
        let (best_name, best_ms) = r.best_pinned();
        t.row(vec![
            r.graph.clone(),
            if r.power_law {
                "power-law"
            } else {
                "road/mesh"
            }
            .to_string(),
            fcount(r.n),
            fcount(r.m),
            fnum(r.auto_ms),
            fnum(r.pinned_ms[0]),
            fnum(r.pinned_ms[1]),
            fnum(r.pinned_ms[2]),
            best_name.to_string(),
            format!("{:.2}x", r.auto_ms / best_ms.max(1e-9)),
            r.auto_plan.clone(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\ndecision traces (first event per fixture):\n");
    for r in &rows {
        match r.decisions.first() {
            Some(d) => out.push_str(&format!(
                "  {:<18} [{}] {} — {}\n",
                r.graph, d.granularity, d.executor, d.reason
            )),
            None => out.push_str(&format!("  {:<18} (no decisions traced)\n", r.graph)),
        }
    }

    let path = out_path();
    let doc = rows_to_json(&rows, cfg);
    let written = path
        .parent()
        .map(std::fs::create_dir_all)
        .transpose()
        .and_then(|_| std::fs::write(&path, doc.pretty()).map(Some));
    match written {
        Ok(_) => out.push_str(&format!("\nBENCH JSON: {}\n", path.display())),
        Err(e) => out.push_str(&format!("\nBENCH JSON not written ({e})\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: Scale::Tiny,
            trials: 1,
            max_sources: 16,
        }
    }

    #[test]
    fn report_and_json_have_every_fixture_with_decisions() {
        let rows = measure(tiny_cfg());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.power_law));
        for r in &rows {
            assert!(r.auto_ms.is_finite() && r.auto_ms >= 0.0, "{}", r.graph);
            for (k, t) in PINNED.iter().zip(r.pinned_ms) {
                assert!(t.is_finite() && t >= 0.0, "{} {}", r.graph, k.name());
            }
            // Every cost-model run must trace at least its run-level
            // decision — the ISSUE's observability requirement.
            assert!(
                !r.decisions.is_empty(),
                "{}: no dispatch events traced",
                r.graph
            );
            assert!(
                r.decisions.iter().any(|d| d.granularity == "run"),
                "{}: no run-granularity decision",
                r.graph
            );
            assert!(r.auto_plan.starts_with("cost:"), "{}", r.auto_plan);
        }
        // Power-law fixtures must plan block-parallel batched panels.
        assert!(
            rows.iter()
                .any(|r| r.power_law && r.auto_plan.contains("block-parallel")),
            "no power-law fixture planned panels: {:?}",
            rows.iter().map(|r| r.auto_plan.clone()).collect::<Vec<_>>()
        );

        let doc = rows_to_json(&rows, tiny_cfg());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("turbobc-dispatch-v1")
        );
        let parsed = turbobc::observe::json::parse(&doc.pretty()).expect("own output parses");
        let parsed_rows = parsed.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(parsed_rows.len(), 4);
        for row in parsed_rows {
            assert!(row.get("best_pinned").and_then(Json::as_str).is_some());
            assert!(row
                .get("decisions")
                .and_then(Json::as_arr)
                .is_some_and(|d| !d.is_empty()));
        }
    }

    /// The release acceptance bar from the issue: auto stays within 10%
    /// of the best pinned engine on every catalogued fixture (plus 1 ms
    /// of planning slack for sub-millisecond rows), and on at least one
    /// power-law fixture the cost-model plan strictly beats every pinned
    /// engine. Runs at `Scale::Tiny` — the regime where a block's σ/δ
    /// panels stay cache-resident, so the planner's block-parallel arm
    /// is actually in play (at larger scales the panels spill and the
    /// honest plan collapses to the per-source engines on every
    /// fixture). Timing-sensitive, so release only.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing assertion; run under --release")]
    fn auto_within_ten_percent_of_best_pinned_and_wins_a_power_law_fixture() {
        let rows = measure(Config {
            scale: Scale::Tiny,
            trials: 3,
            max_sources: 64,
        });
        for r in &rows {
            let (best_name, best_ms) = r.best_pinned();
            assert!(
                r.auto_ms <= best_ms * 1.10 + 1.0,
                "{}: auto {:.3} ms must stay within 10% of {} ({:.3} ms)",
                r.graph,
                r.auto_ms,
                best_name,
                best_ms
            );
        }
        // The strict win comes from splitting the panels into
        // per-worker blocks, so a single-threaded host cannot produce
        // it: there the block-parallel plan degenerates to exactly one
        // block — the same work as the pinned batched engine. CI's
        // multicore runners enforce this half of the bar.
        let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
        if threads < 2 {
            eprintln!("single-threaded host: skipping the strict-win half of the bar");
            return;
        }
        assert!(
            rows.iter()
                .any(|r| r.power_law && PINNED.iter().zip(r.pinned_ms).all(|(_, t)| r.auto_ms < t)),
            "a power-law fixture must beat every pinned engine: {:?}",
            rows.iter()
                .map(|r| (r.graph.clone(), r.auto_ms, r.pinned_ms))
                .collect::<Vec<_>>()
        );
    }
}

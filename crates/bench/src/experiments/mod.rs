//! One module per reproduced paper artifact. Each experiment returns its
//! report as a `String` so the binary, the integration tests and the
//! `EXPERIMENTS.md` generator share one code path.

pub mod ablation;
pub mod batched;
pub mod direction;
pub mod dispatch;
pub mod dynamic;
pub mod figures;
pub mod prep;
pub mod serve;
pub mod tables;

use turbobc_graph::families::Scale;

/// Shared experiment settings.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Graph scale for the stand-ins.
    pub scale: Scale,
    /// Timing trials per measurement (best-of).
    pub trials: usize,
    /// Source cap for exact-BC runs (Table 5's sequential baseline is
    /// `O(n·m)` per graph).
    pub max_sources: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Small,
            trials: 3,
            max_sources: 256,
        }
    }
}

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "ablation",
    "scaling",
    "multigpu",
    "direction",
    "batched",
    "prep",
    "dispatch",
    "dynamic",
    "serve",
];

/// Runs one experiment by id.
pub fn run(id: &str, cfg: Config) -> Option<String> {
    Some(match id {
        "table1" => tables::table(1, cfg),
        "table2" => tables::table(2, cfg),
        "table3" => tables::table(3, cfg),
        "table4" => tables::table4(cfg),
        "table5" => tables::table5(cfg),
        "fig3" => figures::fig3(cfg),
        "fig5" => figures::fig5(cfg),
        "fig6" => figures::fig6(cfg),
        "fig7" => figures::fig7(cfg),
        "ablation" => ablation::run(cfg),
        "scaling" => figures::scaling(cfg),
        "multigpu" => figures::multigpu(cfg),
        "direction" => direction::run(cfg),
        "batched" => batched::run(cfg),
        "prep" => prep::run(cfg),
        "dispatch" => dispatch::run(cfg),
        "dynamic" => dynamic::run(cfg),
        "serve" => serve::run(cfg),
        _ => return None,
    })
}

/// Runs every experiment, concatenated.
pub fn run_all(cfg: Config) -> String {
    let mut out = String::new();
    for id in ALL {
        out.push_str(&run(id, cfg).unwrap());
        out.push('\n');
    }
    out
}

//! The `dynamic` experiment: incremental BC over streamed edge updates
//! ([`turbobc::DynamicBc`]) against the full-recompute pipeline (solver
//! rebuild + batched run over the same sources) on power-law fixtures.
//!
//! Two update regimes bracket what the dirty-block detector can and
//! cannot skip:
//!
//! * **localized** — all updates land in the last component of the
//!   `stress-powerlaw-union` fixture. Source blocks whose sources live
//!   in the other components never discover the touched endpoints, so
//!   their cached panels stay bitwise valid and the incremental path
//!   re-sweeps a fraction of the blocks;
//! * **scattered** — updates spread uniformly over a connected
//!   power-law graph (`com-Youtube`). Almost every update changes some
//!   source's BFS, the detector conservatively dirties most blocks,
//!   and the strategy escalates to a full (but still rebuild-free)
//!   recompute — the honest worst case.
//!
//! The release acceptance bar from the issue: on a power-law fixture
//! with a small batch (≤ 1% of the edges), the incremental path beats
//! the full recompute. Emits `BENCH_dynamic.json` (schema
//! `turbobc-dynamic-v1`) so CI can upload it as an artifact.

use super::Config;
use crate::table::{fcount, fnum, TextTable};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;
use turbobc::observe::json::Json;
use turbobc::{BcOptions, BcSolver, DynamicBc, DynamicGraph, EdgeUpdate, PrepMode};
use turbobc_graph::families;
use turbobc_graph::Graph;

/// Update-batch sizes as a fraction of the fixture's edge count. Both
/// sit at or under the issue's "small batch" bar of 1%.
pub const BATCH_FRACTIONS: [f64; 2] = [0.001, 0.01];

/// One (fixture, regime, batch size) measurement.
#[derive(Debug, Clone)]
pub struct DynamicRow {
    /// Fixture name (a `turbobc_graph::families` stand-in).
    pub graph: String,
    /// `"localized"` or `"scattered"` (see the module docs).
    pub scenario: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Stored arc count.
    pub m: usize,
    /// BC sources the cache covers.
    pub sources: usize,
    /// Requested batch size as a fraction of the edge count.
    pub batch_fraction: f64,
    /// Updates in the batch (inserts + deletes, all effective).
    pub batch_edges: usize,
    /// Inserts that took effect in the first applied batch.
    pub inserts: usize,
    /// Deletes that took effect in the first applied batch.
    pub deletes: usize,
    /// Blocks the batch invalidated.
    pub dirty_blocks: usize,
    /// Cached source blocks in total.
    pub total_blocks: usize,
    /// Blocks the incremental engine actually re-swept.
    pub recomputed_blocks: usize,
    /// `"incremental"`, `"full"` or `"noop"`.
    pub strategy: String,
    /// Best-of-trials wall clock of one incremental batch apply, ms.
    pub incremental_ms: f64,
    /// Best-of-trials wall clock of the full pipeline on the updated
    /// graph (solver rebuild + batched run over the same sources), ms.
    pub full_ms: f64,
    /// Max graded deviation of the incremental BC vector from the
    /// full recompute: `|inc - full| / max(1, |full|)`.
    pub max_rel_err: f64,
}

impl DynamicRow {
    /// Full-recompute time over incremental time (> 1 means the
    /// incremental path wins).
    pub fn speedup(&self) -> f64 {
        self.full_ms / self.incremental_ms.max(1e-9)
    }
}

/// Evenly spread sources in ascending id order, so the 64-wide cache
/// blocks inherit the fixture's component layout (the union fixture
/// keeps each component in a contiguous id range).
fn pick_sources(n: usize, count: usize) -> Vec<u32> {
    let count = count.clamp(1, n);
    (0..count).map(|i| (i * n / count) as u32).collect()
}

/// Flips a batch: applying `batch` then `inverse(batch)` restores the
/// graph (all batch edges are distinct, so order is irrelevant).
fn inverse(batch: &[EdgeUpdate]) -> Vec<EdgeUpdate> {
    batch
        .iter()
        .map(|up| match *up {
            EdgeUpdate::Insert(u, v) => EdgeUpdate::Delete(u, v),
            EdgeUpdate::Delete(u, v) => EdgeUpdate::Insert(u, v),
        })
        .collect()
}

/// Builds a batch of `k` effective updates confined to the vertex
/// range `[lo, hi)`: half deletes of evenly strided existing edges,
/// half inserts of fresh (absent) pairs from a deterministic xorshift
/// stream.
fn make_batch(g: &Graph, lo: usize, hi: usize, k: usize, seed: u64) -> Vec<EdgeUpdate> {
    let existing: Vec<(u32, u32)> = g
        .edges()
        .filter(|&(u, v)| u < v && (u as usize) >= lo && (v as usize) < hi)
        .collect();
    let mut occupied: BTreeSet<(u32, u32)> = existing.iter().copied().collect();
    let mut batch = Vec::with_capacity(k);
    let deletes = (k / 2).min(existing.len());
    let stride = (existing.len() / deletes.max(1)).max(1);
    let mut picked = BTreeSet::new();
    for i in 0..deletes {
        let e = existing[(i * stride) % existing.len()];
        if picked.insert(e) {
            batch.push(EdgeUpdate::Delete(e.0, e.1));
        }
    }
    let mut s = seed | 1;
    let mut step = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let span = (hi - lo) as u64;
    let mut added = 0;
    let mut attempts = 0;
    while added < k - deletes && attempts < 100_000 {
        attempts += 1;
        let u = lo as u64 + step() % span;
        let v = lo as u64 + step() % span;
        let (a, b) = (u.min(v) as u32, u.max(v) as u32);
        if a != b && occupied.insert((a, b)) {
            batch.push(EdgeUpdate::Insert(a, b));
            added += 1;
        }
    }
    batch
}

/// The fixtures and their update regimes: `(family, scenario, update
/// range as a fraction of the id space)`.
fn scenarios() -> [(&'static str, &'static str, (f64, f64)); 2] {
    [
        // Updates confined to the last of the union's 4 components.
        ("stress-powerlaw-union", "localized", (0.75, 1.0)),
        ("com-Youtube", "scattered", (0.0, 1.0)),
    ]
}

/// Measures every (fixture, batch fraction) pair; the module tests and
/// [`run`] share this.
pub fn measure(cfg: Config) -> Vec<DynamicRow> {
    let mut rows = Vec::new();
    for (name, scenario, (frac_lo, frac_hi)) in scenarios() {
        let g = families::generate(name, cfg.scale).expect("catalogued family");
        let n = g.n();
        let edges = if g.directed() { g.m() } else { g.m() / 2 };
        let sources = pick_sources(n, cfg.max_sources.clamp(1, 256));
        let lo = (n as f64 * frac_lo) as usize;
        let hi = ((n as f64 * frac_hi) as usize).min(n);
        for frac in BATCH_FRACTIONS {
            let k = ((edges as f64 * frac) as usize).max(2);
            let batch = make_batch(&g, lo, hi, k, 0x70b0bc ^ k as u64);
            let undo = inverse(&batch);

            // Incremental: apply the batch (timed), roll it back
            // (untimed) so every trial starts from the same state.
            let mut dbc = DynamicBc::new(&g, &sources, BcOptions::builder().build())
                .expect("warm cache fits the admission budget");
            let mut incremental_ms = f64::INFINITY;
            let mut first_report = None;
            let mut incremental_bc = Vec::new();
            for trial in 0..cfg.trials.max(1) {
                let start = Instant::now();
                let report = dbc.apply_updates(&batch).expect("generated batch is valid");
                incremental_ms = incremental_ms.min(start.elapsed().as_secs_f64() * 1e3);
                if trial == 0 {
                    incremental_bc = dbc.bc().to_vec();
                    first_report = Some(report);
                }
                dbc.apply_updates(&undo).expect("inverse batch is valid");
            }
            let report = first_report.expect("at least one trial ran");

            // Full recompute: the updated graph is prebuilt (free for
            // the baseline); the timed region is the solver rebuild
            // plus one cached batched run over the same sources.
            let mut dg = DynamicGraph::from_graph(&g);
            dg.apply(&batch).expect("generated batch is valid");
            let updated = dg.snapshot();
            let full_options = BcOptions::builder().prep(PrepMode::Off).build();
            let mut full_ms = f64::INFINITY;
            let mut full_bc = Vec::new();
            for _ in 0..cfg.trials.max(1) {
                let start = Instant::now();
                let solver = BcSolver::new(&updated, full_options.clone())
                    .expect("updated fixture is non-empty");
                let cache = solver.warm_cache(&sources).expect("cache fits the budget");
                full_ms = full_ms.min(start.elapsed().as_secs_f64() * 1e3);
                full_bc = cache.bc().to_vec();
            }

            let max_rel_err = incremental_bc
                .iter()
                .zip(&full_bc)
                .map(|(a, b)| (a - b).abs() / b.abs().max(1.0))
                .fold(0.0f64, f64::max);

            rows.push(DynamicRow {
                graph: name.to_string(),
                scenario,
                n,
                m: g.m(),
                sources: sources.len(),
                batch_fraction: frac,
                batch_edges: batch.len(),
                inserts: report.inserts,
                deletes: report.deletes,
                dirty_blocks: report.dirty_blocks,
                total_blocks: report.total_blocks,
                recomputed_blocks: report.recomputed_blocks,
                strategy: report.strategy.to_string(),
                incremental_ms,
                full_ms,
                max_rel_err,
            });
        }
    }
    rows
}

/// Serialises the rows under the `turbobc-dynamic-v1` schema.
pub fn rows_to_json(rows: &[DynamicRow], cfg: Config) -> Json {
    Json::Obj(vec![
        ("schema".into(), "turbobc-dynamic-v1".into()),
        ("trials".into(), cfg.trials.into()),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("graph".into(), r.graph.as_str().into()),
                            ("scenario".into(), r.scenario.into()),
                            ("n".into(), r.n.into()),
                            ("m".into(), r.m.into()),
                            ("sources".into(), r.sources.into()),
                            ("batch_fraction".into(), r.batch_fraction.into()),
                            ("batch_edges".into(), r.batch_edges.into()),
                            ("inserts".into(), r.inserts.into()),
                            ("deletes".into(), r.deletes.into()),
                            ("dirty_blocks".into(), r.dirty_blocks.into()),
                            ("total_blocks".into(), r.total_blocks.into()),
                            ("recomputed_blocks".into(), r.recomputed_blocks.into()),
                            ("strategy".into(), r.strategy.as_str().into()),
                            ("incremental_ms".into(), r.incremental_ms.into()),
                            ("full_ms".into(), r.full_ms.into()),
                            ("speedup".into(), r.speedup().into()),
                            ("max_rel_err".into(), r.max_rel_err.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Where the BENCH JSON lands; overridable so CI can point it at the
/// artifact directory.
pub fn out_path() -> PathBuf {
    std::env::var_os("TURBOBC_DYNAMIC_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("target").join("dynamic"))
        .join("BENCH_dynamic.json")
}

/// Runs the experiment: a text table plus the BENCH JSON on disk.
pub fn run(cfg: Config) -> String {
    let rows = measure(cfg);
    let mut out = String::from(
        "== Dynamic: incremental BC vs full recompute per update batch (best-of trials) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "graph",
        "scenario",
        "n",
        "m",
        "batch",
        "dirty/total",
        "strategy",
        "incr ms",
        "full ms",
        "speedup",
        "max err",
    ]);
    for r in &rows {
        t.row(vec![
            r.graph.clone(),
            r.scenario.to_string(),
            fcount(r.n),
            fcount(r.m),
            format!("{} ({:.1}%)", r.batch_edges, r.batch_fraction * 100.0),
            format!("{}/{}", r.dirty_blocks, r.total_blocks),
            r.strategy.clone(),
            fnum(r.incremental_ms),
            fnum(r.full_ms),
            format!("{:.2}x", r.speedup()),
            format!("{:.1e}", r.max_rel_err),
        ]);
    }
    out.push_str(&t.render());

    let path = out_path();
    let doc = rows_to_json(&rows, cfg);
    let written = path
        .parent()
        .map(std::fs::create_dir_all)
        .transpose()
        .and_then(|_| std::fs::write(&path, doc.pretty()).map(Some));
    match written {
        Ok(_) => out.push_str(&format!("\nBENCH JSON: {}\n", path.display())),
        Err(e) => out.push_str(&format!("\nBENCH JSON not written ({e})\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_graph::families::Scale;

    fn tiny_cfg() -> Config {
        Config {
            scale: Scale::Tiny,
            trials: 1,
            max_sources: 256,
        }
    }

    #[test]
    fn rows_match_the_full_recompute_and_serialise() {
        let rows = measure(tiny_cfg());
        assert_eq!(rows.len(), scenarios().len() * BATCH_FRACTIONS.len());
        for r in &rows {
            assert!(r.batch_edges >= 2, "{}: batch too small", r.graph);
            assert!(r.inserts + r.deletes > 0, "{}: all updates no-ops", r.graph);
            assert!(
                r.max_rel_err < 1e-6,
                "{} {} ({:.2}%): incremental deviates by {:.3e}",
                r.graph,
                r.scenario,
                r.batch_fraction * 100.0,
                r.max_rel_err
            );
            assert!(r.incremental_ms.is_finite() && r.full_ms.is_finite());
        }
        // The localized regime must actually skip blocks — that is the
        // scenario's whole point.
        assert!(
            rows.iter()
                .any(|r| r.scenario == "localized" && r.dirty_blocks < r.total_blocks),
            "no localized row skipped a block: {:?}",
            rows.iter()
                .map(|r| (r.graph.clone(), r.dirty_blocks, r.total_blocks))
                .collect::<Vec<_>>()
        );

        let doc = rows_to_json(&rows, tiny_cfg());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("turbobc-dynamic-v1")
        );
        let parsed = turbobc::observe::json::parse(&doc.pretty()).expect("own output parses");
        let parsed_rows = parsed.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(parsed_rows.len(), rows.len());
        for row in parsed_rows {
            assert!(row.get("strategy").and_then(Json::as_str).is_some());
            assert!(row.get("speedup").is_some());
        }
    }

    /// The release acceptance bar from the issue: on a power-law
    /// fixture, a small batch (≤ 1% of the edges) is cheaper to absorb
    /// incrementally than to recompute from scratch. Timing-sensitive,
    /// so release only.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing assertion; run under --release")]
    fn incremental_beats_full_for_small_batches_on_a_power_law_fixture() {
        let rows = measure(Config {
            scale: Scale::Tiny,
            trials: 3,
            max_sources: 256,
        });
        assert!(
            rows.iter().any(|r| r.batch_fraction <= 0.01
                && r.speedup() > 1.0
                && r.scenario == "localized"),
            "no small-batch row beat the full recompute: {:?}",
            rows.iter()
                .map(|r| (r.graph.clone(), r.batch_fraction, r.speedup()))
                .collect::<Vec<_>>()
        );
    }
}

//! Figures 3, 5, 6 and 7.

use super::Config;
use crate::runner::{measure_exact, measure_row};
use crate::table::{fcount, fnum, TextTable};
use turbobc::{footprint, BcOptions, BcSolver, Kernel};
use turbobc_baselines::gunrock_like;
use turbobc_graph::families::{Scale, TABLE4, TABLE5};
use turbobc_graph::gen;
use turbobc_simt::Device;

/// Mycielski indices used for the device sweeps, by scale.
fn mycielski_ks(scale: Scale) -> Vec<u32> {
    // Chosen to straddle the 3 MB L2: the small end is cache-resident,
    // the large end streams its structure from DRAM — the regime where
    // the paper's Figure 5b sits (vectors cached, structure streamed).
    match scale {
        Scale::Tiny => vec![8, 9, 10, 11],
        Scale::Small => vec![10, 11, 12, 13, 14],
        Scale::Medium => vec![11, 12, 13, 14, 15],
        Scale::Large => vec![12, 13, 14, 15, 16],
    }
}

/// Least-squares slope of `y` against `x`.
fn slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

/// Figure 3: GPU memory upper bound is linear in the array-word count
/// for both systems, with TurboBC's line below gunrock's.
pub fn fig3(cfg: Config) -> String {
    let mut out =
        String::from("== Figure 3: GPU memory upper bound vs array words (mycielski sweep) ==\n\n");
    let mut t = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "TurboBC words (7n+m)",
        "TurboBC MB",
        "gunrock words (9n+2m)",
        "gunrock MB",
    ]);
    let mut tx = Vec::new();
    let mut ty = Vec::new();
    let mut gx = Vec::new();
    let mut gy = Vec::new();
    for k in mycielski_ks(cfg.scale) {
        let g = gen::mycielski(k);
        let (n, m) = (g.n(), g.m());
        let dev = Device::titan_xp();
        let turbo_peak =
            footprint::plan_peak_on_device(&dev, n, m, Kernel::VeCsc).unwrap() as f64 / 1e6;
        let dev2 = Device::titan_xp();
        let plan = gunrock_like::plan_on_device(&dev2, n, m).unwrap();
        let gun_peak = dev2.memory().peak as f64 / 1e6;
        drop(plan);
        let tw = footprint::turbobc_words(n, m, Kernel::VeCsc);
        let gw = gunrock_like::footprint_words(n, m);
        t.row(vec![
            format!("mycielski{k}"),
            fcount(n),
            fcount(m),
            fcount(tw),
            fnum(turbo_peak),
            fcount(gw),
            fnum(gun_peak),
        ]);
        tx.push(tw as f64);
        ty.push(turbo_peak);
        gx.push(gw as f64);
        gy.push(gun_peak);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nlinear fit (MB per word): TurboBC {:.2e}, gunrock {:.2e} — both linear, as in the paper's Fig. 3\n",
        slope(&tx, &ty),
        slope(&gx, &gy),
    ));
    out
}

/// Figure 5: (a) memory usage for both systems, (b) per-kernel GLT
/// against the DRAM ceiling, (c) MTEPS vs GLT.
pub fn fig5(cfg: Config) -> String {
    let mut out = String::from(
        "== Figure 5: memory / GLT / MTEPS (mycielski sweep, veCSC on the SIMT simulator) ==\n\n",
    );

    // (a) memory usage vs n + m.
    out.push_str("(a) device memory usage vs n + m:\n");
    let mut ta = TextTable::new(vec![
        "graph",
        "n+m",
        "TurboBC MB",
        "gunrock MB",
        "gunrock/TurboBC",
    ]);
    let ks = mycielski_ks(cfg.scale);
    for &k in &ks {
        let g = gen::mycielski(k);
        let (n, m) = (g.n(), g.m());
        let dev = Device::titan_xp();
        let turbo = footprint::plan_peak_on_device(&dev, n, m, Kernel::VeCsc).unwrap() as f64;
        let dev2 = Device::titan_xp();
        let _plan = gunrock_like::plan_on_device(&dev2, n, m).unwrap();
        let gun = dev2.memory().peak as f64;
        ta.row(vec![
            format!("mycielski{k}"),
            fcount(n + m),
            fnum(turbo / 1e6),
            fnum(gun / 1e6),
            format!("{:.2}x", gun / turbo),
        ]);
    }
    out.push_str(&ta.render());
    out.push_str("(paper: gunrock used up to 60% more memory than TurboBC-veCSC)\n\n");

    // (b)+(c): run the veCSC BC on the simulator, extract per-kernel GLT
    // and modelled MTEPS.
    out.push_str(&format!(
        "(b) per-kernel modelled GLT (GB/s) vs the DRAM ceiling ({} GB/s; the paper draws 575):\n",
        Device::titan_xp().props().mem_bandwidth_gbs
    ));
    let mut tb = TextTable::new(vec![
        "graph",
        "kernel",
        "GLT GB/s",
        "above ceiling?",
        "warp efficiency",
        "lanes/transaction",
    ]);
    let mut mteps_glt: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for &k in &ks {
        let g = gen::mycielski(k);
        let solver = BcSolver::new(
            &g,
            BcOptions::builder()
                .kernel(Kernel::VeCsc)
                .parallel()
                .build(),
        )
        .unwrap();
        let dev = Device::titan_xp();
        let report = crate::simt_report_on(&solver, &dev, &[g.default_source()]);
        let ceiling = dev.props().mem_bandwidth_gbs;
        for name in ["fwd_veCSC", "bwd_veCSC", "bfs_update"] {
            if let Some(s) = report.metrics.kernel(name) {
                let glt = dev.timing().glt_gbs(s);
                tb.row(vec![
                    format!("mycielski{k}"),
                    name.to_string(),
                    fnum(glt),
                    if glt > ceiling {
                        "yes".to_string()
                    } else {
                        "no".to_string()
                    },
                    format!("{:.2}", s.warp_efficiency()),
                    format!("{:.1}", s.coalescing_factor()),
                ]);
            }
        }
        // gunrock's kernels on the same simulator — the paper's Fig. 5b
        // comparison series.
        let gr = turbobc_baselines::gunrock_simt::bc_single_source_simt(&g, g.default_source());
        for name in ["gr_expand", "gr_bwd_expand"] {
            if let Some(s) = gr.metrics.kernel(name) {
                let glt = dev.timing().glt_gbs(s);
                tb.row(vec![
                    format!("mycielski{k}"),
                    format!("gunrock {name}"),
                    fnum(glt),
                    if glt > ceiling {
                        "yes".to_string()
                    } else {
                        "no".to_string()
                    },
                    format!("{:.2}", s.warp_efficiency()),
                    format!("{:.1}", s.coalescing_factor()),
                ]);
            }
        }
        let mteps = g.m() as f64 / report.modelled_time_s / 1e6;
        let gr_mteps = g.m() as f64 / gr.modelled_time_s / 1e6;
        mteps_glt.push((
            format!("mycielski{k}"),
            report.glt_gbs,
            mteps,
            gr.glt_gbs,
            gr_mteps,
        ));
    }
    out.push_str(&tb.render());

    out.push_str("\n(c) modelled MTEPS vs whole-run GLT, TurboBC-veCSC vs gunrock-like:\n");
    let mut tc = TextTable::new(vec![
        "graph",
        "TurboBC GLT",
        "TurboBC MTEPS",
        "gunrock GLT",
        "gunrock MTEPS",
    ]);
    for (name, glt, mteps, gglt, gmteps) in &mteps_glt {
        tc.row(vec![
            name.clone(),
            fnum(*glt),
            fnum(*mteps),
            fnum(*gglt),
            fnum(*gmteps),
        ]);
    }
    out.push_str(&tc.render());
    out.push_str(
        "(paper shape: MTEPS grows with GLT, and TurboBC's points sit up-and-right of gunrock's)\n",
    );
    out
}

/// Figure 6: speedup-vs-d and MTEPS for the big-graph set of Table 4.
pub fn fig6(cfg: Config) -> String {
    let mut out = String::from(
        "== Figure 6: big graphs — speedup over sequential vs BFS depth, and MTEPS ==\n\n",
    );
    let mut t = TextTable::new(vec!["graph", "d", "speedup vs seq", "MTEPS", "kernel"]);
    let mut pairs = Vec::new();
    for row in TABLE4 {
        let m = measure_row(row, cfg.scale, cfg.trials);
        t.row(vec![
            m.name.to_string(),
            m.d.to_string(),
            format!("{}x", fnum(m.speedup_seq())),
            fnum(m.modelled_mteps().unwrap_or(m.mteps(1))),
            row.kernel.to_string(),
        ]);
        pairs.push((m.d, m.speedup_seq()));
    }
    out.push_str(&t.render());
    let deepest = pairs.iter().max_by_key(|p| p.0).unwrap();
    let best = pairs
        .iter()
        .cloned()
        .fold((0u32, 0.0f64), |a, b| if b.1 > a.1 { b } else { a });
    out.push_str(&format!(
        "\ndeepest graph (d = {}) speedup {:.1}x; best speedup {:.1}x at d = {}\n\
         (paper shape: the deep regular graph gets the largest speedup; shallow irregular graphs get the highest MTEPS)\n",
        deepest.0, deepest.1, best.1, best.0
    ));
    out
}

/// Figure 7: exact-BC speedup and MTEPS against BFS depth (Table 5 set).
pub fn fig7(cfg: Config) -> String {
    let mut out = String::from("== Figure 7: exact BC — speedup and MTEPS vs BFS depth ==\n\n");
    let mut t = TextTable::new(vec!["graph", "d", "speedup vs seq", "MTEPS"]);
    let mut shallow: Vec<f64> = Vec::new();
    let mut deep: Vec<f64> = Vec::new();
    for &(name, _, _, _, _, _) in TABLE5 {
        let m = measure_exact(name, cfg.scale, cfg.max_sources);
        t.row(vec![
            m.name.to_string(),
            m.d.to_string(),
            format!("{}x", fnum(m.speedup_seq())),
            fnum(m.mteps()),
        ]);
        if m.d <= 10 {
            shallow.push(m.mteps());
        } else {
            deep.push(m.mteps());
        }
    }
    out.push_str(&t.render());
    if !shallow.is_empty() && !deep.is_empty() {
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        out.push_str(&format!(
            "\nmean MTEPS: shallow graphs (d <= 10) {:.0}, deep graphs {:.0}\n\
             (paper shape: the shallow mycielskians dominate MTEPS)\n",
            avg(&shallow),
            avg(&deep)
        ));
    }
    out
}

/// Scalability sweep (the paper's "highly scalable" framing): one family
/// across four scales, modelled MTEPS and memory vs size.
pub fn scaling(cfg: Config) -> String {
    let _ = cfg;
    let mut out =
        String::from("== Scalability: TurboBC-veCSC across scales (mycielski family) ==\n\n");
    let mut t = TextTable::new(vec![
        "k",
        "n",
        "m",
        "t_gpu_ms",
        "modelled MTEPS",
        "device MB",
        "host seq ms",
        "vs seq",
    ]);
    for k in [8u32, 9, 10, 11, 12, 13] {
        let g = gen::mycielski(k);
        let solver = BcSolver::new(
            &g,
            BcOptions::builder()
                .kernel(Kernel::VeCsc)
                .parallel()
                .build(),
        )
        .unwrap();
        let dev = Device::titan_xp();
        let src = g.default_source();
        let report = crate::simt_report_on(&solver, &dev, &[src]);
        let seq = BcSolver::new(
            &g,
            BcOptions::builder()
                .kernel(Kernel::VeCsc)
                .sequential()
                .build(),
        )
        .unwrap();
        let t0 = std::time::Instant::now();
        let _ = seq.bc_single_source(src).unwrap();
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mteps = g.m() as f64 / report.modelled_time_s / 1e6;
        t.row(vec![
            k.to_string(),
            fcount(g.n()),
            fcount(g.m()),
            fnum(report.modelled_time_s * 1e3),
            fnum(mteps),
            fnum(report.memory.peak as f64 / 1e6),
            fnum(seq_ms),
            format!("{:.1}x", seq_ms / (report.modelled_time_s * 1e3)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(paper shape: MTEPS and the speedup over sequential grow with graph size — Tables 3/5)\n",
    );
    out
}

/// Multi-GPU scaling (the paper's related-work reference \[16\]): 1, 2 and 4
/// simulated devices over one graph, showing compute scaling, exchange
/// volume and the replication memory floor of 1D partitioning.
pub fn multigpu(cfg: Config) -> String {
    let _ = cfg;
    let mut out = String::from(
        "== Multi-GPU: 1D column partitioning across simulated devices (mycielski14, PCIe3) ==\n\n",
    );
    let g = gen::mycielski(14);
    let s = g.default_source();
    let mut t = TextTable::new(vec![
        "devices",
        "compute ms",
        "transfer ms",
        "total ms",
        "exchange MB",
        "max device MB",
        "speedup vs 1 GPU",
    ]);
    let mut base = 0.0f64;
    for p in [1usize, 2, 4] {
        let (_, report) = turbobc::multi_gpu::bc_multi_gpu(
            &g,
            &[s],
            p,
            turbobc_simt::DeviceProps::titan_xp(),
            turbobc_simt::Interconnect::pcie3(),
        )
        .unwrap();
        if p == 1 {
            base = report.modelled_time_s;
        }
        let max_mem = report
            .per_device_memory
            .iter()
            .map(|m| m.peak)
            .max()
            .unwrap_or(0) as f64
            / 1e6;
        t.row(vec![
            p.to_string(),
            fnum(report.modelled_compute_s * 1e3),
            fnum(report.modelled_transfer_s * 1e3),
            fnum(report.modelled_time_s * 1e3),
            fnum(report.transfer_bytes as f64 / 1e6),
            fnum(max_mem),
            format!("{:.2}x", base / report.modelled_time_s),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(compute shrinks with devices while the frontier allgather grows — the classic 1D\n\
         partitioning trade-off; per-device memory is floored by the replicated f and delta_u)\n",
    );

    // 2D checkerboard at the same device count.
    out.push_str("\n2D checkerboard grid on the same graph (undirected prototype):\n");
    let mut t2 = TextTable::new(vec![
        "grid",
        "devices",
        "total ms",
        "exchange MB",
        "max worker MB",
        "max owner MB",
    ]);
    for qd in [1usize, 2, 3] {
        let (_, r) = turbobc::multi_gpu2d::bc_multi_gpu_2d(
            &g,
            &[s],
            qd,
            turbobc_simt::DeviceProps::titan_xp(),
            turbobc_simt::Interconnect::pcie3(),
        )
        .unwrap();
        let worker = r
            .per_device_memory
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx / qd != idx % qd)
            .map(|(_, m)| m.peak)
            .max()
            .unwrap_or(0) as f64
            / 1e6;
        let owner = r
            .per_device_memory
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx / qd == idx % qd)
            .map(|(_, m)| m.peak)
            .max()
            .unwrap_or(0) as f64
            / 1e6;
        t2.row(vec![
            format!("{qd}x{qd}"),
            (qd * qd).to_string(),
            fnum(r.modelled_time_s * 1e3),
            fnum(r.transfer_bytes as f64 / 1e6),
            fnum(worker),
            fnum(owner),
        ]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "(2D exchanges O(n/q) segments instead of 1D's O(n) replicas; worker cells hold no\n\
         full-length vectors — see turbobc::multi_gpu2d for the layout caveat on owners)\n",
    );
    out
}

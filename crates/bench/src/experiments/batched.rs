//! The `batched` experiment: per-source wall time of the batched
//! multi-source BC engine as the batch width `b` grows, on the
//! catalogued paper fixtures. One matrix sweep per level serves every
//! lane in the block, so per-source time should collapse as `b → 64`.
//!
//! Emits `BENCH_batched.json` (schema `turbobc-batched-v1`) into its
//! own directory — deliberately *not* `target/profiles`, whose contents
//! CI validates against the `turbobc-profile-v1` schema.

use super::Config;
use crate::table::{fcount, fnum, TextTable};
use std::path::{Path, PathBuf};
use std::time::Instant;
use turbobc::observe::json::Json;
use turbobc::{BcOptions, BcSolver};
use turbobc_graph::families::{self, Scale};
use turbobc_graph::Graph;

/// The batch widths the experiment sweeps.
pub const WIDTHS: [usize; 4] = [1, 4, 16, 64];

/// One fixture's timings across the batch widths.
#[derive(Debug, Clone)]
pub struct BatchedRow {
    /// Fixture name (a `turbobc_graph::families` stand-in).
    pub graph: String,
    /// Whether the fixture has a power-law degree distribution — the
    /// regime the issue's ≥ 2× acceptance bar targets.
    pub power_law: bool,
    /// Vertex count.
    pub n: usize,
    /// Stored arc count.
    pub m: usize,
    /// Best-of-trials wall clock per source, ms, one per [`WIDTHS`].
    pub per_source_ms: [f64; 4],
    /// Forward matrix sweeps the run performed, one per [`WIDTHS`] —
    /// the work the batching amortises (at `b = 1` this equals the sum
    /// of per-source BFS heights).
    pub sweeps: [u64; 4],
}

/// Fixtures: the differential battery's always-on trio plus one more
/// power-law stand-in, all from the paper's catalogue.
fn fixtures(scale: Scale) -> Vec<(&'static str, bool, Graph)> {
    [
        ("mark3jac060sc", false),
        ("luxembourg_osm", false),
        ("com-Youtube", true),
        ("kron_g500-logn18", true),
    ]
    .into_iter()
    .map(|(name, power_law)| {
        let g = families::generate(name, scale).expect("catalogued family");
        (name, power_law, g)
    })
    .collect()
}

/// Evenly spread BC sources, starting from the graph's default.
fn pick_sources(g: &Graph, count: usize) -> Vec<u32> {
    let n = g.n().max(1);
    let first = g.default_source() as usize;
    (0..count.max(1))
        .map(|i| ((first + i * n / count.max(1)) % n) as u32)
        .collect()
}

/// Best-of-`trials` wall clock for the batched engine at width `b`,
/// returned as (total ms, forward sweeps).
fn time_ms(g: &Graph, sources: &[u32], b: usize, trials: usize) -> (f64, u64) {
    let solver = BcSolver::new(g, BcOptions::builder().batch_width(b).build())
        .expect("fixture graphs are non-empty");
    let mut best = f64::INFINITY;
    let mut sweeps = 0u64;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let out = crate::bc_pinned(&solver, turbobc::ExecutorKind::Batched, sources);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(out.bc.len() == g.n());
        sweeps = out.stats.total_levels;
        best = best.min(elapsed);
    }
    (best, sweeps)
}

/// Measures every fixture; the module tests and [`run`] share this.
pub fn measure(cfg: Config) -> Vec<BatchedRow> {
    let sources_per_graph = cfg.max_sources.clamp(1, 64);
    fixtures(cfg.scale)
        .into_iter()
        .map(|(name, power_law, g)| {
            let sources = pick_sources(&g, sources_per_graph);
            let mut per_source_ms = [0.0f64; 4];
            let mut sweeps = [0u64; 4];
            for (i, &b) in WIDTHS.iter().enumerate() {
                let (total_ms, s) = time_ms(&g, &sources, b, cfg.trials);
                per_source_ms[i] = total_ms / sources.len() as f64;
                sweeps[i] = s;
            }
            BatchedRow {
                graph: name.to_string(),
                power_law,
                n: g.n(),
                m: g.m(),
                per_source_ms,
                sweeps,
            }
        })
        .collect()
}

/// Serialises the rows under the `turbobc-batched-v1` schema.
pub fn rows_to_json(rows: &[BatchedRow], cfg: Config) -> Json {
    Json::Obj(vec![
        ("schema".into(), "turbobc-batched-v1".into()),
        ("trials".into(), cfg.trials.into()),
        (
            "widths".into(),
            Json::Arr(WIDTHS.iter().map(|&b| b.into()).collect()),
        ),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("graph".into(), r.graph.as_str().into()),
                            ("power_law".into(), r.power_law.into()),
                            ("n".into(), r.n.into()),
                            ("m".into(), r.m.into()),
                            (
                                "per_source_ms".into(),
                                Json::Arr(r.per_source_ms.iter().map(|&t| t.into()).collect()),
                            ),
                            (
                                "sweeps".into(),
                                Json::Arr(r.sweeps.iter().map(|&s| s.into()).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Where the BENCH JSON lands; overridable so CI can point it at the
/// artifact directory.
pub fn out_path() -> PathBuf {
    std::env::var_os("TURBOBC_BATCHED_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("target").join("batched"))
        .join("BENCH_batched.json")
}

/// Runs the experiment: a text table plus the BENCH JSON on disk.
pub fn run(cfg: Config) -> String {
    let rows = measure(cfg);
    let mut out = String::from(
        "== Batched: per-source time vs batch width (bit-sliced SpMM, best-of trials) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "graph",
        "class",
        "n",
        "m",
        "b=1 ms/src",
        "b=4 ms/src",
        "b=16 ms/src",
        "b=64 ms/src",
        "b=64 speedup",
        "sweeps b=1 -> b=64",
    ]);
    for r in &rows {
        t.row(vec![
            r.graph.clone(),
            if r.power_law {
                "power-law"
            } else {
                "road/mesh"
            }
            .to_string(),
            fcount(r.n),
            fcount(r.m),
            fnum(r.per_source_ms[0]),
            fnum(r.per_source_ms[1]),
            fnum(r.per_source_ms[2]),
            fnum(r.per_source_ms[3]),
            format!("{:.2}x", r.per_source_ms[0] / r.per_source_ms[3].max(1e-9)),
            format!("{} -> {}", r.sweeps[0], r.sweeps[3]),
        ]);
    }
    out.push_str(&t.render());

    let path = out_path();
    let doc = rows_to_json(&rows, cfg);
    let written = path
        .parent()
        .map(std::fs::create_dir_all)
        .transpose()
        .and_then(|_| std::fs::write(&path, doc.pretty()).map(Some));
    match written {
        Ok(_) => out.push_str(&format!("\nBENCH JSON: {}\n", path.display())),
        Err(e) => out.push_str(&format!("\nBENCH JSON not written ({e})\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: Scale::Tiny,
            trials: 1,
            max_sources: 8,
        }
    }

    #[test]
    fn report_and_json_have_every_fixture() {
        let rows = measure(tiny_cfg());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.power_law));
        assert!(rows.iter().any(|r| !r.power_law));
        for r in &rows {
            for (i, t) in r.per_source_ms.iter().enumerate() {
                assert!(
                    t.is_finite() && *t >= 0.0,
                    "{} width {}",
                    r.graph,
                    WIDTHS[i]
                );
            }
            // Sweeps are a structural claim, so they hold in debug too:
            // wider blocks never sweep the matrix more often.
            assert!(
                r.sweeps[3] <= r.sweeps[1] && r.sweeps[1] <= r.sweeps[0],
                "{}: sweeps must not grow with the batch width: {:?}",
                r.graph,
                r.sweeps
            );
            assert!(r.sweeps[0] > 0, "{}: no forward work recorded", r.graph);
        }
        let doc = rows_to_json(&rows, tiny_cfg());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("turbobc-batched-v1")
        );
        let parsed = turbobc::observe::json::parse(&doc.pretty()).expect("own output parses");
        assert_eq!(
            parsed.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
        assert_eq!(
            parsed
                .get("widths")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(4)
        );
    }

    /// The acceptance bar from the issue: on a power-law fixture the
    /// batched engine at `b = 64` is at least 2× cheaper per source
    /// than `b = 1`. Timing-sensitive, so release only.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing assertion; run under --release")]
    fn width_64_at_least_halves_per_source_time_on_power_law() {
        let rows = measure(Config {
            scale: Scale::Small,
            trials: 3,
            max_sources: 64,
        });
        for r in &rows {
            assert!(
                r.per_source_ms[3] <= r.per_source_ms[0],
                "{}: b=64 ({:.3} ms/src) should not lose to b=1 ({:.3} ms/src)",
                r.graph,
                r.per_source_ms[3],
                r.per_source_ms[0]
            );
        }
        assert!(
            rows.iter()
                .any(|r| r.power_law && r.per_source_ms[3] * 2.0 <= r.per_source_ms[0]),
            "a power-law fixture must show >= 2x per-source speedup at b=64: {rows:?}"
        );
    }
}

//! The `direction` experiment: push vs pull vs the per-level auto
//! direction heuristic (`|frontier| + frontier edges > m/α`) on one
//! power-law and one road/mesh fixture set.
//!
//! Emits `BENCH_direction.json` (schema `turbobc-direction-v1`) into its
//! own directory — deliberately *not* `target/profiles`, whose contents
//! CI validates against the `turbobc-profile-v1` schema.

use super::Config;
use crate::table::{fcount, fnum, TextTable};
use std::path::{Path, PathBuf};
use std::time::Instant;
use turbobc::observe::json::Json;
use turbobc::observe::ProfileObserver;
use turbobc::{BcOptions, BcSolver, DirectionMode};
use turbobc_graph::families::Scale;
use turbobc_graph::{gen, Graph, DENSE_DIRECTION_FRACTION};

/// One fixture's timings under the three direction modes.
#[derive(Debug, Clone)]
pub struct DirectionRow {
    /// Fixture name.
    pub graph: String,
    /// Whether the fixture has a power-law degree distribution (the
    /// regime where pull-heavy schedules pay for full scans).
    pub power_law: bool,
    /// Vertex count.
    pub n: usize,
    /// Stored arc count.
    pub m: usize,
    /// Best-of-trials wall clock for `DirectionMode::PushOnly`, ms.
    pub push_ms: f64,
    /// Best-of-trials wall clock for `DirectionMode::PullOnly`, ms.
    pub pull_ms: f64,
    /// Best-of-trials wall clock for `DirectionMode::Auto`, ms.
    pub auto_ms: f64,
    /// Levels the auto heuristic ran as push.
    pub auto_push_levels: usize,
    /// Levels the auto heuristic ran as pull.
    pub auto_pull_levels: usize,
}

/// Fixtures: two power-law stand-ins (R-MAT / preferential attachment)
/// and two road/mesh stand-ins (road grid / Delaunay triangulation).
fn fixtures(scale: Scale) -> Vec<(&'static str, bool, Graph)> {
    let f = scale.factor();
    let sz = |base: usize| ((base as f64 * f) as usize).max(64);
    let grid = |base: usize| (((base * base) as f64 * f).sqrt() as usize).max(4);
    let rmat_scale = (12 + scale.log2_offset()).max(6) as u32;
    vec![
        ("rmat", true, gen::rmat(rmat_scale, 8, 7)),
        (
            "pref-attach",
            true,
            gen::preferential_attachment(sz(4000), 4, 11),
        ),
        ("road", false, gen::road_network(grid(14), grid(14), 6, 3)),
        ("delaunay", false, gen::delaunay(sz(3000), 5)),
    ]
}

/// Evenly spread BC sources, starting from the graph's default.
fn pick_sources(g: &Graph, count: usize) -> Vec<u32> {
    let n = g.n().max(1);
    let first = g.default_source() as usize;
    (0..count.max(1))
        .map(|i| ((first + i * n / count.max(1)) % n) as u32)
        .collect()
}

/// Best-of-`trials` wall clock for the parallel engine under `mode`, ms.
fn time_ms(g: &Graph, sources: &[u32], mode: DirectionMode, trials: usize) -> f64 {
    let solver = BcSolver::new(g, BcOptions::builder().parallel().direction(mode).build())
        .expect("fixture graphs are non-empty");
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let out = crate::bc_via_plan(&solver, sources);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(out.bc.len() == g.n());
        best = best.min(elapsed);
    }
    best
}

/// Measures every fixture; the module test and [`run`] share this.
pub fn measure(cfg: Config) -> Vec<DirectionRow> {
    let sources_per_graph = cfg.max_sources.clamp(1, 4);
    fixtures(cfg.scale)
        .into_iter()
        .map(|(name, power_law, g)| {
            let sources = pick_sources(&g, sources_per_graph);
            let push_ms = time_ms(&g, &sources, DirectionMode::PushOnly, cfg.trials);
            let pull_ms = time_ms(&g, &sources, DirectionMode::PullOnly, cfg.trials);
            let auto_ms = time_ms(&g, &sources, DirectionMode::Auto, cfg.trials);
            // One observed (ordered, per-level traced) run for the
            // decision counts; never timed.
            let solver = BcSolver::new(&g, BcOptions::builder().parallel().build())
                .expect("fixture graphs are non-empty");
            let mut obs = ProfileObserver::new();
            let plan = solver.plan(&sources).expect("sources are in range");
            solver
                .execute_observed(&plan, &mut obs)
                .expect("cpu engines are total");
            let (auto_push_levels, auto_pull_levels) = obs.profile().direction_counts();
            DirectionRow {
                graph: name.to_string(),
                power_law,
                n: g.n(),
                m: g.m(),
                push_ms,
                pull_ms,
                auto_ms,
                auto_push_levels,
                auto_pull_levels,
            }
        })
        .collect()
}

/// Serialises the rows under the `turbobc-direction-v1` schema.
pub fn rows_to_json(rows: &[DirectionRow], cfg: Config) -> Json {
    Json::Obj(vec![
        ("schema".into(), "turbobc-direction-v1".into()),
        ("alpha".into(), DENSE_DIRECTION_FRACTION.into()),
        ("trials".into(), cfg.trials.into()),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("graph".into(), r.graph.as_str().into()),
                            ("power_law".into(), r.power_law.into()),
                            ("n".into(), r.n.into()),
                            ("m".into(), r.m.into()),
                            ("push_ms".into(), r.push_ms.into()),
                            ("pull_ms".into(), r.pull_ms.into()),
                            ("auto_ms".into(), r.auto_ms.into()),
                            ("auto_push_levels".into(), r.auto_push_levels.into()),
                            ("auto_pull_levels".into(), r.auto_pull_levels.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Where the BENCH JSON lands; overridable so CI can point it at the
/// artifact directory.
pub fn out_path() -> PathBuf {
    std::env::var_os("TURBOBC_DIRECTION_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("target").join("direction"))
        .join("BENCH_direction.json")
}

/// Runs the experiment: a text table plus the BENCH JSON on disk.
pub fn run(cfg: Config) -> String {
    let rows = measure(cfg);
    let mut out =
        String::from("== Direction: push vs pull vs auto (parallel engine, best-of trials) ==\n\n");
    let mut t = TextTable::new(vec![
        "graph",
        "class",
        "n",
        "m",
        "push ms",
        "pull ms",
        "auto ms",
        "auto/best",
        "auto levels (push/pull)",
    ]);
    for r in &rows {
        let best = r.push_ms.min(r.pull_ms);
        t.row(vec![
            r.graph.clone(),
            if r.power_law {
                "power-law"
            } else {
                "road/mesh"
            }
            .to_string(),
            fcount(r.n),
            fcount(r.m),
            fnum(r.push_ms),
            fnum(r.pull_ms),
            fnum(r.auto_ms),
            format!("{:.2}x", r.auto_ms / best.max(1e-9)),
            format!("{}/{}", r.auto_push_levels, r.auto_pull_levels),
        ]);
    }
    out.push_str(&t.render());

    let path = out_path();
    let doc = rows_to_json(&rows, cfg);
    let written = path
        .parent()
        .map(std::fs::create_dir_all)
        .transpose()
        .and_then(|_| std::fs::write(&path, doc.pretty()).map(Some));
    match written {
        Ok(_) => out.push_str(&format!("\nBENCH JSON: {}\n", path.display())),
        Err(e) => out.push_str(&format!("\nBENCH JSON not written ({e})\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: Scale::Tiny,
            trials: 1,
            max_sources: 2,
        }
    }

    #[test]
    fn report_and_json_have_every_fixture() {
        let rows = measure(tiny_cfg());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.power_law));
        assert!(rows.iter().any(|r| !r.power_law));
        for r in &rows {
            assert!(r.push_ms.is_finite() && r.pull_ms.is_finite() && r.auto_ms.is_finite());
            assert!(
                r.auto_push_levels + r.auto_pull_levels > 0,
                "{}: the observed run must record level decisions",
                r.graph
            );
        }
        let doc = rows_to_json(&rows, tiny_cfg());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("turbobc-direction-v1")
        );
        let parsed = turbobc::observe::json::parse(&doc.pretty()).expect("own output parses");
        assert_eq!(
            parsed.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
    }

    #[test]
    fn road_fixtures_lean_push_and_powerlaw_fixtures_pull_their_big_levels() {
        // Structure (not timing) claims, so they hold in debug too: on a
        // road/mesh diameter the frontier almost never crosses m/α, so
        // auto is push-dominated; on power-law graphs the giant middle
        // levels cross it, so pull shows up.
        let rows = measure(tiny_cfg());
        let road = rows.iter().find(|r| r.graph == "road").unwrap();
        assert!(
            road.auto_push_levels > road.auto_pull_levels,
            "road: push {} vs pull {}",
            road.auto_push_levels,
            road.auto_pull_levels
        );
        let power: usize = rows
            .iter()
            .filter(|r| r.power_law)
            .map(|r| r.auto_pull_levels)
            .sum();
        assert!(power > 0, "power-law fixtures should pull their big levels");
    }

    /// The acceptance bar from the issue: auto never loses to the best
    /// fixed direction by more than 10%, and beats fixed-pull on at
    /// least one power-law fixture. Timing-sensitive, so release only.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing assertion; run under --release")]
    fn auto_is_competitive_with_the_best_fixed_direction() {
        let rows = measure(Config {
            scale: Scale::Small,
            trials: 5,
            max_sources: 4,
        });
        for r in &rows {
            let best = r.push_ms.min(r.pull_ms);
            assert!(
                r.auto_ms <= best * 1.10 + 1.0,
                "{}: auto {:.2}ms vs best fixed {:.2}ms",
                r.graph,
                r.auto_ms,
                best
            );
        }
        assert!(
            rows.iter().any(|r| r.power_law && r.auto_ms < r.pull_ms),
            "auto should beat fixed-pull on a power-law fixture: {rows:?}"
        );
    }
}

//! The `serve` experiment: end-to-end service throughput and latency
//! for the BC query server ([`turbobc_serve`]).
//!
//! An in-process server (4 workers) loads two catalogued fixtures, and
//! the harness measures three things per fixture over real TCP round
//! trips:
//!
//! * **cold vs cached `bc_full`** — the first full query schedules a
//!   sharded job; repeats replay the fingerprint-keyed cache entry.
//!   The issue's acceptance bar: the cached path is ≥ 10× faster;
//! * **mixed-query throughput** — concurrent clients issuing
//!   `bc_topk`/`bc_vertex`/`bc_subset` against both graphs, reported
//!   as requests/s with p50/p90/p99 latency percentiles;
//! * **cache effectiveness** — the server's own hit/miss counters
//!   after the run.
//!
//! Emits `BENCH_serve.json` (schema `turbobc-serve-v1`) so CI can
//! upload it as an artifact.

use super::Config;
use crate::table::{fcount, fnum, TextTable};
use std::path::{Path, PathBuf};
use std::time::Instant;
use turbobc::observe::json::Json;
use turbobc_graph::families::Scale;
use turbobc_serve::{Client, GraphSource, Request, ServeConfig, Server};

/// Worker-pool width for the measured server.
pub const WORKERS: usize = 4;

/// Concurrent clients in the throughput phase.
pub const CLIENTS: usize = 4;

/// Mixed queries each client issues.
pub const QUERIES_PER_CLIENT: usize = 24;

/// One fixture's service measurements.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Fixture name (a `turbobc_graph::families` stand-in).
    pub graph: String,
    /// Vertex count.
    pub n: usize,
    /// Stored arc count.
    pub m: usize,
    /// First `bc_full` round trip (schedules a sharded job), ms.
    pub cold_full_ms: f64,
    /// Best-of-trials cached `bc_full` round trip, ms.
    pub cached_full_ms: f64,
    /// Mixed queries issued in the throughput phase.
    pub requests: usize,
    /// Throughput of the mixed phase, requests/s.
    pub throughput_rps: f64,
    /// Mixed-phase latency percentiles, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
}

impl ServeRow {
    /// Cold over cached `bc_full` time (the acceptance bar wants ≥ 10).
    pub fn cache_speedup(&self) -> f64 {
        self.cold_full_ms / self.cached_full_ms.max(1e-9)
    }
}

/// Whole-run aggregates from the server's own counters.
#[derive(Debug, Clone, Copy)]
pub struct ServeTotals {
    /// Cache lookups that returned an entry.
    pub cache_hits: u64,
    /// Cache lookups that found nothing.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    }
}

fn timed_request(client: &mut Client, request: Request) -> (Json, f64) {
    let start = Instant::now();
    let doc = client.request(request).expect("benchmark request succeeds");
    (doc, start.elapsed().as_secs_f64() * 1e3)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Measures both fixtures against one in-process server; the module
/// tests and [`run`] share this.
pub fn measure(cfg: Config) -> (Vec<ServeRow>, ServeTotals) {
    let fixtures = ["smallworld", "com-Youtube"];
    let handle = Server::bind(ServeConfig {
        workers: WORKERS,
        ..ServeConfig::default()
    })
    .expect("ephemeral bind")
    .spawn()
    .expect("accept loop spawns");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    let mut rows = Vec::new();
    for name in fixtures {
        let (loaded, _) = timed_request(
            &mut client,
            Request::Load {
                graph: name.into(),
                source: GraphSource::Family {
                    family: name.into(),
                    scale: scale_name(cfg.scale).into(),
                },
                warm: false,
            },
        );
        let n = loaded.get("n").and_then(Json::as_f64).expect("n") as usize;
        let m = loaded.get("m").and_then(Json::as_f64).expect("m") as usize;

        // Cold: the first bc_full schedules a job across the worker
        // pool. Cached: every repeat replays the stored payload.
        let (cold, cold_full_ms) =
            timed_request(&mut client, Request::BcFull { graph: name.into() });
        assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));
        let mut cached_full_ms = f64::INFINITY;
        for _ in 0..cfg.trials.max(1) {
            let (warm, ms) = timed_request(&mut client, Request::BcFull { graph: name.into() });
            assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
            cached_full_ms = cached_full_ms.min(ms);
        }

        // Throughput: concurrent clients, a mixed read workload over
        // the graph just primed.
        let start = Instant::now();
        let threads: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let graph = name.to_string();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(QUERIES_PER_CLIENT);
                    for q in 0..QUERIES_PER_CLIENT {
                        let request = match q % 3 {
                            0 => Request::BcTopK {
                                graph: graph.clone(),
                                k: 8,
                            },
                            1 => Request::BcVertex {
                                graph: graph.clone(),
                                vertex: ((c * 31 + q) % 8) as u32,
                            },
                            _ => Request::BcSubset {
                                graph: graph.clone(),
                                sources: vec![(c % 4) as u32, 4 + (q % 4) as u32],
                            },
                        };
                        let (_, ms) = timed_request(&mut client, request);
                        latencies.push(ms);
                    }
                    latencies
                })
            })
            .collect();
        let mut latencies: Vec<f64> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect();
        let elapsed_s = start.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.total_cmp(b));

        rows.push(ServeRow {
            graph: name.to_string(),
            n,
            m,
            cold_full_ms,
            cached_full_ms,
            requests: latencies.len(),
            throughput_rps: latencies.len() as f64 / elapsed_s.max(1e-9),
            p50_ms: percentile(&latencies, 0.50),
            p90_ms: percentile(&latencies, 0.90),
            p99_ms: percentile(&latencies, 0.99),
        });
    }

    let (status, _) = timed_request(&mut client, Request::Status);
    let cache = status.get("cache").expect("status carries cache stats");
    let counter = |k: &str| cache.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let totals = ServeTotals {
        cache_hits: counter("hits"),
        cache_misses: counter("misses"),
        cache_hit_rate: cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0),
    };
    handle.shutdown();
    (rows, totals)
}

/// Serialises the rows under the `turbobc-serve-v1` schema.
pub fn rows_to_json(rows: &[ServeRow], totals: ServeTotals, cfg: Config) -> Json {
    Json::Obj(vec![
        ("schema".into(), "turbobc-serve-v1".into()),
        ("trials".into(), cfg.trials.into()),
        ("workers".into(), WORKERS.into()),
        ("clients".into(), CLIENTS.into()),
        ("cache_hits".into(), totals.cache_hits.into()),
        ("cache_misses".into(), totals.cache_misses.into()),
        ("cache_hit_rate".into(), totals.cache_hit_rate.into()),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("graph".into(), r.graph.as_str().into()),
                            ("n".into(), r.n.into()),
                            ("m".into(), r.m.into()),
                            ("cold_full_ms".into(), r.cold_full_ms.into()),
                            ("cached_full_ms".into(), r.cached_full_ms.into()),
                            ("cache_speedup".into(), r.cache_speedup().into()),
                            ("requests".into(), r.requests.into()),
                            ("throughput_rps".into(), r.throughput_rps.into()),
                            ("p50_ms".into(), r.p50_ms.into()),
                            ("p90_ms".into(), r.p90_ms.into()),
                            ("p99_ms".into(), r.p99_ms.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Where the BENCH JSON lands; overridable so CI can point it at the
/// artifact directory.
pub fn out_path() -> PathBuf {
    std::env::var_os("TURBOBC_SERVE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("target").join("serve"))
        .join("BENCH_serve.json")
}

/// Runs the experiment: a text table plus the BENCH JSON on disk.
pub fn run(cfg: Config) -> String {
    let (rows, totals) = measure(cfg);
    let mut out = String::from(
        "== Serve: query-server throughput, latency and cache speedup (best-of trials) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "cold ms",
        "cached ms",
        "speedup",
        "req/s",
        "p50 ms",
        "p90 ms",
        "p99 ms",
    ]);
    for r in &rows {
        t.row(vec![
            r.graph.clone(),
            fcount(r.n),
            fcount(r.m),
            fnum(r.cold_full_ms),
            fnum(r.cached_full_ms),
            format!("{:.1}x", r.cache_speedup()),
            fnum(r.throughput_rps),
            fnum(r.p50_ms),
            fnum(r.p90_ms),
            fnum(r.p99_ms),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ncache: {} hit(s), {} miss(es), hit rate {:.2}\n",
        totals.cache_hits, totals.cache_misses, totals.cache_hit_rate
    ));

    let path = out_path();
    let doc = rows_to_json(&rows, totals, cfg);
    let written = path
        .parent()
        .map(std::fs::create_dir_all)
        .transpose()
        .and_then(|_| std::fs::write(&path, doc.pretty()).map(Some));
    match written {
        Ok(_) => out.push_str(&format!("\nBENCH JSON: {}\n", path.display())),
        Err(e) => out.push_str(&format!("\nBENCH JSON not written ({e})\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: Scale::Tiny,
            trials: 2,
            max_sources: 256,
        }
    }

    #[test]
    fn rows_measure_both_fixtures_and_serialise() {
        let (rows, totals) = measure(tiny_cfg());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.n > 0 && r.m > 0, "{}: empty fixture", r.graph);
            assert_eq!(r.requests, CLIENTS * QUERIES_PER_CLIENT);
            assert!(r.throughput_rps > 0.0);
            assert!(
                r.p50_ms <= r.p90_ms && r.p90_ms <= r.p99_ms,
                "{}: percentiles out of order ({}, {}, {})",
                r.graph,
                r.p50_ms,
                r.p90_ms,
                r.p99_ms
            );
            assert!(r.cold_full_ms.is_finite() && r.cached_full_ms > 0.0);
        }
        // The derived read workload replays cached entries, so the
        // cache must see real traffic on both sides.
        assert!(totals.cache_hits > 0, "no cache hits recorded");
        assert!(totals.cache_misses > 0, "no cache misses recorded");
        assert!(totals.cache_hit_rate > 0.0 && totals.cache_hit_rate <= 1.0);

        let doc = rows_to_json(&rows, totals, tiny_cfg());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("turbobc-serve-v1")
        );
        let parsed = turbobc::observe::json::parse(&doc.pretty()).expect("own output parses");
        let parsed_rows = parsed.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(parsed_rows.len(), rows.len());
        for row in parsed_rows {
            assert!(row.get("cache_speedup").and_then(Json::as_f64).is_some());
            assert!(row.get("p99_ms").and_then(Json::as_f64).is_some());
        }
    }

    /// The issue's acceptance bar: repeated `bc_full` served from the
    /// result cache is ≥ 10× faster than the cold run that scheduled a
    /// job. Timing-sensitive, so release only.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing assertion; run under --release")]
    fn cached_bc_full_is_ten_times_faster_than_cold() {
        let (rows, _) = measure(Config {
            scale: Scale::Tiny,
            trials: 3,
            max_sources: 256,
        });
        for r in &rows {
            assert!(
                r.cache_speedup() >= 10.0,
                "{}: cached bc_full only {:.1}x faster (cold {:.3} ms, cached {:.3} ms)",
                r.graph,
                r.cache_speedup(),
                r.cold_full_ms,
                r.cached_full_ms
            );
        }
    }
}

//! The `prep` experiment: end-to-end cost of the exact graph-reduction
//! pipeline (`turbobc::prep`, DESIGN.md §14) with `PrepMode::Full`
//! against `PrepMode::Off`, on the reduction-stress fixtures plus a
//! paper control, at batch widths 1 and 64. Timing includes solver
//! construction, so the reduction's own cost counts against it.
//!
//! Emits `BENCH_prep.json` (schema `turbobc-prep-v1`) into its own
//! directory — deliberately *not* `target/profiles`, whose contents CI
//! validates against the `turbobc-profile-v1` schema.

use super::Config;
use crate::table::{fcount, fnum, TextTable};
use std::path::{Path, PathBuf};
use std::time::Instant;
use turbobc::observe::json::Json;
use turbobc::{prep, BcOptions, BcSolver, PrepMode};
use turbobc_graph::families::{self, Scale};
use turbobc_graph::Graph;

/// The batch widths the experiment sweeps Full-vs-Off at.
pub const WIDTHS: [usize; 2] = [1, 64];

/// One fixture's reduction statistics and Full-vs-Off timings.
#[derive(Debug, Clone)]
pub struct PrepRow {
    /// Fixture name (a `turbobc_graph::families` stand-in).
    pub graph: String,
    /// Whether this is the tree-heavy fixture the acceptance bar
    /// targets (the degree-1 fold collapses most of it).
    pub tree_heavy: bool,
    /// Original vertex count.
    pub n: usize,
    /// Original stored-arc count.
    pub m: usize,
    /// Vertices the engines run on under `PrepMode::Full`.
    pub n_reduced: usize,
    /// Stored arcs the engines run on under `PrepMode::Full`.
    pub m_reduced: usize,
    /// Fraction of `n + m` the reduction removes (0 = nothing).
    pub reduction_ratio: f64,
    /// Best-of-trials wall clock, ms, `PrepMode::Off`, one per [`WIDTHS`].
    pub off_ms: [f64; 2],
    /// Best-of-trials wall clock, ms, `PrepMode::Full`, one per [`WIDTHS`].
    pub full_ms: [f64; 2],
}

impl PrepRow {
    /// End-to-end Off/Full speedup at width index `i`.
    pub fn speedup(&self, i: usize) -> f64 {
        self.off_ms[i] / self.full_ms[i].max(1e-9)
    }
}

/// Fixtures: the tree-heavy broom (fold collapses the whole graph), the
/// power-law disjoint union (component split), and one paper control
/// where the reduction finds little. The third tuple field asks for
/// all-sources exact BC — the regime where the fold's weighted reduced
/// run engages (subset sources fall back to the component split).
fn fixtures(scale: Scale) -> Vec<(&'static str, bool, bool, Graph)> {
    [
        ("stress-broom", true, true),
        ("stress-powerlaw-union", false, true),
        ("luxembourg_osm", false, false),
    ]
    .into_iter()
    .map(|(name, tree_heavy, exact)| {
        let g = families::generate(name, scale).expect("known fixture");
        (name, tree_heavy, exact, g)
    })
    .collect()
}

/// Evenly spread BC sources, starting from the graph's default.
fn pick_sources(g: &Graph, count: usize) -> Vec<u32> {
    let n = g.n().max(1);
    let first = g.default_source() as usize;
    (0..count.max(1))
        .map(|i| ((first + i * n / count.max(1)) % n) as u32)
        .collect()
}

/// Best-of-`trials` end-to-end wall clock (solver construction, prep
/// plan, batched run, scatter-back) at width `b` under `mode`.
fn time_ms(g: &Graph, sources: &[u32], mode: PrepMode, b: usize, trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let solver = BcSolver::new(g, BcOptions::builder().prep(mode).batch_width(b).build())
            .expect("fixture graphs are non-empty");
        let out = crate::bc_pinned(&solver, turbobc::ExecutorKind::Batched, sources);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(out.bc.len() == g.n());
        best = best.min(elapsed);
    }
    best
}

/// Measures one fixture at every width under both modes.
fn measure_row(name: &str, tree_heavy: bool, exact: bool, g: &Graph, cfg: Config) -> PrepRow {
    let sources: Vec<u32> = if exact {
        (0..g.n() as u32).collect()
    } else {
        pick_sources(g, cfg.max_sources.clamp(1, 128))
    };
    let report = prep::analyze(g, PrepMode::Full);
    let mut off_ms = [0.0f64; 2];
    let mut full_ms = [0.0f64; 2];
    for (i, &b) in WIDTHS.iter().enumerate() {
        off_ms[i] = time_ms(g, &sources, PrepMode::Off, b, cfg.trials);
        full_ms[i] = time_ms(g, &sources, PrepMode::Full, b, cfg.trials);
    }
    PrepRow {
        graph: name.to_string(),
        tree_heavy,
        n: g.n(),
        m: g.m(),
        n_reduced: report.n_reduced,
        m_reduced: report.m_reduced,
        reduction_ratio: report.reduction_ratio(),
        off_ms,
        full_ms,
    }
}

/// Measures every fixture; the module tests and [`run`] share this.
pub fn measure(cfg: Config) -> Vec<PrepRow> {
    fixtures(cfg.scale)
        .into_iter()
        .map(|(name, tree_heavy, exact, g)| measure_row(name, tree_heavy, exact, &g, cfg))
        .collect()
}

/// Serialises the rows under the `turbobc-prep-v1` schema.
pub fn rows_to_json(rows: &[PrepRow], cfg: Config) -> Json {
    Json::Obj(vec![
        ("schema".into(), "turbobc-prep-v1".into()),
        ("trials".into(), cfg.trials.into()),
        (
            "widths".into(),
            Json::Arr(WIDTHS.iter().map(|&b| b.into()).collect()),
        ),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("graph".into(), r.graph.as_str().into()),
                            ("tree_heavy".into(), r.tree_heavy.into()),
                            ("n".into(), r.n.into()),
                            ("m".into(), r.m.into()),
                            ("n_reduced".into(), r.n_reduced.into()),
                            ("m_reduced".into(), r.m_reduced.into()),
                            ("reduction_ratio".into(), r.reduction_ratio.into()),
                            (
                                "off_ms".into(),
                                Json::Arr(r.off_ms.iter().map(|&t| t.into()).collect()),
                            ),
                            (
                                "full_ms".into(),
                                Json::Arr(r.full_ms.iter().map(|&t| t.into()).collect()),
                            ),
                            (
                                "speedup".into(),
                                Json::Arr((0..WIDTHS.len()).map(|i| r.speedup(i).into()).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Where the BENCH JSON lands; overridable so CI can point it at the
/// artifact directory.
pub fn out_path() -> PathBuf {
    std::env::var_os("TURBOBC_PREP_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("target").join("prep"))
        .join("BENCH_prep.json")
}

/// Runs the experiment: a text table plus the BENCH JSON on disk.
pub fn run(cfg: Config) -> String {
    let rows = measure(cfg);
    let mut out = String::from(
        "== Prep: exact graph reduction, end-to-end Full vs Off (best-of trials) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "reduced n",
        "reduced m",
        "ratio",
        "off b=1 ms",
        "full b=1 ms",
        "speedup",
        "off b=64 ms",
        "full b=64 ms",
        "speedup",
    ]);
    for r in &rows {
        t.row(vec![
            r.graph.clone(),
            fcount(r.n),
            fcount(r.m),
            fcount(r.n_reduced),
            fcount(r.m_reduced),
            format!("{:.2}", r.reduction_ratio),
            fnum(r.off_ms[0]),
            fnum(r.full_ms[0]),
            format!("{:.2}x", r.speedup(0)),
            fnum(r.off_ms[1]),
            fnum(r.full_ms[1]),
            format!("{:.2}x", r.speedup(1)),
        ]);
    }
    out.push_str(&t.render());

    let path = out_path();
    let doc = rows_to_json(&rows, cfg);
    let written = path
        .parent()
        .map(std::fs::create_dir_all)
        .transpose()
        .and_then(|_| std::fs::write(&path, doc.pretty()).map(Some));
    match written {
        Ok(_) => out.push_str(&format!("\nBENCH JSON: {}\n", path.display())),
        Err(e) => out.push_str(&format!("\nBENCH JSON not written ({e})\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: Scale::Tiny,
            trials: 1,
            max_sources: 8,
        }
    }

    #[test]
    fn report_and_json_have_every_fixture() {
        let rows = measure(tiny_cfg());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.iter().filter(|r| r.tree_heavy).count(), 1);
        for r in &rows {
            assert!(r.n_reduced <= r.n && r.m_reduced <= r.m, "{r:?}");
            assert!(
                (0.0..1.0).contains(&r.reduction_ratio),
                "{}: ratio {}",
                r.graph,
                r.reduction_ratio
            );
            for i in 0..WIDTHS.len() {
                assert!(r.off_ms[i].is_finite() && r.off_ms[i] >= 0.0);
                assert!(r.full_ms[i].is_finite() && r.full_ms[i] >= 0.0);
            }
            // Structural claims that hold in debug too: the stress
            // fixtures must actually shrink, the fold must devour the
            // broom almost entirely.
            if r.graph.starts_with("stress-") {
                assert!(r.reduction_ratio > 0.0, "{}: nothing reduced", r.graph);
                assert!(r.n_reduced < r.n, "{r:?}");
            }
            if r.tree_heavy {
                assert!(
                    r.n_reduced * 4 < r.n,
                    "{}: fold left {} of {} vertices",
                    r.graph,
                    r.n_reduced,
                    r.n
                );
            }
        }
        let doc = rows_to_json(&rows, tiny_cfg());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("turbobc-prep-v1")
        );
        let parsed = turbobc::observe::json::parse(&doc.pretty()).expect("own output parses");
        assert_eq!(
            parsed.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("widths")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    /// The acceptance bar from the issue: on the tree-heavy fixture the
    /// Full pipeline beats Off end-to-end at both widths, with a
    /// nonzero reduction ratio. Timing-sensitive, so release only.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing assertion; run under --release")]
    fn full_beats_off_on_the_tree_heavy_fixture() {
        // Only the tree-heavy fixture is timed here — the full sweep
        // (including the all-sources Off baselines on the other
        // fixtures) is the bench run's job, not the acceptance gate's.
        let cfg = Config {
            scale: Scale::Small,
            trials: 2,
            max_sources: 128,
        };
        let (name, tree_heavy, exact, g) = fixtures(cfg.scale)
            .into_iter()
            .find(|f| f.1)
            .expect("broom present");
        let r = &measure_row(name, tree_heavy, exact, &g, cfg);
        assert!(r.reduction_ratio > 0.0, "{r:?}");
        for (i, &b) in WIDTHS.iter().enumerate() {
            assert!(
                r.full_ms[i] < r.off_ms[i],
                "{}: Full ({:.3} ms) must beat Off ({:.3} ms) at b={}",
                r.graph,
                r.full_ms[i],
                r.off_ms[i],
                b
            );
        }
    }
}

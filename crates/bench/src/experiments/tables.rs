//! Tables 1–5: BC/vertex on regular and irregular graphs, big-graph OOM
//! comparison, and exact BC.

use super::Config;
use crate::runner::{kernel_from_name, measure_exact, measure_row, Measured};
use crate::table::{fcount, fnum, TextTable};
use turbobc::footprint;
use turbobc_baselines::gunrock_like;
use turbobc_graph::families::{self, PaperRow, TABLE1, TABLE2, TABLE3, TABLE4, TABLE5};
use turbobc_simt::{Device, DeviceProps};

fn rows_for(table_no: u8) -> &'static [PaperRow] {
    match table_no {
        1 => TABLE1,
        2 => TABLE2,
        3 => TABLE3,
        4 => TABLE4,
        _ => panic!("no such table"),
    }
}

fn ratio_cell(measured: f64, paper: Option<f64>) -> String {
    match paper {
        Some(p) => format!("{}x / {}x", fnum(measured), fnum(p)),
        None => format!("{}x / OOM", fnum(measured)),
    }
}

/// One BC/vertex table (1, 2 or 3): measured vs published, per row.
pub fn table(table_no: u8, cfg: Config) -> String {
    let rows = rows_for(table_no);
    let kernel = rows[0].kernel;
    let mut out = format!(
        "== Table {table_no}: BC/vertex with TurboBC-{kernel} ({} scale, best of {} trials) ==\n\
         columns `a / b`: a = this reproduction, b = paper. `t_gpu`/`MTEPS`/`vs seq` use the SIMT\n\
         simulator's modelled Titan-Xp time against the measured host-sequential baseline (the\n\
         paper's own GPU-vs-CPU comparison); `vs gunrock` compares both systems' modelled GPU\n\
         times on the same simulator; the ligra column is a host wall-clock ratio.\n\n",
        format_args!("{:?}", cfg.scale).to_string().to_lowercase(),
        cfg.trials,
    );
    let mut t = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "deg(max/mu/sigma)",
        "d /paper",
        "scf~",
        "t_gpu_ms",
        "MTEPS /paper",
        "vs seq /paper",
        "vs gunrock /paper",
        "vs ligra /paper",
    ]);
    let mut ms: Vec<Measured> = Vec::new();
    for row in rows {
        let m = measure_row(row, cfg.scale, cfg.trials);
        t.row(vec![
            m.name.to_string(),
            fcount(m.n),
            fcount(m.m),
            format!(
                "{}/{}/{}",
                m.stats.degree.max,
                fnum(m.stats.degree.mean),
                fnum(m.stats.degree.std)
            ),
            format!("{} /{}", m.d, row.d),
            fnum(m.stats.scf),
            fnum(m.modelled_ms.unwrap_or(m.turbobc_ms)),
            format!(
                "{} /{}",
                fnum(m.modelled_mteps().unwrap_or(m.mteps(1))),
                fnum(row.mteps)
            ),
            ratio_cell(m.speedup_seq(), Some(row.speedup_seq)),
            ratio_cell(m.speedup_gunrock(), row.speedup_gunrock),
            ratio_cell(m.speedup_ligra(), row.speedup_ligra),
        ]);
        ms.push(m);
    }
    out.push_str(&t.render());
    let avg = |f: &dyn Fn(&Measured) -> f64| ms.iter().map(f).sum::<f64>() / ms.len() as f64;
    out.push_str(&format!(
        "\naverage speedups: {:.1}x vs sequential (modelled GPU), {:.2}x vs gunrock-like (host), {:.2}x vs ligra-like (host)\n",
        avg(&|m| m.speedup_seq()),
        avg(&|m| m.speedup_gunrock()),
        avg(&|m| m.speedup_ligra()),
    ));
    out
}

/// Table 4: big graphs — timings plus the device-memory OOM comparison
/// that is the paper's headline claim (gunrock OOM, TurboBC fits).
pub fn table4(cfg: Config) -> String {
    let mut out = format!(
        "== Table 4: big graphs — TurboBC fits where gunrock-like OOMs ({} scale) ==\n\n",
        format_args!("{:?}", cfg.scale).to_string().to_lowercase()
    );

    // Part 1: timing rows (vs sequential and ligra, as in the paper).
    let mut t = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "d /paper",
        "kernel",
        "t_gpu_ms",
        "MTEPS /paper",
        "vs seq /paper",
        "vs ligra /paper",
    ]);
    let mut measured = Vec::new();
    for row in TABLE4 {
        let m = measure_row(row, cfg.scale, cfg.trials);
        t.row(vec![
            m.name.to_string(),
            fcount(m.n),
            fcount(m.m),
            format!("{} /{}", m.d, row.d),
            row.kernel.to_string(),
            fnum(m.modelled_ms.unwrap_or(m.turbobc_ms)),
            format!(
                "{} /{}",
                fnum(m.modelled_mteps().unwrap_or(m.mteps(1))),
                fnum(row.mteps)
            ),
            ratio_cell(m.speedup_seq(), Some(row.speedup_seq)),
            ratio_cell(m.speedup_ligra(), row.speedup_ligra),
        ]);
        measured.push(m);
    }
    out.push_str(&t.render());

    // Part 2: device-memory comparison. The device capacity is scaled
    // with the graphs: the paper's 12 196 MB Titan Xp sat *between* the
    // two systems' working sets for these graphs (TurboBC ≈ 7.9 GB vs
    // gunrock ≈ 11.4+ GB for kmer_V1r), so the simulated device gets the
    // midpoint of the two requirements.
    out.push_str("\ndevice-memory comparison (simulated device, capacity midway between the two working sets):\n");
    let mut mt = TextTable::new(vec![
        "graph",
        "TurboBC peak MB (7n+m words)",
        "gunrock need MB (9n+2m words)",
        "capacity MB",
        "TurboBC",
        "gunrock",
    ]);
    for m in &measured {
        let probe = Device::titan_xp();
        let kernel = kernel_from_name(m.paper.kernel);
        let turbo_peak = footprint::plan_peak_on_device(&probe, m.n, m.m, kernel).unwrap();
        let probe2 = Device::titan_xp();
        let _plan = gunrock_like::plan_on_device(&probe2, m.n, m.m).unwrap();
        let gunrock_peak = probe2.memory().peak;
        let capacity = (turbo_peak + gunrock_peak) / 2;
        let dev = Device::with_capacity(DeviceProps::titan_xp(), capacity);
        let turbo = footprint::plan_peak_on_device(&dev, m.n, m.m, kernel);
        let dev2 = Device::with_capacity(DeviceProps::titan_xp(), capacity);
        let gunrock = gunrock_like::plan_on_device(&dev2, m.n, m.m);
        mt.row(vec![
            m.name.to_string(),
            format!("{:.1}", turbo_peak as f64 / 1e6),
            format!("{:.1}", gunrock_peak as f64 / 1e6),
            format!("{:.1}", capacity as f64 / 1e6),
            if turbo.is_ok() {
                "ok".into()
            } else {
                "OOM".to_string()
            },
            if gunrock.is_ok() {
                "ok".into()
            } else {
                "OOM".to_string()
            },
        ]);
    }
    out.push_str(&mt.render());
    out.push_str("(paper: gunrock = OOM on all four graphs; TurboBC completed them all)\n");
    out
}

/// Table 5: exact BC (all sources, capped for the sequential baseline).
pub fn table5(cfg: Config) -> String {
    let mut out = format!(
        "== Table 5: exact BC over {} sources per graph ({} scale) ==\n\n",
        cfg.max_sources,
        format_args!("{:?}", cfg.scale).to_string().to_lowercase()
    );
    let mut t = TextTable::new(vec![
        "graph",
        "d /paper",
        "srcs*m (1e6)",
        "t_gpu_s",
        "MTEPS",
        "vs seq /paper",
    ]);
    for &(name, paper_d, _nm, _rt, _mteps, paper_sx) in TABLE5 {
        assert!(
            families::find(name).is_some(),
            "{name} missing from catalog"
        );
        let m = measure_exact(name, cfg.scale, cfg.max_sources);
        t.row(vec![
            m.name.to_string(),
            format!("{} /{}", m.d, paper_d),
            fnum(m.sources as f64 * m.m as f64 / 1e6),
            fnum(m.modelled_s),
            fnum(m.mteps()),
            ratio_cell(m.speedup_seq(), Some(paper_sx)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(paper shape: speedup and MTEPS grow with graph size; shallow graphs reach the highest MTEPS)\n",
    );
    out
}

//! Minimal aligned-text table formatter for experiment output.

/// A text table: header row plus data rows, columns padded to width.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with single-space-padded columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible precision for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Formats a count with thousands grouped as `k`/`M` like the paper's
/// `×10³` columns.
pub fn fcount(x: usize) -> String {
    if x >= 10_000_000 {
        format!("{:.1}M", x as f64 / 1e6)
    } else if x >= 10_000 {
        format!("{:.1}k", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "2.5"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a  "));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.14467), "3.14");
        assert_eq!(fnum(42.42), "42.4");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fcount(999), "999");
        assert_eq!(fcount(25_000), "25.0k");
        assert_eq!(fcount(12_000_000), "12.0M");
    }
}

//! Measurement machinery shared by the table experiments: generate a
//! paper graph's stand-in, run TurboBC and all three baselines, and
//! produce one comparable row.

use std::time::{Duration, Instant};
use turbobc::{BcOptions, BcResult, BcSolver, ExecutorKind, Kernel, SimtReport};
use turbobc_baselines::gunrock_like::GunrockBc;
use turbobc_graph::families::{PaperRow, Scale};
use turbobc_graph::{bfs, families, Graph, GraphStats, VertexId};

/// Plan/execute BC run under the solver's own dispatch mode — the
/// harness-wide replacement for the 0.2 `bc_sources`.
pub fn bc_via_plan(solver: &BcSolver, sources: &[VertexId]) -> BcResult {
    let plan = solver.plan(sources).expect("sources are in range");
    solver
        .execute(&plan)
        .expect("cpu engines are total")
        .into_bc()
        .expect("BC plans produce a BC result")
}

/// Plan/execute BC run pinned to one executor (replacement for the 0.2
/// `bc_batched` and friends).
pub fn bc_pinned(solver: &BcSolver, kind: ExecutorKind, sources: &[VertexId]) -> BcResult {
    let plan = solver
        .plan_pinned(kind, sources)
        .expect("sources are in range");
    solver
        .execute(&plan)
        .expect("pinned engines are total on fixture graphs")
        .into_bc()
        .expect("BC plans produce a BC result")
}

/// Pinned-SIMT plan/execute run on `dev`, returning the device report
/// (replacement for the 0.2 `run_simt_on`).
pub fn simt_report_on(
    solver: &BcSolver,
    dev: &turbobc_simt::Device,
    sources: &[VertexId],
) -> SimtReport {
    let plan = solver
        .plan_pinned(ExecutorKind::Simt, sources)
        .expect("sources are in range");
    solver
        .execute_on(dev, &plan)
        .expect("Titan Xp capacity suffices")
        .simt_report()
        .cloned()
        .expect("SIMT plans carry a device report")
}

/// Runs `f` `trials` times and returns the best (minimum) duration —
/// matching benchmarking practice for noisy shared machines (the paper
/// averages 50 trials on a quiet server; minimum-of-k is the
/// lower-variance equivalent).
pub fn time_best<R>(trials: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(trials >= 1);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..trials {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
        }
        out = Some(r);
    }
    (best, out.unwrap())
}

/// One measured row of a reproduction table.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Paper graph name.
    pub name: &'static str,
    /// The paper's published row.
    pub paper: PaperRow,
    /// Stand-in vertex count.
    pub n: usize,
    /// Stand-in stored arc count.
    pub m: usize,
    /// Degree statistics of the stand-in.
    pub stats: GraphStats,
    /// BFS depth `d` from the measurement source.
    pub d: u32,
    /// Kernel used (the paper's per-table kernel).
    pub kernel: Kernel,
    /// TurboBC parallel runtime (ms, best of trials).
    pub turbobc_ms: f64,
    /// Sequential Algorithm 1 runtime (ms).
    pub seq_ms: f64,
    /// gunrock-like runtime (ms).
    pub gunrock_ms: f64,
    /// ligra-like runtime (ms).
    pub ligra_ms: f64,
    /// Modelled Titan-Xp runtime from the SIMT simulator (ms), when the
    /// simulation was run. This is the reproduction's stand-in for the
    /// paper's CUDA wall-clock: the paper's speedup columns compare GPU
    /// wall-clock against host-CPU baselines, so we compare the modelled
    /// GPU time against the same host baselines.
    pub modelled_ms: Option<f64>,
    /// Whole-run modelled GLT (GB/s) from the simulation.
    pub modelled_glt: Option<f64>,
    /// Modelled Titan-Xp time of the gunrock-like BC on the same
    /// simulator (ms) — the like-for-like counterpart the paper's
    /// `(gunrock)x` column compares against.
    pub gunrock_modelled_ms: Option<f64>,
}

impl Measured {
    /// Millions of traversed edges per second (`m / t`, per the paper's
    /// BC/vertex definition; multiply by sources for exact runs).
    pub fn mteps(&self, sources: usize) -> f64 {
        self.m as f64 * sources as f64 / (self.turbobc_ms / 1e3) / 1e6
    }

    /// Modelled-GPU MTEPS (`m / t_modelled`), when available.
    pub fn modelled_mteps(&self) -> Option<f64> {
        self.modelled_ms.map(|t| self.m as f64 / (t / 1e3) / 1e6)
    }

    /// The paper's "(sequential)x": GPU time vs host-sequential time —
    /// here modelled-GPU vs measured-sequential. Falls back to the CPU
    /// wall-clock ratio when no simulation was run.
    pub fn speedup_seq(&self) -> f64 {
        self.seq_ms / self.modelled_ms.unwrap_or(self.turbobc_ms)
    }

    /// CPU wall-clock speedup of the rayon engine over the sequential
    /// baseline (≈ 1 on a single-core host).
    pub fn cpu_speedup_seq(&self) -> f64 {
        self.seq_ms / self.turbobc_ms
    }

    /// The paper's `(gunrock)x`: both systems on the same (simulated)
    /// GPU. Falls back to the host wall-clock ratio when no simulation
    /// was run.
    pub fn speedup_gunrock(&self) -> f64 {
        match (self.gunrock_modelled_ms, self.modelled_ms) {
            (Some(g), Some(t)) => g / t,
            _ => self.gunrock_ms / self.turbobc_ms,
        }
    }

    /// CPU wall-clock speedup over the gunrock-like baseline.
    pub fn cpu_speedup_gunrock(&self) -> f64 {
        self.gunrock_ms / self.turbobc_ms
    }

    /// CPU wall-clock speedup over the ligra-like baseline.
    pub fn speedup_ligra(&self) -> f64 {
        self.ligra_ms / self.turbobc_ms
    }
}

/// Maps a paper table's kernel acronym onto [`Kernel`].
pub fn kernel_from_name(name: &str) -> Kernel {
    match name {
        "scCOOC" => Kernel::ScCooc,
        "scCSC" => Kernel::ScCsc,
        "veCSC" => Kernel::VeCsc,
        _ => Kernel::Auto,
    }
}

/// Generates a row's stand-in graph at `scale`.
pub fn generate(row: &PaperRow, scale: Scale) -> Graph {
    families::generate(row.name, scale).unwrap_or_else(|| panic!("no generator for {}", row.name))
}

/// Measures a BC/vertex experiment for one paper row: TurboBC (parallel,
/// the row's kernel) against the sequential, gunrock-like and ligra-like
/// baselines, from the max-out-degree source. With `with_simt`, also
/// executes the run on the SIMT simulator (deterministic — one trial) to
/// obtain the modelled Titan-Xp time.
pub fn measure_row_opts(row: &PaperRow, scale: Scale, trials: usize, with_simt: bool) -> Measured {
    let graph = generate(row, scale);
    let stats = GraphStats::compute(&graph);
    let source = graph.default_source();
    let d = bfs(&graph, source).height;
    let kernel = kernel_from_name(row.kernel);

    let solver = BcSolver::new(
        &graph,
        BcOptions::builder().kernel(kernel).parallel().build(),
    )
    .unwrap();
    let (turbo_t, _) = time_best(trials, || solver.bc_single_source(source).unwrap());

    let seq_solver = BcSolver::new(
        &graph,
        BcOptions::builder().kernel(kernel).sequential().build(),
    )
    .unwrap();
    let (seq_t, _) = time_best(trials, || seq_solver.bc_single_source(source).unwrap());

    let gunrock = GunrockBc::new(&graph);
    let (gun_t, _) = time_best(trials, || gunrock.bc_single_source(source));

    let (ligra_t, _) = time_best(trials, || {
        turbobc_ligra::bc::bc_single_source(&graph, source)
    });

    let (modelled_ms, modelled_glt, gunrock_modelled_ms) = if with_simt {
        let dev = turbobc_simt::Device::titan_xp();
        let report = simt_report_on(&solver, &dev, &[source]);
        let gr = turbobc_baselines::gunrock_simt::bc_single_source_simt(&graph, source);
        (
            Some(report.modelled_time_s * 1e3),
            Some(report.glt_gbs),
            Some(gr.modelled_time_s * 1e3),
        )
    } else {
        (None, None, None)
    };

    Measured {
        name: row.name,
        paper: *row,
        n: graph.n(),
        m: graph.m(),
        stats,
        d,
        kernel,
        turbobc_ms: turbo_t.as_secs_f64() * 1e3,
        seq_ms: seq_t.as_secs_f64() * 1e3,
        gunrock_ms: gun_t.as_secs_f64() * 1e3,
        ligra_ms: ligra_t.as_secs_f64() * 1e3,
        modelled_ms,
        modelled_glt,
        gunrock_modelled_ms,
    }
}

/// [`measure_row_opts`] with the simulation enabled.
pub fn measure_row(row: &PaperRow, scale: Scale, trials: usize) -> Measured {
    measure_row_opts(row, scale, trials, true)
}

/// Measures an exact-BC experiment (all sources — or a deterministic cap
/// of `max_sources` to keep the sequential baseline tractable; the cap is
/// reported by the caller).
pub struct ExactMeasured {
    /// Graph name.
    pub name: &'static str,
    /// `n × m` of the stand-in.
    pub n: usize,
    /// Stored arcs.
    pub m: usize,
    /// BFS depth from the default source.
    pub d: u32,
    /// Sources processed.
    pub sources: usize,
    /// TurboBC parallel runtime, seconds.
    pub turbobc_s: f64,
    /// Sequential runtime, seconds.
    pub seq_s: f64,
    /// Modelled Titan-Xp time for the same source set, seconds
    /// (simulated on a deterministic subset and scaled linearly).
    pub modelled_s: f64,
}

impl ExactMeasured {
    /// Exact-BC MTEPS on the modelled GPU: `sources · m / t` (the
    /// paper's Table 5 definition).
    pub fn mteps(&self) -> f64 {
        self.sources as f64 * self.m as f64 / self.modelled_s / 1e6
    }

    /// The paper's "(seq.)x": modelled GPU vs host sequential.
    pub fn speedup_seq(&self) -> f64 {
        self.seq_s / self.modelled_s
    }

    /// CPU wall-clock ratio (≈ 1 on a single-core host).
    pub fn cpu_speedup_seq(&self) -> f64 {
        self.seq_s / self.turbobc_s
    }
}

/// Runs the exact-BC measurement for one named graph.
pub fn measure_exact(name: &'static str, scale: Scale, max_sources: usize) -> ExactMeasured {
    let graph =
        families::generate(name, scale).unwrap_or_else(|| panic!("no generator for {name}"));
    let row = families::find(name).expect("catalogued graph");
    let kernel = kernel_from_name(row.kernel);
    let n = graph.n();
    let sources: Vec<VertexId> = (0..n.min(max_sources)).map(|s| s as VertexId).collect();
    let d = bfs(&graph, graph.default_source()).height;

    let par = BcSolver::new(
        &graph,
        BcOptions::builder().kernel(kernel).parallel().build(),
    )
    .unwrap();
    let t0 = Instant::now();
    let _ = bc_via_plan(&par, &sources);
    let turbobc_s = t0.elapsed().as_secs_f64();

    let seq = BcSolver::new(
        &graph,
        BcOptions::builder().kernel(kernel).sequential().build(),
    )
    .unwrap();
    let t0 = Instant::now();
    let _ = bc_via_plan(&seq, &sources);
    let seq_s = t0.elapsed().as_secs_f64();

    // Modelled GPU time: simulate a deterministic subset of the sources
    // and scale linearly (every source costs the same kernel pipeline).
    let probe: Vec<VertexId> = sources.iter().copied().take(4).collect();
    let dev = turbobc_simt::Device::titan_xp();
    let report = simt_report_on(&par, &dev, &probe);
    let modelled_s = report.modelled_time_s / probe.len() as f64 * sources.len() as f64;

    ExactMeasured {
        name,
        n,
        m: graph.m(),
        d,
        sources: sources.len(),
        turbobc_s,
        seq_s,
        modelled_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_best_returns_minimum() {
        let mut calls = 0;
        let (t, v) = time_best(3, || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(1));
            calls
        });
        assert_eq!(calls, 3);
        assert_eq!(v, 3);
        assert!(t >= Duration::from_millis(1));
    }

    #[test]
    fn kernel_name_mapping() {
        assert_eq!(kernel_from_name("scCOOC"), Kernel::ScCooc);
        assert_eq!(kernel_from_name("scCSC"), Kernel::ScCsc);
        assert_eq!(kernel_from_name("veCSC"), Kernel::VeCsc);
        assert_eq!(kernel_from_name("???"), Kernel::Auto);
    }

    #[test]
    fn measure_row_produces_consistent_numbers() {
        let row = turbobc_graph::families::TABLE1[0]; // mark3jac060sc
        let m = measure_row(&row, Scale::Tiny, 1);
        assert!(m.turbobc_ms > 0.0 && m.seq_ms > 0.0);
        assert!(m.n > 100);
        assert!(m.d > 10, "mark3jac is deep, got {}", m.d);
        assert!(m.mteps(1) > 0.0);
    }

    #[test]
    fn measure_exact_counts_sources() {
        let m = measure_exact("mycielskian15", Scale::Tiny, 16);
        assert_eq!(m.sources, 16);
        assert!(m.speedup_seq() > 0.0);
        assert!(m.mteps() > 0.0);
    }
}

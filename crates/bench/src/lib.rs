//! Benchmark harness regenerating every table and figure of the TurboBC
//! paper (see `DESIGN.md` §6 for the experiment index).
//!
//! The `experiments` binary drives it:
//!
//! ```text
//! cargo run -p turbobc-bench --release --bin experiments -- all
//! cargo run -p turbobc-bench --release --bin experiments -- table1 [--scale small] [--trials 3]
//! ```
//!
//! Every experiment prints the paper's published row next to the
//! reproduction's measured row. Absolute numbers are expected to differ
//! (synthetic scaled graphs, CPU instead of a Titan Xp); the *shape* —
//! which kernel wins where, how speedups trend with depth and size, who
//! runs out of memory first — is the reproduction target.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod experiments;
pub mod profiles;
pub mod runner;
pub mod table;

pub use runner::{bc_pinned, bc_via_plan, measure_row, simt_report_on, time_best, Measured};

//! Release-mode randomized soak: every engine/kernel + baselines +
//! extensions vs oracles on hundreds of random graphs.
use rand::{Rng, SeedableRng};
use turbobc::{BcOptions, BcSolver, Engine, Kernel};
use turbobc_baselines::{brandes_single_source, gunrock_like::GunrockBc};
use turbobc_graph::Graph;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xDEAD);
    let mut checked = 0usize;
    for trial in 0..400 {
        let n = 2 + rng.gen_range(0..120);
        let m = rng.gen_range(0..6 * n);
        let directed = trial % 2 == 0;
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
            .collect();
        let g = Graph::from_edges(n, directed, &edges);
        let s = (rng.gen_range(0..n)) as u32;
        let want = brandes_single_source(&g, s);
        let close = |got: &[f64], tag: &str| {
            for (v, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-7,
                    "trial {trial} {tag} bc[{v}]: {a} vs {b}"
                );
            }
        };
        for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
            for engine in [Engine::Sequential, Engine::Parallel] {
                let solver = BcSolver::new(
                    &g,
                    BcOptions::builder().kernel(kernel).engine(engine).build(),
                )
                .unwrap();
                close(
                    &solver.bc_single_source(s).unwrap().bc,
                    &format!("{kernel:?}/{engine:?}"),
                );
                checked += 1;
            }
            let solver =
                BcSolver::new(&g, BcOptions::builder().kernel(kernel).sequential().build())
                    .unwrap();
            let dev = turbobc_simt::Device::titan_xp();
            let plan = solver
                .plan_pinned(turbobc::ExecutorKind::Simt, &[s])
                .unwrap();
            let r = solver
                .execute_on(&dev, &plan)
                .unwrap()
                .into_bc()
                .expect("BC plans produce a BC result");
            close(&r.bc, &format!("simt/{kernel:?}"));
            checked += 1;
        }
        close(&GunrockBc::new(&g).bc_single_source(s), "gunrock");
        close(&turbobc_ligra::bc::bc_single_source(&g, s), "ligra");
        close(
            &turbobc_baselines::gunrock_simt::bc_single_source_simt(&g, s).bc,
            "gunrock_simt",
        );
        if !directed {
            let (bc2d, _) = turbobc::multi_gpu2d::bc_multi_gpu_2d(
                &g,
                &[s],
                2,
                turbobc_simt::DeviceProps::titan_xp(),
                turbobc_simt::Interconnect::pcie3(),
            )
            .unwrap();
            close(&bc2d, "2d-grid");
        }
        let (bc1d, _) = turbobc::multi_gpu::bc_multi_gpu(
            &g,
            &[s],
            3,
            turbobc_simt::DeviceProps::titan_xp(),
            turbobc_simt::Interconnect::pcie3(),
        )
        .unwrap();
        close(&bc1d, "1d-multi");
        checked += 4;
    }
    println!("soak passed: {checked} solver checks across 400 random graphs");
}

//! CLI entry point: regenerate any table or figure of the TurboBC paper.
//!
//! ```text
//! experiments all
//! experiments table1 table3 fig5 --scale medium --trials 5 --max-sources 512
//! experiments list
//! ```

use turbobc_bench::experiments::{self, Config, ALL};
use turbobc_graph::families::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id>... [--scale tiny|small|medium|large] [--trials N] [--max-sources N] [--out DIR]\n\
         ids: {}  (or `all`, `list`, `profiles`)\n\
         `profiles` emits BENCH_*.json run profiles into DIR (default target/profiles)",
        ALL.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut cfg = Config::default();
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir = String::from("target/profiles");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = it.next().unwrap_or_else(|| usage()),
            "--scale" => {
                cfg.scale = match it.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    Some("large") => Scale::Large,
                    _ => usage(),
                }
            }
            "--trials" => {
                cfg.trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-sources" => {
                cfg.max_sources = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "list" => {
                for id in ALL {
                    println!("{id}");
                }
                return;
            }
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "all") {
        print!("{}", experiments::run_all(cfg));
        return;
    }
    for id in &ids {
        if id == "profiles" {
            let dir = std::path::PathBuf::from(&out_dir);
            match turbobc_bench::profiles::emit_default_profiles(&dir) {
                Ok(paths) => {
                    for p in paths {
                        println!("wrote {}", p.display());
                    }
                }
                Err(e) => {
                    eprintln!("profile emission failed: {e}");
                    std::process::exit(1);
                }
            }
            continue;
        }
        match experiments::run(id, cfg) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!("unknown experiment `{id}`");
                usage();
            }
        }
    }
}

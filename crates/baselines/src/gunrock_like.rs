//! A gunrock-style parallel BC baseline: explicit frontier queues,
//! direction-optimising (push–pull) BFS, and the `9n + 2m`-word array
//! inventory of the paper's Figure 4.
//!
//! The paper compares TurboBC against the BC operator of the gunrock GPU
//! library. Two of its properties matter for the reproduction:
//!
//! 1. **Speed class** — a work-efficient parallel Brandes with
//!    direction-optimising BFS; reimplemented here on rayon with the same
//!    structure (per-level frontier queues, push for sparse frontiers,
//!    pull for dense ones, pull-style dependency accumulation).
//! 2. **Memory footprint** — gunrock keeps both adjacency directions plus
//!    label/sigma/delta/bc arrays and double frontier queues on the
//!    device: `9n + 2m` words against TurboBC's `7n + m`. The
//!    [`plan_on_device`] helper performs exactly that allocation against a
//!    simulated [`turbobc_simt::Device`], which is how the Table 4 *OOM*
//!    entries and Figures 3/5a are reproduced.

use rayon::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};

/// Atomic saturating `i64 +=`: shortest-path counts cap at `i64::MAX`
/// instead of wrapping (see `turbobc_sparse::Scalar`).
#[inline]
fn atomic_i64_sat_add(cell: &AtomicI64, val: i64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = cur.saturating_add(val);
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}
use turbobc_graph::{Graph, VertexId};
use turbobc_simt::{Device, DeviceBuffer, DeviceError};
use turbobc_sparse::{Csc, Csr};

/// Device words (4-byte) gunrock's BC needs for an `n`-vertex, `m`-edge
/// graph: out-CSR (`n + m`), in-CSC (`n + m`), labels, sigma, delta, bc,
/// two frontier queues and a scan buffer (`7n`).
pub fn footprint_words(n: usize, m: usize) -> usize {
    9 * n + 2 * m
}

/// The live device allocations behind a gunrock-like run. Element sizes
/// match the TurboBC engine's for a like-for-like comparison: index and
/// label arrays are `u32`, the numeric σ/δ/bc vectors are 64-bit (the
/// paper counts both inventories in *words*; what matters for Figures
/// 3/5a and the Table 4 OOMs is that the two systems use the same
/// element sizes for the same roles).
#[derive(Debug)]
pub struct DevicePlan {
    index_buffers: Vec<DeviceBuffer<u32>>,
    value_buffers: Vec<DeviceBuffer<u64>>,
}

impl DevicePlan {
    /// Total elements (words) allocated.
    pub fn words(&self) -> usize {
        self.index_buffers.iter().map(|b| b.len()).sum::<usize>()
            + self.value_buffers.iter().map(|b| b.len()).sum::<usize>()
    }
}

/// Attempts to allocate gunrock's BC working set on the device. Fails
/// with [`DeviceError::OutOfMemory`] when the graph does not fit — the
/// paper's *OOM* table entries.
pub fn plan_on_device(device: &Device, n: usize, m: usize) -> Result<DevicePlan, DeviceError> {
    let mut index_buffers = Vec::new();
    let mut value_buffers = Vec::new();
    // Out-going CSR: row offsets + column indices.
    index_buffers.push(device.alloc::<u32>(n + 1)?);
    index_buffers.push(device.alloc::<u32>(m)?);
    // Incoming CSC for the pull direction.
    index_buffers.push(device.alloc::<u32>(n + 1)?);
    index_buffers.push(device.alloc::<u32>(m)?);
    // labels (depth).
    index_buffers.push(device.alloc::<u32>(n)?);
    // sigma, delta, bc (64-bit, like the TurboBC engine's).
    for _ in 0..3 {
        value_buffers.push(device.alloc::<u64>(n)?);
    }
    // Double-buffered frontier queues + scan workspace.
    for _ in 0..3 {
        index_buffers.push(device.alloc::<u32>(n)?);
    }
    Ok(DevicePlan {
        index_buffers,
        value_buffers,
    })
}

/// Gunrock-like BC solver: prebuilt two-direction adjacency.
pub struct GunrockBc {
    csr: Csr,
    csc: Csc,
    n: usize,
    m: usize,
    scale: f64,
}

/// Fraction of `m` above which the BFS advances by pulling (scanning
/// unvisited vertices) instead of pushing the frontier.
const PULL_THRESHOLD: f64 = 0.05;

impl GunrockBc {
    /// Builds the solver (materialises both adjacency directions, like
    /// gunrock's problem data).
    pub fn new(graph: &Graph) -> Self {
        GunrockBc {
            csr: graph.to_csr(),
            csc: graph.to_csc(),
            n: graph.n(),
            m: graph.m(),
            scale: graph.bc_scale(),
        }
    }

    /// BC contribution of one source.
    pub fn bc_single_source(&self, source: VertexId) -> Vec<f64> {
        let mut bc = vec![0.0; self.n];
        self.accumulate(source, &mut bc);
        bc
    }

    /// Exact BC over all sources.
    pub fn bc_all_sources(&self) -> Vec<f64> {
        let mut bc = vec![0.0; self.n];
        for s in 0..self.n {
            self.accumulate(s as VertexId, &mut bc);
        }
        bc
    }

    /// BC over an explicit source set.
    pub fn bc_sources(&self, sources: &[VertexId]) -> Vec<f64> {
        let mut bc = vec![0.0; self.n];
        for &s in sources {
            self.accumulate(s, &mut bc);
        }
        bc
    }

    fn accumulate(&self, source: VertexId, bc: &mut [f64]) {
        if self.n == 0 {
            return;
        }
        let dist: Vec<AtomicI64> = (0..self.n).map(|_| AtomicI64::new(-1)).collect();
        let sigma: Vec<AtomicI64> = (0..self.n).map(|_| AtomicI64::new(0)).collect();
        dist[source as usize].store(0, Ordering::Relaxed);
        sigma[source as usize].store(1, Ordering::Relaxed);

        // Forward: level-synchronous direction-optimising BFS.
        let mut levels: Vec<Vec<VertexId>> = vec![vec![source]];
        loop {
            let frontier = levels.last().unwrap();
            if frontier.is_empty() {
                levels.pop();
                break;
            }
            let d = (levels.len() - 1) as i64;
            let frontier_edges: usize = frontier
                .par_iter()
                .map(|&v| self.csr.row_len(v as usize))
                .sum();
            let next: Vec<VertexId> = if (frontier_edges as f64) < PULL_THRESHOLD * self.m as f64 {
                self.push_step(frontier, d, &dist, &sigma)
            } else {
                self.pull_step(d, &dist, &sigma)
            };
            if next.is_empty() {
                break;
            }
            levels.push(next);
        }

        // Backward: pull-style dependency accumulation, level by level.
        let dist: Vec<i64> = dist.into_iter().map(|a| a.into_inner()).collect();
        let sigma: Vec<i64> = sigma.into_iter().map(|a| a.into_inner()).collect();
        let mut delta = vec![0.0f64; self.n];
        for d in (0..levels.len().saturating_sub(1)).rev() {
            let level: &Vec<VertexId> = &levels[d];
            let deltas: Vec<f64> = level
                .par_iter()
                .map(|&v| {
                    let vi = v as usize;
                    let mut acc = 0.0;
                    for &w in self.csr.row(vi) {
                        let wi = w as usize;
                        if dist[wi] == d as i64 + 1 && sigma[wi] > 0 {
                            acc += sigma[vi] as f64 / sigma[wi] as f64 * (1.0 + delta[wi]);
                        }
                    }
                    acc
                })
                .collect();
            for (&v, dv) in level.iter().zip(deltas) {
                delta[v as usize] = dv;
            }
        }
        bc.par_iter_mut().enumerate().for_each(|(v, b)| {
            if v != source as usize {
                *b += delta[v] * self.scale;
            }
        });
    }

    /// Push advance: expand the frontier's out-edges, claiming unvisited
    /// targets with CAS and accumulating sigma atomically.
    fn push_step(
        &self,
        frontier: &[VertexId],
        d: i64,
        dist: &[AtomicI64],
        sigma: &[AtomicI64],
    ) -> Vec<VertexId> {
        frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                let sv = sigma[v as usize].load(Ordering::Relaxed);
                for &w in self.csr.row(v as usize) {
                    let wi = w as usize;
                    let prev =
                        dist[wi].compare_exchange(-1, d + 1, Ordering::Relaxed, Ordering::Relaxed);
                    if prev.is_ok() {
                        acc.push(w);
                    }
                    if prev.map_or_else(|cur| cur == d + 1, |_| true) {
                        atomic_i64_sat_add(&sigma[wi], sv);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    }

    /// Pull advance: every unvisited vertex scans its in-neighbours for
    /// frontier members. No atomics — each vertex is claimed by its own
    /// thread.
    fn pull_step(&self, d: i64, dist: &[AtomicI64], sigma: &[AtomicI64]) -> Vec<VertexId> {
        (0..self.n)
            .into_par_iter()
            .filter_map(|w| {
                if dist[w].load(Ordering::Relaxed) != -1 {
                    return None;
                }
                let mut paths = 0i64;
                for &v in self.csc.column(w) {
                    if dist[v as usize].load(Ordering::Relaxed) == d {
                        paths = paths.saturating_add(sigma[v as usize].load(Ordering::Relaxed));
                    }
                }
                if paths > 0 {
                    dist[w].store(d + 1, Ordering::Relaxed);
                    sigma[w].store(paths, Ordering::Relaxed);
                    Some(w as VertexId)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::{brandes_all_sources, brandes_single_source};
    use rand::{Rng, SeedableRng};

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < 1e-6, "bc[{i}] = {g}, want {w}");
        }
    }

    #[test]
    fn matches_oracle_on_known_graphs() {
        let path = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_close(
            &GunrockBc::new(&path).bc_all_sources(),
            &brandes_all_sources(&path),
        );
        let diamond = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_close(
            &GunrockBc::new(&diamond).bc_all_sources(),
            &brandes_all_sources(&diamond),
        );
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 2 + rng.gen_range(0..40);
            let m = rng.gen_range(0..5 * n);
            let directed = trial % 2 == 0;
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
                .collect();
            let g = Graph::from_edges(n, directed, &edges);
            assert_close(
                &GunrockBc::new(&g).bc_all_sources(),
                &brandes_all_sources(&g),
            );
            let s = g.default_source();
            assert_close(
                &GunrockBc::new(&g).bc_single_source(s),
                &brandes_single_source(&g, s),
            );
        }
    }

    #[test]
    fn pull_path_is_exercised_on_dense_frontiers() {
        // Star: the second level is the whole graph => pull.
        let edges: Vec<(u32, u32)> = (1..400).map(|v| (0, v)).collect();
        let g = Graph::from_edges(400, false, &edges);
        assert_close(
            &GunrockBc::new(&g).bc_single_source(0),
            &brandes_single_source(&g, 0),
        );
    }

    #[test]
    fn footprint_formula() {
        assert_eq!(footprint_words(10, 100), 290);
    }

    #[test]
    fn device_plan_allocates_nine_n_two_m_words() {
        let dev = Device::titan_xp();
        let plan = plan_on_device(&dev, 1000, 8000).unwrap();
        let words = plan.words();
        assert!(
            (words as i64 - footprint_words(1000, 8000) as i64).abs() <= 2,
            "allocated {words} words"
        );
        assert!(dev.memory().used >= 4 * words as u64);
    }

    #[test]
    fn device_plan_ooms_on_small_device() {
        use turbobc_simt::DeviceProps;
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 64 * 1024);
        let err = plan_on_device(&dev, 10_000, 100_000).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        // A failed plan must not leak the partial allocations it made.
        assert_eq!(dev.memory().live_allocations, 0);
    }

    #[test]
    fn bc_sources_partial_sum() {
        let g = Graph::from_edges(6, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let solver = GunrockBc::new(&g);
        let got = solver.bc_sources(&[0, 2]);
        let mut want = vec![0.0; 6];
        for s in [0u32, 2] {
            for (acc, x) in want.iter_mut().zip(brandes_single_source(&g, s)) {
                *acc += x;
            }
        }
        assert_close(&got, &want);
    }
}

//! The gunrock-like BC on the SIMT simulator — the modelled-GPU
//! counterpart of [`crate::gunrock_like::GunrockBc`].
//!
//! Gunrock's BC advances the BFS with its two-phase *advance* operator
//! (scan the frontier's degrees, then expand one thread per gathered
//! edge) followed by a *filter* (stream compaction of newly labelled
//! vertices), and accumulates dependencies level-by-level with another
//! advance over the stored labels. Compared with TurboBC's pipeline this
//! costs **more kernels per level** (scan + expand + filter vs SpMV +
//! update) and **more resident arrays** (`9n + 2m` words: both adjacency
//! directions, labels, σ, δ, bc, double frontier queues and the scan
//! workspace) — which is exactly what the paper's Figures 3/5 measure
//! against TurboBC.
//!
//! The kernels perform the real computation on device buffers (verified
//! against the Brandes oracle); the simulator records their
//! transactions, divergence and modelled time.

use turbobc_graph::Graph;
use turbobc_simt::{
    DSlice, DSliceMut, Device, DeviceError, KernelStats, LaunchConfig, MemoryReport,
    MetricsRegistry, WARP_SIZE,
};
use turbobc_sparse::Csr;

const UNSEEN: u32 = u32::MAX;

/// Outcome of a simulated gunrock-like BC run.
#[derive(Debug, Clone)]
pub struct GunrockSimtReport {
    /// BC per vertex.
    pub bc: Vec<f64>,
    /// Per-kernel counters.
    pub metrics: MetricsRegistry,
    /// Device memory snapshot (peak = working-set bound).
    pub memory: MemoryReport,
    /// Modelled execution time over all kernels, seconds.
    pub modelled_time_s: f64,
    /// Whole-run modelled GLT, GB/s.
    pub glt_gbs: f64,
}

#[inline]
fn lane_ids(w: &turbobc_simt::Warp, bound: usize) -> [Option<usize>; WARP_SIZE] {
    let mut idx = [None; WARP_SIZE];
    for (l, slot) in idx.iter_mut().enumerate() {
        *slot = w.global_id(l).filter(|&g| g < bound);
    }
    idx
}

/// Frontier-degree scan, phase 1 of gunrock's advance: one thread per
/// frontier entry reads its vertex id and row-pointer pair and writes
/// the degree; a second coalesced pass models the prefix sum.
fn scan_kernel(
    dev: &Device,
    frontier: &DSlice<'_, u32>,
    len: usize,
    row_ptr: &DSlice<'_, u32>,
    offsets: &mut DSliceMut<'_, u32>,
) -> KernelStats {
    dev.launch("gr_scan", LaunchConfig::per_element(len), |w| {
        let idx = lane_ids(w, len);
        let vs = w.gather(frontier, &idx);
        let mut p0 = [None; WARP_SIZE];
        let mut p1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if idx[l].is_some() {
                p0[l] = Some(vs[l] as usize);
                p1[l] = Some(vs[l] as usize + 1);
            }
        }
        let starts = w.gather(row_ptr, &p0);
        let ends = w.gather(row_ptr, &p1);
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                writes[l] = Some((i, ends[l] - starts[l]));
            }
        }
        w.scatter(offsets, &writes);
    })
}

/// Models the GPU prefix-sum over the degree array (work-efficient scan:
/// ~2 coalesced passes). The actual prefix values are computed host-side
/// by the driver; this kernel charges the traffic.
fn prefix_kernel(dev: &Device, offsets: &mut DSliceMut<'_, u32>, len: usize) -> KernelStats {
    dev.launch("gr_prefix", LaunchConfig::per_element(len), |w| {
        let idx = lane_ids(w, len);
        let vals = w.gather(&offsets.as_dslice(), &idx);
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                writes[l] = Some((i, vals[l]));
            }
        }
        w.scatter(offsets, &writes);
    })
}

/// The per-level device state for the forward phase.
struct Forward<'a> {
    row_ptr: DSlice<'a, u32>,
    col_idx: DSlice<'a, u32>,
}

/// Runs gunrock-like BC for `sources` on the simulated device.
pub fn bc_simt(
    device: &Device,
    graph: &Graph,
    sources: &[u32],
) -> Result<GunrockSimtReport, DeviceError> {
    let n = graph.n();
    let csr = graph.to_csr();
    let csc = graph.to_csc();
    device.reset_metrics();
    device.reset_peak();

    // The 9n + 2m working set (Figure 4's gunrock column).
    let rp_host: Vec<u32> = csr.row_ptr().iter().map(|&p| p as u32).collect();
    let cp_host: Vec<u32> = csc.col_ptr().iter().map(|&p| p as u32).collect();
    let row_ptr = device.alloc_from(&rp_host)?;
    let col_idx = device.alloc_from(csr.col_idx())?;
    let _col_ptr = device.alloc_from(&cp_host)?; // pull direction (resident, as in gunrock)
    let _row_idx = device.alloc_from(csc.row_idx())?;
    let mut labels = device.alloc::<u32>(n)?;
    let mut sigma = device.alloc::<i64>(n)?;
    let mut delta = device.alloc::<f64>(n)?;
    let mut bc = device.alloc::<f64>(n)?;
    let mut frontier_a = device.alloc::<u32>(n)?;
    let mut frontier_b = device.alloc::<u32>(n)?;
    let mut offsets = device.alloc::<u32>(n)?;

    let scale = graph.bc_scale();
    let fwd = Forward {
        row_ptr: row_ptr.dslice(),
        col_idx: col_idx.dslice(),
    };

    for &source in sources {
        if n == 0 {
            break;
        }
        // Init kernels (labels/σ/δ cleared, source seeded).
        init(
            device,
            &mut labels.dslice_mut(),
            &mut sigma.dslice_mut(),
            &mut delta.dslice_mut(),
            source as usize,
        );
        frontier_a.host_mut()[0] = source;
        let mut frontier_len = 1usize;
        let mut level = 0u32;
        let mut levels: Vec<u32> = vec![1]; // frontier sizes per level

        // ---- Forward: advance (scan + expand) + filter per level. ----
        loop {
            // Phase 1: degree scan + prefix.
            scan_kernel(
                device,
                &frontier_a.dslice(),
                frontier_len,
                &fwd.row_ptr,
                &mut offsets.dslice_mut(),
            );
            prefix_kernel(device, &mut offsets.dslice_mut(), frontier_len);
            // Host-side exclusive prefix (the kernel above charged the
            // traffic; gunrock reads the total back for the grid size).
            let mut total_edges = 0usize;
            {
                let offs = offsets.host_mut();
                for i in 0..frontier_len {
                    let d = offs[i];
                    offs[i] = total_edges as u32;
                    total_edges += d as usize;
                }
            }
            if total_edges == 0 {
                break;
            }
            // Phase 2: expand — one thread per gathered edge. Each thread
            // binary-searches its source in the scanned offsets (charged
            // as one extra gather), loads its edge target, claims it.
            let next_len = expand_forward(
                device,
                &fwd,
                &frontier_a.dslice(),
                &offsets.dslice(),
                frontier_len,
                total_edges,
                &mut labels.dslice_mut(),
                &mut sigma.dslice_mut(),
                &mut frontier_b.dslice_mut(),
                level + 1,
            );
            if next_len == 0 {
                break;
            }
            // Gunrock's filter: compact the expand output queue (every
            // traversed edge wrote a candidate or an invalid marker).
            filter_queue(device, &frontier_b.dslice(), next_len, total_edges);
            std::mem::swap(&mut frontier_a, &mut frontier_b);
            frontier_len = next_len;
            level += 1;
            levels.push(frontier_len as u32);
        }

        // ---- Backward: per level, extract the level's vertices and
        // accumulate dependencies over their out-edges. ----
        for d in (0..level).rev() {
            let len = extract_level(device, &labels.dslice(), d, &mut frontier_a.dslice_mut());
            if len == 0 {
                continue;
            }
            scan_kernel(
                device,
                &frontier_a.dslice(),
                len,
                &fwd.row_ptr,
                &mut offsets.dslice_mut(),
            );
            prefix_kernel(device, &mut offsets.dslice_mut(), len);
            let mut total_edges = 0usize;
            {
                let offs = offsets.host_mut();
                for i in 0..len {
                    let deg = offs[i];
                    offs[i] = total_edges as u32;
                    total_edges += deg as usize;
                }
            }
            if total_edges == 0 {
                continue;
            }
            expand_backward(
                device,
                &fwd,
                &frontier_a.dslice(),
                &offsets.dslice(),
                len,
                total_edges,
                &labels.dslice(),
                &sigma.dslice(),
                &mut delta.dslice_mut(),
                d,
            );
        }
        accum_bc(
            device,
            &delta.dslice(),
            source as usize,
            scale,
            &mut bc.dslice_mut(),
        );
    }

    let metrics = device.metrics();
    let timing = device.timing();
    let mut modelled_time_s = 0.0;
    let mut busy_time_s = 0.0;
    for (_, s) in metrics.iter() {
        modelled_time_s += timing.kernel_time_s(s);
        busy_time_s += timing.kernel_busy_time_s(s);
    }
    let total = metrics.total();
    let glt_gbs = if busy_time_s > 0.0 {
        total.bytes_loaded as f64 / busy_time_s / 1e9
    } else {
        0.0
    };
    Ok(GunrockSimtReport {
        bc: bc.host().to_vec(),
        metrics,
        memory: device.memory(),
        modelled_time_s,
        glt_gbs,
    })
}

fn init(
    dev: &Device,
    labels: &mut DSliceMut<'_, u32>,
    sigma: &mut DSliceMut<'_, i64>,
    delta: &mut DSliceMut<'_, f64>,
    source: usize,
) {
    let n = labels.len();
    dev.launch("gr_init", LaunchConfig::per_element(n), |w| {
        let idx = lane_ids(w, n);
        let mut wl = [None; WARP_SIZE];
        let mut ws = [None; WARP_SIZE];
        let mut wd = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                wl[l] = Some((i, if i == source { 0 } else { UNSEEN }));
                ws[l] = Some((i, i64::from(i == source)));
                wd[l] = Some((i, 0.0f64));
            }
        }
        w.scatter(labels, &wl);
        w.scatter(sigma, &ws);
        w.scatter(delta, &wd);
    });
}

/// Maps a gathered-edge thread id to `(frontier_slot, edge_offset)` via
/// the exclusive prefix in `offsets` (host mirror of the device binary
/// search).
fn locate(offsets: &[u32], len: usize, k: usize) -> usize {
    // partition_point over the first `len` prefix entries.
    let mut lo = 0usize;
    let mut hi = len;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if offsets[mid] as usize <= k {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[allow(clippy::too_many_arguments)]
fn expand_forward(
    dev: &Device,
    fwd: &Forward<'_>,
    frontier: &DSlice<'_, u32>,
    offsets: &DSlice<'_, u32>,
    frontier_len: usize,
    total_edges: usize,
    labels: &mut DSliceMut<'_, u32>,
    sigma: &mut DSliceMut<'_, i64>,
    next_frontier: &mut DSliceMut<'_, u32>,
    next_level: u32,
) -> usize {
    let mut appended = 0usize;
    // Host mirrors for the binary search (values equal to device data).
    let off_host: Vec<u32> = (0..frontier_len).map(|i| offsets.get(i)).collect();
    let front_host: Vec<u32> = (0..frontier_len).map(|i| frontier.get(i)).collect();
    let row_ptr_host: Vec<u32> = (0..frontier_len)
        .map(|i| {
            let v = front_host[i] as usize;
            fwd.row_ptr.get(v)
        })
        .collect();
    dev.launch("gr_expand", LaunchConfig::per_element(total_edges), |w| {
        let idx = lane_ids(w, total_edges);
        // Binary search: charged as a gather over the offsets array.
        let mut oidx = [None; WARP_SIZE];
        let mut slots = [0usize; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(k) = idx[l] {
                let slot = locate(&off_host, frontier_len, k);
                slots[l] = slot;
                oidx[l] = Some(slot);
            }
        }
        // Load-balancing binary search: log2(frontier) probes of the
        // scanned offsets per thread.
        let probes = (usize::BITS - frontier_len.leading_zeros()).max(1);
        for _ in 0..probes {
            w.gather(offsets, &oidx);
            w.alu(idx.iter().filter(|x| x.is_some()).count());
        }
        // Source vertex + its σ.
        let mut fidx = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if idx[l].is_some() {
                fidx[l] = Some(slots[l]);
            }
        }
        let srcs = w.gather(frontier, &fidx);
        let mut sidx = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if idx[l].is_some() {
                sidx[l] = Some(srcs[l] as usize);
            }
        }
        let src_sigma = w.gather(&sigma.as_dslice(), &sidx);
        // The edge target: col_idx[row_ptr[src] + (k - offsets[slot])].
        let mut eidx = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(k) = idx[l] {
                let within = k - off_host[slots[l]] as usize;
                eidx[l] = Some(row_ptr_host[slots[l]] as usize + within);
            }
        }
        let dsts = w.gather(&fwd.col_idx, &eidx);
        // Claim: read the label, CAS-claim unseen targets, accumulate σ.
        let mut lidx = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if idx[l].is_some() {
                lidx[l] = Some(dsts[l] as usize);
            }
        }
        let dlabels = w.gather(&labels.as_dslice(), &lidx);
        let mut claims = [None; WARP_SIZE];
        let mut sig_ops = [None; WARP_SIZE];
        let mut appends = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if idx[l].is_none() {
                continue;
            }
            let dst = dsts[l] as usize;
            if dlabels[l] == UNSEEN {
                // First claim wins; simulate gunrock's CAS: only the
                // first lane targeting dst in this pass claims it.
                let already = (0..l).any(|p| idx[p].is_some() && dsts[p] == dsts[l])
                    || labels.get(dst) == next_level;
                if !already {
                    claims[l] = Some((dst, next_level));
                    appends[l] = Some((appended, dsts[l]));
                    appended += 1;
                }
                sig_ops[l] = Some((dst, src_sigma[l]));
            } else if dlabels[l] == next_level {
                sig_ops[l] = Some((dst, src_sigma[l]));
            }
        }
        w.scatter(labels, &claims);
        w.atomic_add(sigma, &sig_ops);
        w.scatter(next_frontier, &appends);
    });
    appended
}

/// Gunrock's forward filter: scans the advance's output queue (one slot
/// per traversed edge) and compacts the valid entries. The computation
/// already happened in `gr_expand`; this kernel charges the queue
/// traffic the real operator pays.
fn filter_queue(dev: &Device, queue: &DSlice<'_, u32>, valid: usize, queue_len: usize) {
    let n = queue.len();
    dev.launch(
        "gr_filter",
        LaunchConfig::per_element(queue_len.min(n.max(1))),
        |w| {
            let bound = queue_len.min(n);
            let idx = lane_ids(w, bound);
            let vals = w.gather(queue, &idx);
            // Compacted rewrite of the valid prefix.
            let mut writes = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if let Some(i) = idx[l] {
                    if i < valid {
                        writes[l] = Some((i, vals[l]));
                    }
                }
            }
            let _ = writes; // queue already holds the compacted values
            w.alu(idx.iter().filter(|x| x.is_some()).count());
        },
    );
}

/// Rebuilds the vertex list of one BFS level from the labels array
/// (gunrock's level extraction for the dependency phase).
fn extract_level(
    dev: &Device,
    labels: &DSlice<'_, u32>,
    d: u32,
    out: &mut DSliceMut<'_, u32>,
) -> usize {
    let n = labels.len();
    let mut count = 0usize;
    dev.launch("gr_extract", LaunchConfig::per_element(n), |w| {
        let idx = lane_ids(w, n);
        let ls = w.gather(labels, &idx);
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                if ls[l] == d {
                    writes[l] = Some((count, i as u32));
                    count += 1;
                }
            }
        }
        w.scatter(out, &writes);
    });
    count
}

#[allow(clippy::too_many_arguments)]
fn expand_backward(
    dev: &Device,
    fwd: &Forward<'_>,
    frontier: &DSlice<'_, u32>,
    offsets: &DSlice<'_, u32>,
    frontier_len: usize,
    total_edges: usize,
    labels: &DSlice<'_, u32>,
    sigma: &DSlice<'_, i64>,
    delta: &mut DSliceMut<'_, f64>,
    d: u32,
) {
    let off_host: Vec<u32> = (0..frontier_len).map(|i| offsets.get(i)).collect();
    let front_host: Vec<u32> = (0..frontier_len).map(|i| frontier.get(i)).collect();
    let row_ptr_host: Vec<u32> = (0..frontier_len)
        .map(|i| fwd.row_ptr.get(front_host[i] as usize))
        .collect();
    dev.launch(
        "gr_bwd_expand",
        LaunchConfig::per_element(total_edges),
        |w| {
            let idx = lane_ids(w, total_edges);
            let mut oidx = [None; WARP_SIZE];
            let mut slots = [0usize; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if let Some(k) = idx[l] {
                    let slot = locate(&off_host, frontier_len, k);
                    slots[l] = slot;
                    oidx[l] = Some(slot);
                }
            }
            let probes = (usize::BITS - frontier_len.leading_zeros()).max(1);
            for _ in 0..probes {
                w.gather(offsets, &oidx);
                w.alu(idx.iter().filter(|x| x.is_some()).count());
            }
            let mut fidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    fidx[l] = Some(slots[l]);
                }
            }
            let srcs = w.gather(frontier, &fidx);
            let mut eidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if let Some(k) = idx[l] {
                    let within = k - off_host[slots[l]] as usize;
                    eidx[l] = Some(row_ptr_host[slots[l]] as usize + within);
                }
            }
            let dsts = w.gather(&fwd.col_idx, &eidx);
            let mut lidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    lidx[l] = Some(dsts[l] as usize);
                }
            }
            let dlabels = w.gather(labels, &lidx);
            // Children at level d+1 contribute σ_src/σ_dst (1 + δ_dst).
            let mut keep = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if idx[l].is_some() && dlabels[l] == d + 1 {
                    keep[l] = Some(dsts[l] as usize);
                }
            }
            let child_sigma = w.gather(sigma, &keep);
            let child_delta = w.gather(&delta.as_dslice(), &keep);
            let mut src_idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if keep[l].is_some() {
                    src_idx[l] = Some(srcs[l] as usize);
                }
            }
            let src_sigma = w.gather(sigma, &src_idx);
            let mut ops = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if keep[l].is_some() && child_sigma[l] > 0 {
                    let contrib =
                        src_sigma[l] as f64 / child_sigma[l] as f64 * (1.0 + child_delta[l]);
                    ops[l] = Some((srcs[l] as usize, contrib));
                }
            }
            w.atomic_add(delta, &ops);
        },
    );
}

fn accum_bc(
    dev: &Device,
    delta: &DSlice<'_, f64>,
    source: usize,
    scale: f64,
    bc: &mut DSliceMut<'_, f64>,
) {
    let n = delta.len();
    dev.launch("gr_bc_accum", LaunchConfig::per_element(n), |w| {
        let idx = lane_ids(w, n);
        let dl = w.gather(delta, &idx);
        let old = w.gather(&bc.as_dslice(), &idx);
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                if i != source && dl[l] != 0.0 {
                    writes[l] = Some((i, old[l] + dl[l] * scale));
                }
            }
        }
        w.scatter(bc, &writes);
    });
}

/// Convenience: builds the CSR host-side and runs [`bc_simt`] for one
/// source on a fresh Titan Xp.
pub fn bc_single_source_simt(graph: &Graph, source: u32) -> GunrockSimtReport {
    let dev = Device::titan_xp();
    bc_simt(&dev, graph, &[source]).expect("Titan Xp capacity")
}

/// The CSR is rebuilt internally; expose it for tests needing structure
/// parity.
pub fn csr_of(graph: &Graph) -> Csr {
    graph.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::brandes_single_source;
    use turbobc_graph::gen;

    fn assert_close(got: &[f64], want: &[f64]) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < 1e-7, "bc[{i}] = {g}, want {w}");
        }
    }

    #[test]
    fn matches_oracle_on_undirected_graph() {
        let g = gen::small_world(100, 3, 0.2, 8);
        let s = g.default_source();
        let report = bc_single_source_simt(&g, s);
        assert_close(&report.bc, &brandes_single_source(&g, s));
    }

    #[test]
    fn matches_oracle_on_directed_graph() {
        let g = gen::gnm(80, 260, true, 17);
        let s = g.default_source();
        let report = bc_single_source_simt(&g, s);
        assert_close(&report.bc, &brandes_single_source(&g, s));
    }

    #[test]
    fn matches_oracle_on_disconnected_graph() {
        let g = gen::gnm(60, 50, false, 4);
        let s = g.default_source();
        let report = bc_single_source_simt(&g, s);
        assert_close(&report.bc, &brandes_single_source(&g, s));
    }

    #[test]
    fn multi_source_accumulates() {
        let g = gen::gnm(40, 120, false, 9);
        let dev = Device::titan_xp();
        let report = bc_simt(&dev, &g, &[0, 1, 2]).unwrap();
        let mut want = vec![0.0; g.n()];
        for s in [0u32, 1, 2] {
            for (acc, x) in want.iter_mut().zip(brandes_single_source(&g, s)) {
                *acc += x;
            }
        }
        assert_close(&report.bc, &want);
    }

    #[test]
    fn working_set_matches_the_9n_2m_inventory() {
        let g = gen::mycielski(8);
        let report = bc_single_source_simt(&g, g.default_source());
        // Index arrays are 4 B, σ/δ/bc are 8 B: peak sits between 4 B and
        // 8 B per inventory word.
        let words = crate::gunrock_like::footprint_words(g.n(), g.m()) as u64;
        assert!(
            report.memory.peak >= 4 * words,
            "peak {} too small",
            report.memory.peak
        );
        assert!(
            report.memory.peak <= 8 * words,
            "peak {} too large",
            report.memory.peak
        );
    }

    #[test]
    fn pipeline_kernels_are_recorded() {
        let g = gen::gnm(50, 150, false, 3);
        let report = bc_single_source_simt(&g, g.default_source());
        for name in [
            "gr_init",
            "gr_scan",
            "gr_prefix",
            "gr_expand",
            "gr_extract",
            "gr_bwd_expand",
        ] {
            assert!(report.metrics.kernel(name).is_some(), "missing {name}");
        }
        assert!(report.modelled_time_s > 0.0);
    }
}

//! Sequential queue-based Brandes BC — the workspace's correctness oracle.
//!
//! Direct implementation of Brandes (2001/2008) with explicit predecessor
//! lists and a stack of vertices in non-decreasing distance order. `O(nm)`
//! time, `O(n + m)` space, no linear-algebra reformulation — maximally
//! independent from the code under test.

use turbobc_graph::{Graph, VertexId};
use turbobc_sparse::Csr;

/// Per-source scratch reused across sources.
struct Scratch {
    sigma: Vec<f64>,
    dist: Vec<i64>,
    delta: Vec<f64>,
    preds: Vec<Vec<VertexId>>,
    stack: Vec<VertexId>,
    queue: std::collections::VecDeque<VertexId>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            sigma: vec![0.0; n],
            dist: vec![-1; n],
            delta: vec![0.0; n],
            preds: vec![Vec::new(); n],
            stack: Vec::with_capacity(n),
            queue: std::collections::VecDeque::new(),
        }
    }

    fn reset(&mut self) {
        self.sigma.fill(0.0);
        self.dist.fill(-1);
        self.delta.fill(0.0);
        for p in &mut self.preds {
            p.clear();
        }
        self.stack.clear();
        self.queue.clear();
    }
}

fn accumulate(csr: &Csr, source: VertexId, scratch: &mut Scratch, scale: f64, bc: &mut [f64]) {
    scratch.reset();
    let s = source as usize;
    scratch.sigma[s] = 1.0;
    scratch.dist[s] = 0;
    scratch.queue.push_back(source);
    while let Some(v) = scratch.queue.pop_front() {
        scratch.stack.push(v);
        let dv = scratch.dist[v as usize];
        for &w in csr.row(v as usize) {
            let wi = w as usize;
            if scratch.dist[wi] < 0 {
                scratch.dist[wi] = dv + 1;
                scratch.queue.push_back(w);
            }
            if scratch.dist[wi] == dv + 1 {
                scratch.sigma[wi] += scratch.sigma[v as usize];
                scratch.preds[wi].push(v);
            }
        }
    }
    while let Some(w) = scratch.stack.pop() {
        let wi = w as usize;
        let coeff = (1.0 + scratch.delta[wi]) / scratch.sigma[wi];
        for &v in &scratch.preds[wi] {
            scratch.delta[v as usize] += scratch.sigma[v as usize] * coeff;
        }
        if w != source {
            bc[wi] += scratch.delta[wi] * scale;
        }
    }
}

/// Brandes BC contribution of a single source vertex. For undirected
/// graphs the standard ÷2 compensation is applied, as in the paper.
pub fn brandes_single_source(graph: &Graph, source: VertexId) -> Vec<f64> {
    let csr = graph.to_csr();
    let mut bc = vec![0.0; graph.n()];
    let mut scratch = Scratch::new(graph.n());
    accumulate(&csr, source, &mut scratch, graph.bc_scale(), &mut bc);
    bc
}

/// Exact Brandes BC over all sources.
pub fn brandes_all_sources(graph: &Graph) -> Vec<f64> {
    let csr = graph.to_csr();
    let mut bc = vec![0.0; graph.n()];
    let mut scratch = Scratch::new(graph.n());
    for s in 0..graph.n() {
        accumulate(&csr, s as VertexId, &mut scratch, graph.bc_scale(), &mut bc);
    }
    bc
}

/// Brandes BC over an explicit set of sources.
pub fn brandes_sources(graph: &Graph, sources: &[VertexId]) -> Vec<f64> {
    let csr = graph.to_csr();
    let mut bc = vec![0.0; graph.n()];
    let mut scratch = Scratch::new(graph.n());
    for &s in sources {
        accumulate(&csr, s, &mut scratch, graph.bc_scale(), &mut bc);
    }
    bc
}

/// **Edge** betweenness (Brandes 2008 §3.2 / Girvan–Newman): the oracle
/// for `turbobc`'s edge-BC extension. Returns one value per stored arc,
/// in the graph's arc order; for undirected graphs the classic
/// edge-betweenness of `{u, v}` is the sum of its two arc values (each
/// arc carries the ÷2-compensated half).
pub fn brandes_edge_bc(graph: &Graph) -> Vec<f64> {
    let csr = graph.to_csr();
    let n = graph.n();
    // Map each arc (u, v) to its index in the graph's COO order.
    let arcs: Vec<(VertexId, VertexId)> = graph.edges().collect();
    let mut arc_index = std::collections::HashMap::with_capacity(arcs.len());
    for (k, &a) in arcs.iter().enumerate() {
        arc_index.insert(a, k);
    }
    let mut ebc = vec![0.0; arcs.len()];
    let scale = graph.bc_scale();
    let mut scratch = Scratch::new(n);
    for s in 0..n {
        scratch.reset();
        scratch.sigma[s] = 1.0;
        scratch.dist[s] = 0;
        scratch.queue.push_back(s as VertexId);
        while let Some(v) = scratch.queue.pop_front() {
            scratch.stack.push(v);
            let dv = scratch.dist[v as usize];
            for &w in csr.row(v as usize) {
                let wi = w as usize;
                if scratch.dist[wi] < 0 {
                    scratch.dist[wi] = dv + 1;
                    scratch.queue.push_back(w);
                }
                if scratch.dist[wi] == dv + 1 {
                    scratch.sigma[wi] += scratch.sigma[v as usize];
                    scratch.preds[wi].push(v);
                }
            }
        }
        while let Some(w) = scratch.stack.pop() {
            let wi = w as usize;
            let coeff = (1.0 + scratch.delta[wi]) / scratch.sigma[wi];
            for &v in &scratch.preds[wi] {
                let c = scratch.sigma[v as usize] * coeff;
                scratch.delta[v as usize] += c;
                let k = arc_index[&(v, w)];
                ebc[k] += c * scale;
            }
        }
    }
    ebc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() < 1e-9,
                "bc[{i}] = {g}, want {w}\ngot  {got:?}\nwant {want:?}"
            );
        }
    }

    #[test]
    fn path_graph_bc_is_known() {
        // Undirected path 0-1-2-3-4: BC = [0, 3, 4, 3, 0].
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_close(&brandes_all_sources(&g), &[0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_center_carries_everything() {
        // Undirected star K_{1,4} centred at 0: BC(center) = C(4,2) = 6.
        let g = Graph::from_edges(5, false, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_close(&brandes_all_sources(&g), &[6.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn cycle_bc_is_uniform() {
        // C5: every vertex lies on exactly one shortest path pair: BC = 1.
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_close(&brandes_all_sources(&g), &[1.0; 5]);
    }

    #[test]
    fn directed_path_counts_ordered_pairs() {
        // Directed 0→1→2→3: BC(1) = |{(0,2),(0,3)}| = 2, BC(2) = 2.
        let g = Graph::from_edges(4, true, &[(0, 1), (1, 2), (2, 3)]);
        assert_close(&brandes_all_sources(&g), &[0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn multiple_shortest_paths_split_credit() {
        // Diamond: 0→1→3, 0→2→3 (directed).
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_close(&brandes_all_sources(&g), &[0.0, 0.5, 0.5, 0.0]);
    }

    #[test]
    fn disconnected_components_are_independent() {
        let g = Graph::from_edges(6, false, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let bc = brandes_all_sources(&g);
        assert_close(&bc, &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn single_source_sums_to_all_sources() {
        let g = Graph::from_edges(5, true, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 3), (1, 4)]);
        let mut sum = vec![0.0; 5];
        for s in 0..5 {
            for (acc, x) in sum.iter_mut().zip(brandes_single_source(&g, s)) {
                *acc += x;
            }
        }
        assert_close(&sum, &brandes_all_sources(&g));
    }

    #[test]
    fn sources_subset_matches_manual_sum() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let got = brandes_sources(&g, &[1, 3]);
        let mut want = vec![0.0; 5];
        for s in [1, 3] {
            for (acc, x) in want.iter_mut().zip(brandes_single_source(&g, s)) {
                *acc += x;
            }
        }
        assert_close(&got, &want);
    }

    #[test]
    fn empty_and_singleton() {
        let g = Graph::from_edges(0, true, &[]);
        assert!(brandes_all_sources(&g).is_empty());
        let g1 = Graph::from_edges(1, false, &[]);
        assert_close(&brandes_all_sources(&g1), &[0.0]);
    }
}

//! Baseline betweenness-centrality implementations for the TurboBC
//! reproduction.
//!
//! * [`brandes`] — the textbook sequential Brandes algorithm with explicit
//!   predecessor lists. This is the correctness **oracle**: every engine
//!   and kernel in the workspace is property-tested against it. (The
//!   paper's "(sequential)x" baseline is *not* this — it is the sequential
//!   version of the linear-algebra Algorithm 1, provided by
//!   `turbobc::Engine::Sequential`.)
//! * [`gunrock_like`] — a shared-memory parallel Brandes in the style of
//!   the gunrock library's BC operator: explicit frontier queues,
//!   direction-optimising (push–pull) BFS, and the `9n + 2m`-word device
//!   array inventory of the paper's Figure 4, which is what makes gunrock
//!   run out of memory on the Table 4 graphs.

#![forbid(unsafe_code)]
#![allow(clippy::too_many_arguments)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod brandes;
pub mod gunrock_like;
pub mod gunrock_simt;
pub mod weighted_brandes;

pub use brandes::{brandes_all_sources, brandes_single_source};
pub use weighted_brandes::{
    weighted_brandes_all_sources, weighted_brandes_single_source, weighted_sssp,
};

//! Weighted Brandes BC (Dijkstra-based) — the oracle for the weighted
//! extension in `turbobc::weighted`.
//!
//! Brandes (2001) §4: replace the BFS with Dijkstra, keep predecessor
//! lists for vertices reached over *tight* arcs
//! (`dist(v) + w(v,w) = dist(w)`), and accumulate dependencies in
//! non-increasing distance order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use turbobc_graph::weighted::WeightedGraph;
use turbobc_graph::VertexId;

/// Max-heap entry ordered by *smallest* distance first.
#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    vertex: VertexId,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by vertex id for
        // determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Tolerance for tight-arc detection (floating-point path sums).
const EPS: f64 = 1e-12;

fn accumulate(
    csr: &turbobc_sparse::Csr,
    w: &[f64],
    source: VertexId,
    scale: f64,
    bc: &mut [f64],
) -> Vec<f64> {
    let n = csr.n_rows();
    let mut dist = vec![f64::INFINITY; n];
    let mut sigma = vec![0.0f64; n];
    let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut settled_order: Vec<VertexId> = Vec::with_capacity(n);
    let mut settled = vec![false; n];

    dist[source as usize] = 0.0;
    sigma[source as usize] = 1.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapItem {
        dist: dv,
        vertex: v,
    }) = heap.pop()
    {
        let vi = v as usize;
        if settled[vi] || dv > dist[vi] {
            continue;
        }
        settled[vi] = true;
        settled_order.push(v);
        let lo = csr.row_ptr()[vi];
        for (k, &u) in csr.row(vi).iter().enumerate() {
            let ui = u as usize;
            let cand = dv + w[lo + k];
            if cand + EPS < dist[ui] {
                dist[ui] = cand;
                sigma[ui] = sigma[vi];
                preds[ui].clear();
                preds[ui].push(v);
                heap.push(HeapItem {
                    dist: cand,
                    vertex: u,
                });
            } else if (cand - dist[ui]).abs() <= EPS && !settled[ui] {
                sigma[ui] += sigma[vi];
                preds[ui].push(v);
            }
        }
    }

    let mut delta = vec![0.0f64; n];
    for &v in settled_order.iter().rev() {
        let vi = v as usize;
        let coeff = (1.0 + delta[vi]) / sigma[vi];
        for &p in &preds[vi] {
            delta[p as usize] += sigma[p as usize] * coeff;
        }
        if v != source {
            bc[vi] += delta[vi] * scale;
        }
    }
    dist
}

/// Weighted BC contribution of one source. Also returns nothing extra —
/// use [`weighted_sssp`] for distances.
pub fn weighted_brandes_single_source(graph: &WeightedGraph, source: VertexId) -> Vec<f64> {
    let (csr, w) = graph.to_weighted_csr();
    let mut bc = vec![0.0; graph.n()];
    accumulate(&csr, &w, source, graph.bc_scale(), &mut bc);
    bc
}

/// Exact weighted BC over all sources.
pub fn weighted_brandes_all_sources(graph: &WeightedGraph) -> Vec<f64> {
    let (csr, w) = graph.to_weighted_csr();
    let mut bc = vec![0.0; graph.n()];
    for s in 0..graph.n() {
        accumulate(&csr, &w, s as VertexId, graph.bc_scale(), &mut bc);
    }
    bc
}

/// Dijkstra single-source shortest distances (`f64::INFINITY` =
/// unreachable) — the oracle for the delta-stepping SSSP.
pub fn weighted_sssp(graph: &WeightedGraph, source: VertexId) -> Vec<f64> {
    let (csr, w) = graph.to_weighted_csr();
    let mut bc = vec![0.0; graph.n()];
    accumulate(&csr, &w, source, 0.0, &mut bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::brandes_all_sources;
    use turbobc_graph::{gen, Graph};

    #[test]
    fn unit_weights_reduce_to_unweighted_brandes() {
        for (seed, directed) in [(1u64, true), (2, false), (3, false)] {
            let g = gen::gnm(40, 140, directed, seed);
            let want = brandes_all_sources(&g);
            let wg = WeightedGraph::unit_weights(g);
            let got = weighted_brandes_all_sources(&wg);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-7, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn weights_change_the_shortest_paths() {
        // Triangle 0-1-2 plus direct edge 0-2: with a heavy direct edge,
        // paths route through 1.
        let heavy = WeightedGraph::from_edges(3, false, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let bc = weighted_brandes_all_sources(&heavy);
        assert!(
            bc[1] > 0.9,
            "vertex 1 must lie on the 0-2 shortest path, bc = {}",
            bc[1]
        );
        let light = WeightedGraph::from_edges(3, false, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.5)]);
        let bc = weighted_brandes_all_sources(&light);
        assert!(bc[1] < 1e-9, "direct edge is shorter; bc(1) = {}", bc[1]);
    }

    #[test]
    fn tied_paths_split_credit() {
        // Two equal-weight routes 0→1→3 and 0→2→3.
        let g = WeightedGraph::from_edges(
            4,
            true,
            &[(0, 1, 2.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 2.0)],
        );
        let bc = weighted_brandes_all_sources(&g);
        assert!((bc[1] - 0.5).abs() < 1e-9, "bc(1) = {}", bc[1]);
        assert!((bc[2] - 0.5).abs() < 1e-9, "bc(2) = {}", bc[2]);
    }

    #[test]
    fn sssp_distances_on_a_line() {
        let g = WeightedGraph::from_edges(4, true, &[(0, 1, 1.5), (1, 2, 2.5), (2, 3, 3.0)]);
        let d = weighted_sssp(&g, 0);
        assert_eq!(d, vec![0.0, 1.5, 4.0, 7.0]);
        let d3 = weighted_sssp(&g, 3);
        assert!(d3[0].is_infinite());
    }

    #[test]
    fn disconnected_weighted_graph() {
        let g = WeightedGraph::from_edges(4, false, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let bc = weighted_brandes_all_sources(&g);
        assert!(bc.iter().all(|&x| x.abs() < 1e-12));
        let _ = Graph::from_edges(1, true, &[]);
    }
}

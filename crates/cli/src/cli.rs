//! Argument parsing and command execution (library-shaped so tests can
//! drive it without spawning a process).

use std::fmt::Write as _;
use turbobc::observe::json::Json;
use turbobc::prelude::*;
use turbobc_graph::families::{self, Scale};
use turbobc_graph::{bfs, io, Graph, GraphStats};
use turbobc_serve::{Client, GraphSource, Request, ServeConfig, Server};
use turbobc_simt::{Device, FaultPlan};

/// Thin oracle wrapper (kept here so the CLI crate's only oracle
/// dependency is explicit).
fn turbobc_baselines_single(g: &Graph, s: u32) -> Vec<f64> {
    turbobc_baselines::brandes_single_source(g, s)
}

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
usage:
  turbobc stats   <file> [--format mtx|edges] [--directed]
  turbobc bc      <file> [--format mtx|edges] [--directed]
                  [--kernel auto|sccooc|sccsc|vecsc] [--sequential]
                  [--prep auto|off|components|full]
                  [--exact | --samples K | --approx EPSILON] [--top N]
                  [--dispatch auto|pinned:ENGINE|cost]  (ENGINE: seq, par,
                   batched, simt, turbobfs, hybrid)
                  [--batch B|auto] [--simt] [--faults SPEC] [--checkpoint FILE]
                  [--checkpoint-every K] [--resume]
                  [--profile FILE] [--profile-summary]
                  [--updates FILE]  (streamed edge changes: `+ u v`,
                   `- u v`, `commit` batch delimiters, `#` comments)
  turbobc prep-stats <file> [--format mtx|edges] [--directed]
                  [--prep auto|off|components|full]
  turbobc validate-profile <file.json>
  turbobc edge-bc <file> [--format mtx|edges] [--directed] [--top N]
  turbobc closeness <file> [--format mtx|edges] [--directed] [--top N]
  turbobc gen     <family> [--scale tiny|small|medium|large] [-o FILE]
  turbobc convert <file> [--format mtx|edges] [--directed] -o FILE
  turbobc pagerank <file> [--format mtx|edges] [--directed] [--top N]
  turbobc serve   [--addr HOST:PORT] [--workers N] [--cache-mb MB]
                  [--checkpoint-dir DIR] [--smoke]
  turbobc query   <kind> [args] [--addr HOST:PORT]
                  kinds: load NAME FILE|FAMILY [--family] [--scale S]
                         [--directed] [--warm]
                  | unload NAME | full NAME | topk NAME K
                  | vertex NAME V | subset NAME S1 S2 ...
                  | update NAME +U:V|-U:V ... | status | metrics
  turbobc selftest  (quick oracle-equivalence acceptance run)
  turbobc list    (catalogued graph families)

input formats: MatrixMarket .mtx (directedness from the header) or a
whitespace edge list (`--directed` for directed; default undirected).";

struct Parsed {
    command: String,
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut it = args.iter().peekable();
    let command = it.next().ok_or("missing command")?.clone();
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match name {
                // boolean flags
                "directed" | "exact" | "sequential" | "resume" | "simt" | "profile-summary"
                | "warm" | "family" | "smoke" => "true".to_string(),
                _ => it
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?
                    .clone(),
            };
            flags.insert(name.to_string(), value);
        } else if a == "-o" {
            let value = it.next().ok_or("-o needs a path")?.clone();
            flags.insert("out".to_string(), value);
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Parsed {
        command,
        positional,
        flags,
    })
}

fn load(p: &Parsed) -> Result<Graph, String> {
    let path = p.positional.first().ok_or("missing input file")?;
    let format = p
        .flags
        .get("format")
        .map(String::as_str)
        .unwrap_or_else(|| {
            if path.ends_with(".mtx") {
                "mtx"
            } else {
                "edges"
            }
        });
    match format {
        "mtx" => io::read_matrix_market_file(path).map_err(|e| e.to_string()),
        "edges" => {
            let directed = p.flags.contains_key("directed");
            io::read_edge_list_file(path, directed, None).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown format `{other}`")),
    }
}

fn kernel_of(p: &Parsed) -> Result<Kernel, String> {
    match p.flags.get("kernel").map(String::as_str).unwrap_or("auto") {
        "auto" => Ok(Kernel::Auto),
        "sccooc" => Ok(Kernel::ScCooc),
        "sccsc" => Ok(Kernel::ScCsc),
        "vecsc" => Ok(Kernel::VeCsc),
        other => Err(format!("unknown kernel `{other}`")),
    }
}

fn prep_of(p: &Parsed) -> Result<PrepMode, String> {
    match p.flags.get("prep").map(String::as_str).unwrap_or("auto") {
        "auto" => Ok(PrepMode::Auto),
        "off" => Ok(PrepMode::Off),
        "components" => Ok(PrepMode::ComponentsOnly),
        "full" => Ok(PrepMode::Full),
        other => Err(format!("unknown prep mode `{other}`")),
    }
}

fn top_n(p: &Parsed) -> usize {
    p.flags
        .get("top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// The source set the `--exact` / `--samples K` / default flags select
/// (the `--samples` stride matches [`BcSolver::bc_sampled`]).
fn sources_of(p: &Parsed, g: &Graph) -> Result<Vec<u32>, String> {
    let n = g.n();
    if p.flags.contains_key("exact") {
        return Ok((0..n as u32).collect());
    }
    if let Some(k) = p.flags.get("samples") {
        let k: usize = k.parse().map_err(|_| format!("bad sample count `{k}`"))?;
        let k = k.clamp(1, n.max(1));
        let stride = (n / k).max(1);
        return Ok((0..n).step_by(stride).take(k).map(|s| s as u32).collect());
    }
    Ok(vec![g.default_source()])
}

fn recovery_summary(log: &RecoveryLog) -> String {
    if log.is_clean() {
        return "recovery: clean run, nothing absorbed".to_string();
    }
    let mut parts = Vec::new();
    if log.kernel_retries > 0 {
        parts.push(format!("{} kernel retries", log.kernel_retries));
    }
    if log.link_retries > 0 {
        parts.push(format!("{} link retries", log.link_retries));
    }
    if log.oom_degradations > 0 {
        parts.push(format!(
            "{} OOM degradation(s) to {}",
            log.oom_degradations,
            log.degraded_to.unwrap_or("?")
        ));
    }
    if log.device_requeues > 0 {
        parts.push(format!("{} device requeue(s)", log.device_requeues));
    }
    if log.resumed_sources > 0 {
        parts.push(format!(
            "{} sources resumed from checkpoint",
            log.resumed_sources
        ));
    }
    if log.cpu_fallback {
        parts.push("CPU fallback".to_string());
    }
    format!("recovery: absorbed {}", parts.join(", "))
}

fn stats_report(g: &Graph) -> String {
    let s = GraphStats::compute(g);
    let source = g.default_source();
    let b = bfs(g, source);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "n = {}, m = {} stored arcs, directed = {}",
        s.n,
        s.m,
        g.directed()
    );
    let _ = writeln!(
        out,
        "degree max/mean/std = {}/{:.2}/{:.2}, scf~ = {:.2}, class = {:?}",
        s.degree.max,
        s.degree.mean,
        s.degree.std,
        s.scf,
        s.class()
    );
    let _ = writeln!(
        out,
        "BFS from hub {}: depth d = {}, reached {} ({:.1}%)",
        source,
        b.height,
        b.reached,
        100.0 * b.reached as f64 / s.n.max(1) as f64
    );
    out
}

fn rank_report(label: &str, scores: &[f64], top: usize) -> String {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut out = format!("top {} by {label}:\n", top.min(scores.len()));
    for &v in order.iter().take(top) {
        let _ = writeln!(out, "  {v:>8}  {:.4}", scores[v]);
    }
    out
}

/// Executes one CLI invocation, returning the report to print.
pub fn run(args: &[String]) -> Result<String, String> {
    let p = parse(args)?;
    match p.command.as_str() {
        "stats" => {
            let g = load(&p)?;
            Ok(stats_report(&g))
        }
        "bc" => {
            let g = load(&p)?;
            let mut builder = BcOptions::builder()
                .kernel(kernel_of(&p)?)
                .prep(prep_of(&p)?);
            if p.flags.contains_key("sequential") {
                builder = builder.sequential();
            }
            // `--dispatch` subsumes the older `--simt` / `--batch`
            // spellings (kept below as pinned shims).
            let dispatch = match p.flags.get("dispatch") {
                Some(s) => Some(s.parse::<DispatchMode>()?),
                None => None,
            };
            if let Some(mode) = dispatch {
                builder = builder.dispatch(mode);
            }
            if let Some(b) = p.flags.get("batch") {
                if b != "auto" {
                    let w: usize = b.parse().map_err(|_| format!("bad batch width `{b}`"))?;
                    builder = builder.batch_width(w);
                }
            }
            let ckpt_every: usize = match p.flags.get("checkpoint-every") {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("bad checkpoint interval `{v}`"))?,
                None => 64,
            };
            if let Some(ckpt) = p.flags.get("checkpoint") {
                let mut cfg = CheckpointConfig::new(ckpt, ckpt_every);
                if p.flags.contains_key("resume") {
                    cfg = cfg.resume();
                }
                builder = builder.checkpoint(cfg);
            }
            let options = builder.build();
            let top = top_n(&p);
            let profile_path = p.flags.get("profile").cloned();
            let want_summary = p.flags.contains_key("profile-summary");
            let want_profile = profile_path.is_some() || want_summary;
            let mut profile_obs = ProfileObserver::new();
            let mut null_obs = NullObserver;
            let obs: &mut dyn Observer = if want_profile {
                &mut profile_obs
            } else {
                &mut null_obs
            };
            let mut out = String::new();
            if let Some(upath) = p.flags.get("updates") {
                // Dynamic mode: warm a cached batched run, then replay
                // the update stream batch by batch through the
                // incremental engine.
                for bad in ["approx", "faults", "simt", "checkpoint"] {
                    if p.flags.contains_key(bad) {
                        return Err(format!("--updates is not supported with --{bad}"));
                    }
                }
                let text = std::fs::read_to_string(upath).map_err(|e| format!("{upath}: {e}"))?;
                let batches = crate::updates::parse_update_stream(&text, g.n())?;
                let sources = sources_of(&p, &g)?;
                let mut dbc = DynamicBc::new(&g, &sources, options).map_err(|e| e.to_string())?;
                let _ = writeln!(
                    out,
                    "dynamic BC: {} source(s) in {} cached block(s), {} update batch(es) from {}",
                    sources.len(),
                    dbc.cache().block_count(),
                    batches.len(),
                    upath
                );
                for (i, batch) in batches.iter().enumerate() {
                    let r = dbc
                        .apply_updates_observed(batch, obs)
                        .map_err(|e| e.to_string())?;
                    let _ = writeln!(
                        out,
                        "  batch {:>3}: +{} -{} ({} ignored) -> {} \
                         ({}/{} block(s) dirty, {} recomputed){}",
                        i + 1,
                        r.inserts,
                        r.deletes,
                        r.ignored,
                        r.strategy,
                        r.dirty_blocks,
                        r.total_blocks,
                        r.recomputed_blocks,
                        if r.compacted { ", compacted" } else { "" }
                    );
                }
                let _ = writeln!(
                    out,
                    "final graph: n = {}, m = {} stored arcs, {} pending delta edge(s)",
                    dbc.graph().n(),
                    dbc.graph().m(),
                    dbc.graph().pending()
                );
                out.push_str(&rank_report("BC", dbc.bc(), top));
            } else if let Some(eps) = p.flags.get("approx") {
                if want_profile {
                    return Err("--profile is not supported with --approx".to_string());
                }
                let epsilon: f64 = eps.parse().map_err(|_| format!("bad epsilon `{eps}`"))?;
                let solver = BcSolver::new(&g, options).map_err(|e| e.to_string())?;
                let r = solver
                    .approx(epsilon, 0.1, 0x70b0bc)
                    .map_err(|e| e.to_string())?;
                let _ = writeln!(
                    out,
                    "approximate BC: {} sampled sources (epsilon {}, delta {}) in {:.1} ms",
                    r.samples,
                    r.epsilon,
                    r.delta,
                    r.run.stats.elapsed.as_secs_f64() * 1e3
                );
                out.push_str(&rank_report("estimated BC", &r.bc, top));
            } else if let Some(spec) = p.flags.get("faults") {
                // Fault-injected run on the SIMT device: the recovery
                // policy absorbs what it can, the summary reports it.
                let plan = FaultPlan::parse(spec)?;
                let solver = BcSolver::new(&g, options).map_err(|e| e.to_string())?;
                let device = Device::with_faults(DeviceProps::titan_xp(), plan);
                let sources = sources_of(&p, &g)?;
                let exec_plan = solver
                    .plan_pinned(ExecutorKind::Simt, &sources)
                    .map_err(|e| e.to_string())?;
                let ex = solver
                    .execute_on_observed(&device, &exec_plan, obs)
                    .map_err(|e| e.to_string())?;
                let report = ex
                    .simt_report()
                    .cloned()
                    .expect("SIMT plans carry a device report");
                let r = ex.into_bc().expect("BC plans produce a BC result");
                let _ = writeln!(
                    out,
                    "SIMT run under injected faults: kernel {} over {} source(s), \
                     modelled {:.3} ms",
                    solver.kernel().name(),
                    r.stats.sources,
                    report.modelled_time_s * 1e3
                );
                let _ = writeln!(out, "{}", recovery_summary(&r.stats.recovery));
                out.push_str(&rank_report("BC", &r.bc, top));
            } else if p.flags.contains_key("simt") {
                let solver = BcSolver::new(&g, options).map_err(|e| e.to_string())?;
                let sources = sources_of(&p, &g)?;
                let exec_plan = solver
                    .plan_pinned(ExecutorKind::Simt, &sources)
                    .map_err(|e| e.to_string())?;
                let ex = solver
                    .execute_observed(&exec_plan, obs)
                    .map_err(|e| e.to_string())?;
                let report = ex
                    .simt_report()
                    .cloned()
                    .expect("SIMT plans carry a device report");
                let r = ex.into_bc().expect("BC plans produce a BC result");
                let _ = writeln!(
                    out,
                    "SIMT run: kernel {} over {} source(s), modelled {:.3} ms, \
                     peak device memory {} bytes",
                    solver.kernel().name(),
                    r.stats.sources,
                    report.modelled_time_s * 1e3,
                    report.memory.peak
                );
                let _ = writeln!(out, "{}", recovery_summary(&r.stats.recovery));
                out.push_str(&rank_report("BC", &r.bc, top));
            } else if p.flags.contains_key("checkpoint") {
                if want_profile {
                    return Err("--profile is not supported with --checkpoint".to_string());
                }
                let ckpt = p.flags.get("checkpoint").expect("guarded by contains_key");
                let solver = BcSolver::new(&g, options).map_err(|e| e.to_string())?;
                let sources = sources_of(&p, &g)?;
                let exec_plan = solver.plan(&sources).map_err(|e| e.to_string())?;
                let r = solver
                    .execute_checkpointed(&exec_plan)
                    .map_err(|e| e.to_string())?;
                let _ = writeln!(
                    out,
                    "kernel {} over {} source(s) (checkpoint `{}` every {}), {:.1} ms",
                    solver.kernel().name(),
                    r.stats.sources,
                    ckpt,
                    ckpt_every,
                    r.stats.elapsed.as_secs_f64() * 1e3
                );
                let _ = writeln!(out, "{}", recovery_summary(&r.stats.recovery));
                out.push_str(&rank_report("BC", &r.bc, top));
            } else if p.flags.contains_key("batch") {
                // Batched multi-source engine: blocks of `B` sources per
                // matrix sweep (`auto` sizes the block from the device
                // memory budget).
                let solver = BcSolver::new(&g, options).map_err(|e| e.to_string())?;
                let sources = sources_of(&p, &g)?;
                let width = solver.resolve_batch_width(sources.len());
                let exec_plan = solver
                    .plan_pinned(ExecutorKind::Batched, &sources)
                    .map_err(|e| e.to_string())?;
                let r = solver
                    .execute_observed(&exec_plan, obs)
                    .map_err(|e| e.to_string())?
                    .into_bc()
                    .expect("BC plans produce a BC result");
                let _ = writeln!(
                    out,
                    "batched run: kernel {} over {} source(s) in {} block(s) of width {}, {:.1} ms",
                    solver.kernel().name(),
                    r.stats.sources,
                    sources.len().div_ceil(width.max(1)),
                    width,
                    r.stats.elapsed.as_secs_f64() * 1e3
                );
                out.push_str(&rank_report("BC", &r.bc, top));
            } else {
                let solver = BcSolver::new(&g, options).map_err(|e| e.to_string())?;
                let sources = sources_of(&p, &g)?;
                let exec_plan = solver.plan(&sources).map_err(|e| e.to_string())?;
                if dispatch.is_some() {
                    let _ = writeln!(
                        out,
                        "dispatch {}: {}",
                        exec_plan.mode().describe(),
                        exec_plan.summary()
                    );
                }
                let r = solver
                    .execute_observed(&exec_plan, obs)
                    .map_err(|e| e.to_string())?
                    .into_bc()
                    .expect("BC plans produce a BC result");
                let _ = writeln!(
                    out,
                    "kernel {} over {} source(s), BFS depth <= {}, {:.1} ms",
                    solver.kernel().name(),
                    r.stats.sources,
                    r.stats.max_depth,
                    r.stats.elapsed.as_secs_f64() * 1e3
                );
                out.push_str(&rank_report("BC", &r.bc, top));
            }
            if want_profile {
                let profile = profile_obs.into_profile();
                if let Some(path) = profile_path {
                    std::fs::write(&path, profile.to_json_string()).map_err(|e| e.to_string())?;
                    let _ = writeln!(out, "profile written to {path}");
                }
                if want_summary {
                    out.push_str(&profile.summary());
                }
            }
            Ok(out)
        }
        "prep-stats" => {
            let g = load(&p)?;
            let r = turbobc::prep::analyze(&g, prep_of(&p)?);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "prep mode {}: {} component(s), n {} -> {}, m {} -> {} stored arcs",
                r.mode, r.components, r.n, r.n_reduced, r.m, r.m_reduced
            );
            let _ = writeln!(
                out,
                "degree-1 fold: {} vertex(es) removed in {} wave(s) {:?}",
                r.folded_vertices, r.fold_passes, r.fold_pass_removed
            );
            let _ = writeln!(
                out,
                "twin compression: {} class(es), {} member(s) removed",
                r.twin_classes, r.twin_members_removed
            );
            let _ = writeln!(out, "reduction ratio: {:.3}", r.reduction_ratio());
            Ok(out)
        }
        "validate-profile" => {
            let path = p.positional.first().ok_or("missing profile file")?;
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let json = RunProfile::validate(&text).map_err(|e| format!("invalid profile: {e}"))?;
            let field = |k: &str| {
                json.get(k)
                    .and_then(|j| j.as_str())
                    .map(str::to_string)
                    .unwrap_or_default()
            };
            let count = |k: &str| json.get(k).and_then(|j| j.as_arr()).map_or(0, <[_]>::len);
            Ok(format!(
                "profile ok: schema {}, engine {}, kernel {}, {} level event(s), \
                 {} source run(s), {} kernel stat(s), {} recovery event(s)\n",
                field("schema"),
                field("engine"),
                field("kernel"),
                count("levels"),
                count("source_runs"),
                count("kernels"),
                count("recovery"),
            ))
        }
        "closeness" => {
            let g = load(&p)?;
            let options = BcOptions::builder().kernel(kernel_of(&p)?).build();
            let solver = BcSolver::new(&g, options).map_err(|e| e.to_string())?;
            let r = solver.closeness().map_err(|e| e.to_string())?;
            let mut out = rank_report("harmonic centrality", &r.harmonic, top_n(&p));
            out.push_str(&rank_report(
                "closeness (Wasserman-Faust)",
                &r.closeness,
                top_n(&p),
            ));
            Ok(out)
        }
        "edge-bc" => {
            let g = load(&p)?;
            let solver =
                BcSolver::new(&g, BcOptions::builder().build()).map_err(|e| e.to_string())?;
            let r = solver.edge_bc().map_err(|e| e.to_string())?;
            let mut out = format!(
                "edge BC over {} sources in {:.1} ms\n",
                r.stats.sources,
                r.stats.elapsed.as_secs_f64() * 1e3
            );
            for ((u, v), score) in r.top_arcs(top_n(&p)) {
                let _ = writeln!(out, "  {u:>6} -> {v:<6}  {score:.4}");
            }
            Ok(out)
        }
        "gen" => {
            let name = p.positional.first().ok_or("missing family name")?;
            let scale = match p.flags.get("scale").map(String::as_str).unwrap_or("tiny") {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                "medium" => Scale::Medium,
                "large" => Scale::Large,
                other => return Err(format!("unknown scale `{other}`")),
            };
            let g = families::generate(name, scale)
                .ok_or_else(|| format!("unknown family `{name}` (see `turbobc list`)"))?;
            match p.flags.get("out") {
                Some(path) => {
                    let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
                    io::write_matrix_market(&g, &mut f).map_err(|e| e.to_string())?;
                    Ok(format!("wrote {} (n = {}, m = {})\n", path, g.n(), g.m()))
                }
                None => Ok(stats_report(&g)),
            }
        }
        "convert" => {
            let g = load(&p)?;
            let path = p.flags.get("out").ok_or("convert needs -o FILE")?;
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            if path.ends_with(".mtx") {
                io::write_matrix_market(&g, &mut f).map_err(|e| e.to_string())?;
            } else {
                io::write_edge_list(&g, &mut f).map_err(|e| e.to_string())?;
            }
            Ok(format!("wrote {} (n = {}, m = {})\n", path, g.n(), g.m()))
        }
        "pagerank" => {
            let g = load(&p)?;
            let r = turbobc_sparse::semiring::pagerank(&g.to_csr(), 0.85, 1e-10, 200);
            Ok(rank_report("PageRank", &r, top_n(&p)))
        }
        "selftest" => {
            use turbobc_graph::gen;
            let mut out = String::from("selftest: every kernel/engine vs the Brandes oracle\n");
            let mut failures = 0usize;
            for (name, g) in [
                ("undirected smallworld", gen::small_world(120, 3, 0.2, 1)),
                ("directed gnm", gen::gnm(100, 320, true, 2)),
                ("disconnected", gen::gnm(80, 60, false, 3)),
                ("mycielski", gen::mycielski(7)),
            ] {
                let s = g.default_source();
                let want = turbobc_baselines_single(&g, s);
                for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
                    for engine in [Engine::Sequential, Engine::Parallel] {
                        let options = BcOptions::builder().kernel(kernel).engine(engine).build();
                        let solver = BcSolver::new(&g, options).map_err(|e| e.to_string())?;
                        let r = solver.bc_single_source(s).map_err(|e| e.to_string())?;
                        let ok = r.bc.iter().zip(&want).all(|(a, b)| (a - b).abs() < 1e-7);
                        if !ok {
                            failures += 1;
                        }
                        let _ = writeln!(
                            out,
                            "  {:<22} {:>7}/{:<10} {}",
                            name,
                            kernel.name(),
                            format!("{engine:?}"),
                            if ok { "ok" } else { "MISMATCH" }
                        );
                    }
                }
            }
            if failures == 0 {
                out.push_str("all checks passed\n");
                Ok(out)
            } else {
                Err(format!("{failures} selftest checks FAILED\n{out}"))
            }
        }
        "serve" => run_serve(&p),
        "query" => run_query(&p),
        "list" => {
            let mut out = String::from("catalogued families (paper table in parens):\n");
            for row in families::all_rows() {
                let _ = writeln!(
                    out,
                    "  {:<20} (table {}, best kernel {})",
                    row.name, row.table, row.kernel
                );
            }
            Ok(out)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// `turbobc serve`: bind the BC query server and run the accept loop
/// (`--smoke` instead runs a self-contained client/server round trip
/// and exits — the CI smoke test).
fn run_serve(p: &Parsed) -> Result<String, String> {
    let mut config = ServeConfig::default();
    if let Some(addr) = p.flags.get("addr") {
        config.addr = addr.clone();
    }
    if let Some(w) = p.flags.get("workers") {
        config.workers = w
            .parse::<usize>()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("bad worker count `{w}`"))?;
    }
    if let Some(mb) = p.flags.get("cache-mb") {
        let mb: u64 = mb.parse().map_err(|_| format!("bad cache budget `{mb}`"))?;
        config.cache_bytes = mb << 20;
    }
    if let Some(dir) = p.flags.get("checkpoint-dir") {
        config.checkpoint_dir = Some(dir.into());
    }
    let workers = config.workers;
    let server = Server::bind(config).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    if p.flags.contains_key("smoke") {
        return smoke_test(server, workers);
    }
    eprintln!("turbobc serve: listening on {addr} with {workers} worker(s)");
    server.run().map_err(|e| e.to_string())?;
    Ok(format!("serve: {addr} shut down cleanly\n"))
}

/// One end-to-end round trip against an in-process server: load a
/// 5-path, rank it, and read the counters back.
fn smoke_test(server: Server, workers: usize) -> Result<String, String> {
    let handle = server.spawn().map_err(|e| e.to_string())?;
    let mut out = format!(
        "smoke: serving on {} with {workers} worker(s)\n",
        handle.addr()
    );
    let verdict = (|| -> Result<(), String> {
        let mut client = Client::connect(handle.addr()).map_err(|e| e.to_string())?;
        client.request(Request::Load {
            graph: "smoke".into(),
            source: GraphSource::Inline {
                n: 5,
                directed: false,
                edges: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            },
            warm: false,
        })?;
        let top = client.request(Request::BcTopK {
            graph: "smoke".into(),
            k: 1,
        })?;
        let best = top
            .get("top")
            .and_then(Json::as_arr)
            .and_then(|t| t.first())
            .and_then(Json::as_arr)
            .and_then(|pair| pair.first())
            .and_then(Json::as_f64);
        if best != Some(2.0) {
            return Err(format!("expected path midpoint 2 on top, got {top:?}"));
        }
        let status = client.request(Request::Status)?;
        let graphs = status
            .get("graphs")
            .and_then(Json::as_arr)
            .map_or(0, <[_]>::len);
        let _ = writeln!(out, "smoke: bc_topk ranks the path midpoint first");
        let _ = writeln!(out, "smoke: status reports {graphs} graph(s) loaded");
        Ok(())
    })();
    handle.shutdown();
    verdict?;
    out.push_str("smoke: ok\n");
    Ok(out)
}

/// `turbobc query`: one request against a running server, response
/// printed as JSON.
fn run_query(p: &Parsed) -> Result<String, String> {
    let addr = p
        .flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7700");
    let kind = p.positional.first().ok_or("query needs a kind")?.as_str();
    let arg = |i: usize, what: &str| -> Result<String, String> {
        p.positional
            .get(i)
            .cloned()
            .ok_or_else(|| format!("query {kind} needs {what}"))
    };
    let request = match kind {
        "load" => {
            let graph = arg(1, "a graph name")?;
            let target = arg(2, "a file path or family name")?;
            let source = if p.flags.contains_key("family") {
                GraphSource::Family {
                    family: target,
                    scale: p
                        .flags
                        .get("scale")
                        .cloned()
                        .unwrap_or_else(|| "tiny".to_string()),
                }
            } else {
                GraphSource::Path {
                    path: target,
                    directed: p.flags.contains_key("directed"),
                }
            };
            Request::Load {
                graph,
                source,
                warm: p.flags.contains_key("warm"),
            }
        }
        "unload" => Request::Unload {
            graph: arg(1, "a graph name")?,
        },
        "full" => Request::BcFull {
            graph: arg(1, "a graph name")?,
        },
        "topk" => Request::BcTopK {
            graph: arg(1, "a graph name")?,
            k: arg(2, "K")?.parse().map_err(|_| "bad K".to_string())?,
        },
        "vertex" => Request::BcVertex {
            graph: arg(1, "a graph name")?,
            vertex: arg(2, "a vertex id")?
                .parse()
                .map_err(|_| "bad vertex id".to_string())?,
        },
        "subset" => {
            let graph = arg(1, "a graph name")?;
            let sources = p.positional[2..]
                .iter()
                .map(|s| s.parse::<u32>().map_err(|_| format!("bad source `{s}`")))
                .collect::<Result<Vec<u32>, String>>()?;
            Request::BcSubset { graph, sources }
        }
        "update" => {
            let graph = arg(1, "a graph name")?;
            let updates = p.positional[2..]
                .iter()
                .map(|tok| parse_update_token(tok))
                .collect::<Result<Vec<EdgeUpdate>, String>>()?;
            if updates.is_empty() {
                return Err("query update needs edge ops like +0:4 or -0:4".to_string());
            }
            Request::Update { graph, updates }
        }
        "status" => Request::Status,
        "metrics" => Request::Metrics,
        other => return Err(format!("unknown query kind `{other}`")),
    };
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let doc = client.request(request)?;
    Ok(format!("{}\n", doc.pretty()))
}

/// `+U:V` inserts the edge, `-U:V` deletes it.
fn parse_update_token(tok: &str) -> Result<EdgeUpdate, String> {
    let bad = || format!("bad edge op `{tok}` (want +U:V or -U:V)");
    let (insert, rest) = match (tok.strip_prefix('+'), tok.strip_prefix('-')) {
        (Some(rest), _) => (true, rest),
        (_, Some(rest)) => (false, rest),
        _ => return Err(bad()),
    };
    let (u, v) = rest.split_once(':').ok_or_else(bad)?;
    let u: u32 = u.parse().map_err(|_| bad())?;
    let v: u32 = v.parse().map_err(|_| bad())?;
    Ok(if insert {
        EdgeUpdate::Insert(u, v)
    } else {
        EdgeUpdate::Delete(u, v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("turbobc_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn list_names_all_families() {
        let out = run(&args(&["list"])).unwrap();
        assert!(out.contains("mycielskian15"));
        assert!(out.contains("kmer_V1r"));
        assert_eq!(out.lines().count(), 34);
    }

    #[test]
    fn gen_stats_and_file_output() {
        let out = run(&args(&["gen", "smallworld"])).unwrap();
        assert!(out.contains("class = Regular"), "{out}");
        let path = temp("sw.mtx");
        let out = run(&args(&["gen", "smallworld", "-o", path.to_str().unwrap()])).unwrap();
        assert!(out.starts_with("wrote"));
        let g = io::read_matrix_market_file(&path).unwrap();
        assert!(!g.directed());
    }

    #[test]
    fn bc_pipeline_from_generated_file() {
        let path = temp("ba.mtx");
        run(&args(&["gen", "com-Youtube", "-o", path.to_str().unwrap()])).unwrap();
        let out = run(&args(&["bc", path.to_str().unwrap(), "--top", "3"])).unwrap();
        assert!(out.contains("kernel scCOOC"), "{out}");
        assert!(out.lines().count() >= 4);
        let out = run(&args(&["bc", path.to_str().unwrap(), "--samples", "8"])).unwrap();
        assert!(out.contains("over 8 source(s)"), "{out}");
        let out = run(&args(&["bc", path.to_str().unwrap(), "--approx", "0.2"])).unwrap();
        assert!(out.contains("approximate BC"), "{out}");
    }

    #[test]
    fn edge_bc_and_convert_round_trip() {
        let mtx = temp("roads.mtx");
        run(&args(&[
            "gen",
            "luxembourg_osm",
            "-o",
            mtx.to_str().unwrap(),
        ]))
        .unwrap();
        let txt = temp("roads.txt");
        let out = run(&args(&[
            "convert",
            mtx.to_str().unwrap(),
            "-o",
            txt.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.starts_with("wrote"));
        let stats = run(&args(&[
            "stats",
            txt.to_str().unwrap(),
            "--format",
            "edges",
        ]))
        .unwrap();
        assert!(stats.contains("class = Regular"), "{stats}");

        // Edge BC on a tiny star written by hand.
        let star = temp("star.mtx");
        let g = Graph::from_edges(5, false, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut f = std::fs::File::create(&star).unwrap();
        io::write_matrix_market(&g, &mut f).unwrap();
        let out = run(&args(&["edge-bc", star.to_str().unwrap(), "--top", "2"])).unwrap();
        assert!(out.contains("->"), "{out}");
    }

    #[test]
    fn closeness_command() {
        let path = temp("cl.mtx");
        run(&args(&["gen", "smallworld", "-o", path.to_str().unwrap()])).unwrap();
        let out = run(&args(&["closeness", path.to_str().unwrap(), "--top", "3"])).unwrap();
        assert!(out.contains("harmonic"), "{out}");
        assert!(out.contains("Wasserman"), "{out}");
    }

    #[test]
    fn selftest_passes() {
        let out = run(&args(&["selftest"])).unwrap();
        assert!(out.contains("all checks passed"), "{out}");
        assert!(!out.contains("MISMATCH"));
    }

    #[test]
    fn pagerank_command() {
        let path = temp("pr.mtx");
        run(&args(&["gen", "com-Youtube", "-o", path.to_str().unwrap()])).unwrap();
        let out = run(&args(&["pagerank", path.to_str().unwrap(), "--top", "3"])).unwrap();
        assert!(out.contains("PageRank"), "{out}");
    }

    #[test]
    fn fault_injected_run_reports_recovery() {
        let path = temp("faults.mtx");
        run(&args(&["gen", "smallworld", "-o", path.to_str().unwrap()])).unwrap();
        let out = run(&args(&[
            "bc",
            path.to_str().unwrap(),
            "--faults",
            "seed=1,fail_launch_at=3",
        ]))
        .unwrap();
        assert!(out.contains("injected faults"), "{out}");
        assert!(out.contains("kernel retries"), "{out}");
        let out = run(&args(&["bc", path.to_str().unwrap(), "--faults", "seed=1"])).unwrap();
        assert!(out.contains("clean run"), "{out}");
        assert!(run(&args(&["bc", path.to_str().unwrap(), "--faults", "bogus"])).is_err());
    }

    #[test]
    fn checkpointed_run_matches_and_resumes() {
        let mtx = temp("ckpt.mtx");
        let ck = temp("ckpt.bin");
        let _ = std::fs::remove_file(&ck);
        run(&args(&["gen", "smallworld", "-o", mtx.to_str().unwrap()])).unwrap();
        let ranks = |s: &str| s[s.find("top ").unwrap()..].to_string();
        let plain = run(&args(&["bc", mtx.to_str().unwrap(), "--samples", "9"])).unwrap();
        let ckpt = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--samples",
            "9",
            "--checkpoint",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            ranks(&plain),
            ranks(&ckpt),
            "checkpointing must not perturb the ranking"
        );
        let resumed = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--samples",
            "9",
            "--checkpoint",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "2",
            "--resume",
        ]))
        .unwrap();
        assert!(resumed.contains("resumed from checkpoint"), "{resumed}");
        assert_eq!(ranks(&plain), ranks(&resumed));
    }

    #[test]
    fn batched_run_reports_blocks_and_matches_plain() {
        let mtx = temp("batch.mtx");
        run(&args(&["gen", "smallworld", "-o", mtx.to_str().unwrap()])).unwrap();
        let ranks = |s: &str| s[s.find("top ").unwrap()..].to_string();
        // Sequential scCSC pull and the batched CSC engine accumulate
        // per-lane floats in the same order, so the rankings agree.
        let plain = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--kernel",
            "sccsc",
            "--sequential",
            "--samples",
            "9",
        ]))
        .unwrap();
        let batched = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--kernel",
            "sccsc",
            "--sequential",
            "--samples",
            "9",
            "--batch",
            "4",
        ]))
        .unwrap();
        assert!(batched.contains("batched run:"), "{batched}");
        assert!(batched.contains("3 block(s) of width 4"), "{batched}");
        assert_eq!(ranks(&plain), ranks(&batched));
        let auto = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--batch",
            "auto",
            "--samples",
            "9",
            "--profile-summary",
        ]))
        .unwrap();
        assert!(auto.contains("batched:"), "{auto}");
        assert!(run(&args(&["bc", mtx.to_str().unwrap(), "--batch", "nope"])).is_err());
    }

    #[test]
    fn dispatch_flag_plans_and_matches_pinned() {
        let mtx = temp("dispatch.mtx");
        run(&args(&["gen", "com-Youtube", "-o", mtx.to_str().unwrap()])).unwrap();
        let ranks = |s: &str| s[s.find("top ").unwrap()..].to_string();
        let plain = run(&args(&["bc", mtx.to_str().unwrap(), "--samples", "9"])).unwrap();
        let cost = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--samples",
            "9",
            "--dispatch",
            "cost",
        ]))
        .unwrap();
        assert!(cost.contains("dispatch cost:"), "{cost}");
        assert_eq!(
            ranks(&plain),
            ranks(&cost),
            "cost-model dispatch must not perturb the ranking"
        );
        let pinned = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--samples",
            "9",
            "--dispatch",
            "pinned:seq",
        ]))
        .unwrap();
        assert!(pinned.contains("dispatch pinned:seq"), "{pinned}");
        assert_eq!(ranks(&plain), ranks(&pinned));
        assert!(run(&args(&["bc", mtx.to_str().unwrap(), "--dispatch", "bogus"])).is_err());
        assert!(run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--dispatch",
            "pinned:warp"
        ]))
        .is_err());
    }

    #[test]
    fn prep_flag_and_stats_command() {
        let mtx = temp("prep.mtx");
        // A small broom: path 0-1-2-3 with leaves 4, 5, 6 on the tip —
        // the degree-1 fold collapses the whole graph.
        let g = Graph::from_edges(7, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (3, 6)]);
        let mut f = std::fs::File::create(&mtx).unwrap();
        io::write_matrix_market(&g, &mut f).unwrap();
        let ranks = |s: &str| s[s.find("top ").unwrap()..].to_string();
        let off = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--exact",
            "--prep",
            "off",
        ]))
        .unwrap();
        let full = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--exact",
            "--prep",
            "full",
        ]))
        .unwrap();
        assert_eq!(
            ranks(&off),
            ranks(&full),
            "reduction must not perturb the ranking"
        );
        let stats = run(&args(&[
            "prep-stats",
            mtx.to_str().unwrap(),
            "--prep",
            "full",
        ]))
        .unwrap();
        assert!(stats.contains("prep mode full"), "{stats}");
        assert!(stats.contains("degree-1 fold"), "{stats}");
        assert!(stats.contains("reduction ratio"), "{stats}");
        let auto = run(&args(&["prep-stats", mtx.to_str().unwrap()])).unwrap();
        assert!(auto.contains("component(s)"), "{auto}");
        assert!(run(&args(&["bc", mtx.to_str().unwrap(), "--prep", "bogus"])).is_err());
        assert!(run(&args(&["prep-stats"])).is_err());
    }

    #[test]
    fn simt_profile_round_trips_through_validate() {
        let mtx = temp("prof.mtx");
        run(&args(&["gen", "smallworld", "-o", mtx.to_str().unwrap()])).unwrap();
        let prof = temp("prof.json");
        let out = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--simt",
            "--profile",
            prof.to_str().unwrap(),
            "--profile-summary",
        ]))
        .unwrap();
        assert!(out.contains("SIMT run:"), "{out}");
        assert!(out.contains("profile written"), "{out}");
        let validated = run(&args(&["validate-profile", prof.to_str().unwrap()])).unwrap();
        assert!(
            validated.contains("profile ok: schema turbobc-profile-v1"),
            "{validated}"
        );
        assert!(validated.contains("engine simt"), "{validated}");
    }

    #[test]
    fn cpu_profile_summary_reports_levels() {
        let mtx = temp("prof_cpu.mtx");
        run(&args(&["gen", "smallworld", "-o", mtx.to_str().unwrap()])).unwrap();
        let out = run(&args(&["bc", mtx.to_str().unwrap(), "--profile-summary"])).unwrap();
        assert!(out.contains("engine"), "{out}");
        assert!(out.contains("level"), "{out}");
    }

    #[test]
    fn profile_rejects_unsupported_modes() {
        let mtx = temp("prof_bad.mtx");
        run(&args(&["gen", "smallworld", "-o", mtx.to_str().unwrap()])).unwrap();
        assert!(run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--approx",
            "0.2",
            "--profile-summary"
        ]))
        .is_err());
        assert!(run(&args(&["validate-profile", "/nonexistent.json"])).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&args(&["bogus"])).is_err());
        assert!(run(&args(&["bc"])).is_err());
        assert!(run(&args(&["gen", "not-a-family"])).is_err());
        assert!(run(&args(&["bc", "/nonexistent.mtx"])).is_err());
        assert!(run(&args(&["stats", "/nonexistent.mtx", "--format", "nope"])).is_err());
    }

    /// `--updates`: the insert-then-delete stream lands back on the
    /// original path graph, so the final ranks must match a plain
    /// exact run.
    #[test]
    fn updates_stream_replays_and_lands_on_the_static_answer() {
        let mtx = temp("dyn.mtx");
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut f = std::fs::File::create(&mtx).unwrap();
        io::write_matrix_market(&g, &mut f).unwrap();
        let ups = temp("dyn.updates");
        std::fs::write(&ups, "# shortcut in, shortcut out\n+ 0 4\ncommit\n- 0 4\n").unwrap();
        let out = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--exact",
            "--updates",
            ups.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("2 update batch(es)"), "{out}");
        assert!(out.contains("batch   1: +1 -0"), "{out}");
        assert!(out.contains("batch   2: +0 -1"), "{out}");
        let ranks = |s: &str| s[s.find("top ").unwrap()..].to_string();
        let full = run(&args(&["bc", mtx.to_str().unwrap(), "--exact"])).unwrap();
        assert_eq!(ranks(&out), ranks(&full), "{out}\nvs\n{full}");
    }

    #[test]
    fn updates_profile_summary_reports_batches() {
        let mtx = temp("dyn_prof.mtx");
        run(&args(&["gen", "smallworld", "-o", mtx.to_str().unwrap()])).unwrap();
        let ups = temp("dyn_prof.updates");
        std::fs::write(&ups, "+ 0 40\ncommit\n- 0 40\n").unwrap();
        let out = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--samples",
            "16",
            "--updates",
            ups.to_str().unwrap(),
            "--profile-summary",
        ]))
        .unwrap();
        assert!(out.contains("updates: 2 batch(es)"), "{out}");
    }

    #[test]
    fn serve_smoke_round_trips_in_process() {
        let out = run(&args(&["serve", "--addr", "127.0.0.1:0", "--smoke"])).unwrap();
        assert!(out.contains("smoke: ok"), "{out}");
        assert!(out.contains("1 graph(s) loaded"), "{out}");
        assert!(run(&args(&["serve", "--workers", "0"])).is_err());
        assert!(run(&args(&["serve", "--cache-mb", "lots"])).is_err());
    }

    #[test]
    fn query_drives_a_live_server() {
        let mtx = temp("served.mtx");
        run(&args(&["gen", "smallworld", "-o", mtx.to_str().unwrap()])).unwrap();
        let handle = Server::bind(ServeConfig::default())
            .unwrap()
            .spawn()
            .unwrap();
        let addr = handle.addr().to_string();
        let q = |rest: &[&str]| {
            let mut a = args(&["query"]);
            a.extend(rest.iter().map(|s| s.to_string()));
            a.extend(args(&["--addr", &addr]));
            run(&a)
        };
        let loaded = q(&["load", "g", mtx.to_str().unwrap()]).unwrap();
        assert!(loaded.contains("\"fingerprint\""), "{loaded}");
        let top = q(&["topk", "g", "3"]).unwrap();
        assert!(top.contains("\"top\""), "{top}");
        let fam = q(&["load", "f", "smallworld", "--family", "--scale", "tiny"]).unwrap();
        assert!(fam.contains("\"n\""), "{fam}");
        let sub = q(&["subset", "g", "0", "7", "19"]).unwrap();
        assert!(sub.contains("\"bc\""), "{sub}");
        let upd = q(&["update", "g", "+0:40", "-0:40"]).unwrap();
        assert!(upd.contains("\"inserts\""), "{upd}");
        let status = q(&["status", "--addr", &addr]).unwrap();
        assert!(status.contains("\"graphs\""), "{status}");
        let metrics = q(&["metrics"]).unwrap();
        assert!(metrics.contains("turbobc-profile-v1"), "{metrics}");
        let err = q(&["full", "ghost"]).unwrap_err();
        assert!(err.contains("no such graph"), "{err}");
        assert!(q(&["update", "g", "0:4"]).is_err());
        assert!(q(&["update", "g"]).is_err());
        assert!(q(&["bogus-kind"]).is_err());
        handle.shutdown();
        assert!(run(&args(&["query", "status", "--addr", &addr])).is_err());
    }

    #[test]
    fn updates_rejects_bad_streams_and_mode_mixes() {
        let mtx = temp("dyn_bad.mtx");
        run(&args(&["gen", "smallworld", "-o", mtx.to_str().unwrap()])).unwrap();
        let ups = temp("dyn_bad.updates");
        std::fs::write(&ups, "+ 0 1\n+ 1 bogus\n").unwrap();
        let err = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--updates",
            ups.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("line 2:"), "{err}");
        std::fs::write(&ups, "+ 0 1\n").unwrap();
        for bad in ["--simt", "--approx"] {
            let mut a = args(&[
                "bc",
                mtx.to_str().unwrap(),
                "--updates",
                ups.to_str().unwrap(),
            ]);
            a.push(bad.to_string());
            if bad == "--approx" {
                a.push("0.2".to_string());
            }
            let err = run(&a).unwrap_err();
            assert!(err.contains("--updates is not supported"), "{err}");
        }
        let err = run(&args(&[
            "bc",
            mtx.to_str().unwrap(),
            "--updates",
            "/nonexistent.updates",
        ]))
        .unwrap_err();
        assert!(err.contains("/nonexistent.updates"), "{err}");
    }
}

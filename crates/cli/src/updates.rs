//! Update-stream files for `turbobc bc --updates FILE`.
//!
//! The stream is a line-oriented text format mirroring the repo's other
//! hardened readers (see `turbobc_graph::io`): every diagnostic carries
//! the 1-based line number, and endpoints are validated against both the
//! `u32` index domain and the loaded graph's vertex count before any
//! update reaches the solver.
//!
//! ```text
//! # comments and blank lines are skipped
//! + 0 7        insert edge 0 – 7
//! - 3 4        delete edge 3 – 4
//! commit       apply everything staged since the last commit as one batch
//! ```
//!
//! A trailing group of updates without a final `commit` is applied as a
//! last implicit batch, so streams produced by `echo`-style tooling do
//! not silently drop their tail.

use turbobc::EdgeUpdate;

/// Parses a whole update stream into `commit`-delimited batches.
///
/// `n` is the vertex count of the already-loaded graph; endpoints are
/// range-checked here so errors point at the offending line rather than
/// at an opaque batch index inside the solver.
pub fn parse_update_stream(text: &str, n: usize) -> Result<Vec<Vec<EdgeUpdate>>, String> {
    let mut batches = Vec::new();
    let mut staged: Vec<EdgeUpdate> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let op = fields.next().expect("non-empty trimmed line has a field");
        match op {
            "commit" => {
                if fields.next().is_some() {
                    return Err(format!("line {line_no}: `commit` takes no arguments"));
                }
                if staged.is_empty() {
                    return Err(format!("line {line_no}: `commit` with no staged updates"));
                }
                batches.push(std::mem::take(&mut staged));
            }
            "+" | "-" => {
                let (u, v) = endpoints_of(&mut fields, line_no, n)?;
                if fields.next().is_some() {
                    return Err(format!(
                        "line {line_no}: trailing tokens after `{op} {u} {v}`"
                    ));
                }
                staged.push(if op == "+" {
                    EdgeUpdate::Insert(u, v)
                } else {
                    EdgeUpdate::Delete(u, v)
                });
            }
            other => {
                return Err(format!(
                    "line {line_no}: unknown op `{other}` (expected `+`, `-`, `commit` or `#`)"
                ));
            }
        }
    }
    if !staged.is_empty() {
        batches.push(staged);
    }
    Ok(batches)
}

/// Reads two endpoints from the rest of a `+`/`-` line, enforcing the
/// `u32` domain, the graph dimension, and the no-self-loop rule.
fn endpoints_of<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
    n: usize,
) -> Result<(u32, u32), String> {
    let mut one = |what: &str| -> Result<u32, String> {
        let tok = fields
            .next()
            .ok_or_else(|| format!("line {line_no}: missing {what} endpoint"))?;
        tok.parse::<u32>()
            .map_err(|_| format!("line {line_no}: bad {what} endpoint `{tok}` (want a u32)"))
    };
    let u = one("source")?;
    let v = one("target")?;
    for e in [u, v] {
        if e as usize >= n {
            return Err(format!(
                "line {line_no}: endpoint {e} out of range for {n} vertices"
            ));
        }
    }
    if u == v {
        return Err(format!("line {line_no}: self-loop {u} -> {v} rejected"));
    }
    Ok((u, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_batches_split_on_commit() {
        let text = "# header\n+ 0 1\n- 2 3\ncommit\n\n+ 4 5\n";
        let batches = parse_update_stream(text, 6).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(
            batches[0],
            vec![EdgeUpdate::Insert(0, 1), EdgeUpdate::Delete(2, 3)]
        );
        assert_eq!(batches[1], vec![EdgeUpdate::Insert(4, 5)]);
    }

    #[test]
    fn empty_and_comment_only_streams_yield_no_batches() {
        assert!(parse_update_stream("", 4).unwrap().is_empty());
        assert!(parse_update_stream("# a\n\n  \n# b\n", 4)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn errors_carry_the_line_number() {
        let cases: &[(&str, &str)] = &[
            ("+ 0 1\nfrob 1 2\n", "line 2: unknown op `frob`"),
            ("+ 0\n", "line 1: missing target endpoint"),
            ("- 0 x\n", "line 1: bad target endpoint `x`"),
            (
                "+ 0 99\n",
                "line 1: endpoint 99 out of range for 4 vertices",
            ),
            ("+ 4294967296 0\n", "line 1: bad source endpoint"),
            ("+ 2 2\n", "line 1: self-loop 2 -> 2 rejected"),
            ("+ 0 1 9\n", "line 1: trailing tokens"),
            ("+ 0 1\ncommit now\n", "line 2: `commit` takes no arguments"),
            ("commit\n", "line 1: `commit` with no staged updates"),
        ];
        for (text, want) in cases {
            let err = parse_update_stream(text, 4).unwrap_err();
            assert!(err.contains(want), "{text:?}: got {err:?}, want {want:?}");
        }
    }

    #[test]
    fn negative_endpoints_fail_the_u32_guard() {
        let err = parse_update_stream("+ -1 2\n", 4).unwrap_err();
        assert!(err.contains("bad source endpoint `-1`"), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Fuzz-style battery: the parser must never panic on
        /// arbitrary bytes, and whatever it accepts must satisfy the
        /// documented invariants (every endpoint in range, no
        /// self-loops, no empty batch).
        #[test]
        fn arbitrary_bytes_never_panic(
            bytes in proptest::collection::vec(any::<u8>(), 0..200),
            n in 0usize..50,
        ) {
            let text = String::from_utf8_lossy(&bytes);
            if let Ok(batches) = parse_update_stream(&text, n) {
                for batch in &batches {
                    prop_assert!(!batch.is_empty());
                    for up in batch {
                        let (u, v) = up.endpoints();
                        prop_assert!((u as usize) < n && (v as usize) < n);
                        prop_assert_ne!(u, v);
                    }
                }
            }
        }

        /// Structured round-trip: render a random stream of
        /// well-formed ops and commits, parse it back, and check the
        /// batch structure matches what was rendered. (`v = (u + d)
        /// mod 8` with `d != 0` keeps the generator self-loop-free.)
        #[test]
        fn well_formed_streams_round_trip(
            raw in proptest::collection::vec(
                proptest::collection::vec((0u32..8, 1u32..8, any::<bool>()), 1..6),
                0..5,
            ),
        ) {
            let batches: Vec<Vec<EdgeUpdate>> = raw
                .iter()
                .map(|batch| {
                    batch
                        .iter()
                        .map(|&(u, d, ins)| {
                            let v = (u + d) % 8;
                            if ins {
                                EdgeUpdate::Insert(u, v)
                            } else {
                                EdgeUpdate::Delete(u, v)
                            }
                        })
                        .collect()
                })
                .collect();
            let mut text = String::from("# generated\n");
            for batch in &batches {
                for up in batch {
                    let (u, v) = up.endpoints();
                    let op = if matches!(up, EdgeUpdate::Insert(..)) { '+' } else { '-' };
                    text.push_str(&format!("{op} {u} {v}\n"));
                }
                text.push_str("commit\n");
            }
            prop_assert_eq!(parse_update_stream(&text, 8).unwrap(), batches);
        }
    }
}

//! `turbobc` — command-line betweenness centrality.
//!
//! ```text
//! turbobc stats   graph.mtx
//! turbobc bc      graph.mtx --top 10 --samples 256
//! turbobc bc      edges.txt --format edges --directed --exact
//! turbobc edge-bc graph.mtx --top 10
//! turbobc gen     mycielskian15 --scale tiny -o standin.mtx
//! turbobc convert graph.mtx --format edges -o graph.txt
//! turbobc list
//! ```

use std::process::ExitCode;

mod cli;
mod updates;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("turbobc: {msg}");
            eprintln!("{}", cli::USAGE);
            ExitCode::from(2)
        }
    }
}

//! Weighted betweenness centrality — the Brandes (2001) generalisation,
//! with a **Δ-stepping** forward stage (Meyer & Sanders), as the natural
//! extension of the paper's unweighted pipeline.
//!
//! The unweighted Algorithm 1 is level-synchronous: each BFS level is
//! one SpMV "round". Δ-stepping is its weighted analogue — vertices
//! settle in distance buckets of width Δ, and each bucket phase is a
//! round of parallel relaxations (what a GPU port would launch as
//! kernels). After the distances are fixed, path counts `σ` and
//! dependencies `δ` are computed by sweeping vertices in (reverse)
//! distance order over *tight* arcs (`dist(u) + w(u,v) = dist(v)`),
//! mirroring the unweighted backward stage with distance ranks in place
//! of BFS depths.

use crate::result::RunStats;
use std::time::Instant;
use turbobc_graph::weighted::WeightedGraph;
use turbobc_graph::VertexId;
use turbobc_sparse::Csr;

/// Tolerance for tight-arc detection.
const EPS: f64 = 1e-12;

/// Options for the weighted solver.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeightedBcOptions {
    /// Bucket width Δ. `None` picks the mean arc weight — the standard
    /// heuristic balancing bucket count against re-relaxations.
    pub delta: Option<f64>,
}

/// Weighted-BC output.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedBcResult {
    /// BC score per vertex.
    pub bc: Vec<f64>,
    /// Distances from the last processed source.
    pub dist: Vec<f64>,
    /// Number of Δ-buckets processed for the last source (the weighted
    /// analogue of the BFS depth `d`).
    pub buckets: usize,
    /// Run statistics.
    pub stats: RunStats,
}

/// Δ-stepping single-source shortest paths. Returns per-vertex distances
/// (`f64::INFINITY` = unreachable) and the number of bucket phases.
pub fn sssp_delta_stepping(
    csr: &Csr,
    weights: &[f64],
    source: VertexId,
    delta: f64,
) -> (Vec<f64>, usize) {
    assert!(delta > 0.0, "delta must be positive");
    let n = csr.n_rows();
    let mut dist = vec![f64::INFINITY; n];
    if n == 0 {
        return (dist, 0);
    }
    // buckets[b] holds vertices with tentative dist in [bΔ, (b+1)Δ);
    // entries go stale when a vertex improves — validated on pop.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new()];
    let bucket_of = |d: f64, delta: f64| (d / delta) as usize;
    let relax = |dist: &mut Vec<f64>, buckets: &mut Vec<Vec<VertexId>>, v: VertexId, cand: f64| {
        if cand + EPS < dist[v as usize] {
            dist[v as usize] = cand;
            let b = bucket_of(cand, delta);
            if b >= buckets.len() {
                buckets.resize(b + 1, Vec::new());
            }
            buckets[b].push(v);
        }
    };
    relax(&mut dist, &mut buckets, source, 0.0);

    let mut phases = 0usize;
    let mut b = 0usize;
    while b < buckets.len() {
        // Light-edge phases: settle the bucket to a fixed point.
        let mut settled_here: Vec<VertexId> = Vec::new();
        loop {
            let batch: Vec<VertexId> = std::mem::take(&mut buckets[b]);
            if batch.is_empty() {
                break;
            }
            phases += 1;
            for &v in &batch {
                let dv = dist[v as usize];
                if bucket_of(dv, delta) != b {
                    continue; // stale entry
                }
                settled_here.push(v);
                let lo = csr.row_ptr()[v as usize];
                for (k, &u) in csr.row(v as usize).iter().enumerate() {
                    let w = weights[lo + k];
                    if w < delta {
                        relax(&mut dist, &mut buckets, u, dv + w);
                    }
                }
            }
        }
        // Heavy edges once per settled vertex.
        for &v in &settled_here {
            let dv = dist[v as usize];
            let lo = csr.row_ptr()[v as usize];
            for (k, &u) in csr.row(v as usize).iter().enumerate() {
                let w = weights[lo + k];
                if w >= delta {
                    relax(&mut dist, &mut buckets, u, dv + w);
                }
            }
        }
        b += 1;
    }
    (dist, phases)
}

/// Accumulates one source's weighted-BC contribution into `bc`.
/// Returns `(dist, bucket_phases)`.
fn accumulate(
    csr: &Csr,
    weights: &[f64],
    source: VertexId,
    delta: f64,
    scale: f64,
    bc: &mut [f64],
) -> (Vec<f64>, usize) {
    let n = csr.n_rows();
    let (dist, phases) = sssp_delta_stepping(csr, weights, source, delta);

    // Vertices in increasing-distance order (reachable only).
    let mut order: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| dist[v as usize].is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        dist[a as usize]
            .total_cmp(&dist[b as usize])
            .then_with(|| a.cmp(&b))
    });

    // σ sweep over tight arcs in distance order.
    let mut sigma = vec![0.0f64; n];
    sigma[source as usize] = 1.0;
    for &v in &order {
        let dv = dist[v as usize];
        let sv = sigma[v as usize];
        if sv == 0.0 {
            continue;
        }
        let lo = csr.row_ptr()[v as usize];
        for (k, &u) in csr.row(v as usize).iter().enumerate() {
            if (dv + weights[lo + k] - dist[u as usize]).abs() <= EPS {
                sigma[u as usize] += sv;
            }
        }
    }

    // δ sweep in reverse distance order.
    let mut dlt = vec![0.0f64; n];
    for &v in order.iter().rev() {
        let dv = dist[v as usize];
        let lo = csr.row_ptr()[v as usize];
        let mut acc = 0.0;
        for (k, &u) in csr.row(v as usize).iter().enumerate() {
            if (dv + weights[lo + k] - dist[u as usize]).abs() <= EPS && sigma[u as usize] > 0.0 {
                acc += sigma[v as usize] / sigma[u as usize] * (1.0 + dlt[u as usize]);
            }
        }
        dlt[v as usize] = acc;
        if v != source {
            bc[v as usize] += acc * scale;
        }
    }
    (dist, phases)
}

fn auto_delta(weights: &[f64]) -> f64 {
    if weights.is_empty() {
        1.0
    } else {
        (weights.iter().sum::<f64>() / weights.len() as f64).max(f64::MIN_POSITIVE)
    }
}

/// Weighted BC contribution of one source.
///
/// ```
/// use turbobc::weighted::{weighted_bc_single_source, WeightedBcOptions};
/// use turbobc_graph::weighted::WeightedGraph;
///
/// // A heavy direct edge 0-2 routes shortest paths through vertex 1.
/// let g = WeightedGraph::from_edges(3, false, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 9.0)]);
/// let r = weighted_bc_single_source(&g, 0, WeightedBcOptions::default());
/// assert!(r.bc[1] > 0.0);
/// ```
pub fn weighted_bc_single_source(
    graph: &WeightedGraph,
    source: VertexId,
    options: WeightedBcOptions,
) -> WeightedBcResult {
    weighted_bc_sources(graph, &[source], options)
}

/// Exact weighted BC over all sources.
pub fn weighted_bc_exact(graph: &WeightedGraph, options: WeightedBcOptions) -> WeightedBcResult {
    let sources: Vec<VertexId> = (0..graph.n() as VertexId).collect();
    weighted_bc_sources(graph, &sources, options)
}

/// Weighted BC over an explicit source set. Sources are processed in
/// parallel batches (each task owns its scratch; contributions are
/// summed), matching the unweighted solver's exact-BC path.
pub fn weighted_bc_sources(
    graph: &WeightedGraph,
    sources: &[VertexId],
    options: WeightedBcOptions,
) -> WeightedBcResult {
    use rayon::prelude::*;
    let start = Instant::now();
    let (csr, weights) = graph.to_weighted_csr();
    let delta = options.delta.unwrap_or_else(|| auto_delta(&weights));
    let n = graph.n();
    let scale = graph.bc_scale();
    let mut stats = RunStats {
        sources: sources.len(),
        ..Default::default()
    };

    let chunk = sources
        .len()
        .div_ceil(rayon::current_num_threads().max(1))
        .max(1);
    let (bc, max_depth, total_levels) = sources
        .par_chunks(chunk)
        .map(|batch| {
            let mut local_bc = vec![0.0f64; n];
            let mut max_d = 0u32;
            let mut levels = 0u64;
            for &s in batch {
                let (_, phases) = accumulate(&csr, &weights, s, delta, scale, &mut local_bc);
                max_d = max_d.max(phases as u32);
                levels += phases as u64;
            }
            (local_bc, max_d, levels)
        })
        .reduce(
            || (vec![0.0f64; n], 0u32, 0u64),
            |(mut a, da, la), (b, db, lb)| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                (a, da.max(db), la + lb)
            },
        );
    stats.max_depth = max_depth;
    stats.total_levels = total_levels;

    // Deterministic surface vectors: rerun the last source.
    let (last_dist, last_buckets) = match sources.last() {
        Some(&s) => {
            let mut scratch = vec![0.0f64; n];
            let (dist, phases) = accumulate(&csr, &weights, s, delta, scale, &mut scratch);
            stats.last_reached = dist.iter().filter(|d| d.is_finite()).count();
            (dist, phases)
        }
        None => (vec![f64::INFINITY; n], 0),
    };
    stats.elapsed = start.elapsed();
    WeightedBcResult {
        bc,
        dist: last_dist,
        buckets: last_buckets,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::{weighted_brandes_all_sources, weighted_sssp};
    use turbobc_graph::{gen, Graph};

    fn random_weighted(n: usize, m: usize, directed: bool, seed: u64) -> WeightedGraph {
        WeightedGraph::random_weights(gen::gnm(n, m, directed, seed), 0.5, 8.0, seed ^ 9)
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        for seed in 0..6u64 {
            let wg = random_weighted(40, 160, seed % 2 == 0, seed);
            let (csr, w) = wg.to_weighted_csr();
            let s = wg.graph().default_source();
            let want = weighted_sssp(&wg, s);
            for delta in [0.3, 1.0, 5.0, 100.0] {
                let (got, _) = sssp_delta_stepping(&csr, &w, s, delta);
                for (v, (a, b)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                        "seed {seed} delta {delta} vertex {v}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_bc_matches_oracle() {
        for seed in 0..4u64 {
            let wg = random_weighted(30, 110, seed % 2 == 0, seed);
            let got = weighted_bc_exact(&wg, WeightedBcOptions::default());
            let want = weighted_brandes_all_sources(&wg);
            for (v, (a, b)) in got.bc.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-7, "seed {seed} bc[{v}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unit_weights_match_unweighted_turbobc() {
        let g = gen::small_world(60, 3, 0.2, 4);
        let unweighted = crate::BcSolver::new(&g, crate::BcOptions::default())
            .unwrap()
            .bc_exact()
            .unwrap();
        let wg = WeightedGraph::unit_weights(g);
        let weighted = weighted_bc_exact(&wg, WeightedBcOptions::default());
        for (a, b) in weighted.bc.iter().zip(&unweighted.bc) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn delta_choice_does_not_change_results() {
        let wg = random_weighted(30, 100, false, 11);
        let a = weighted_bc_exact(&wg, WeightedBcOptions { delta: Some(0.25) });
        let b = weighted_bc_exact(&wg, WeightedBcOptions { delta: Some(50.0) });
        for (x, y) in a.bc.iter().zip(&b.bc) {
            assert!((x - y).abs() < 1e-8);
        }
        // Smaller Δ means more bucket phases.
        assert!(a.buckets >= b.buckets, "{} vs {}", a.buckets, b.buckets);
    }

    #[test]
    fn bridge_vertex_dominates_weighted_bc() {
        // Two clusters joined through vertex 4 with light edges.
        let edges = [
            (0u32, 1, 1.0),
            (1, 2, 1.0),
            (0, 2, 1.0),
            (2, 4, 1.0),
            (4, 5, 1.0),
            (5, 6, 1.0),
            (6, 7, 1.0),
            (5, 7, 1.0),
        ];
        let wg = WeightedGraph::from_edges(8, false, &edges);
        let r = weighted_bc_exact(&wg, WeightedBcOptions::default());
        let max = r.bc.iter().cloned().fold(0.0, f64::max);
        assert!(
            r.bc[4] >= max - 1e-9,
            "bridge must top the ranking: {:?}",
            r.bc
        );
    }

    #[test]
    fn empty_and_singleton() {
        let wg = WeightedGraph::unit_weights(Graph::from_edges(1, true, &[]));
        let r = weighted_bc_exact(&wg, WeightedBcOptions::default());
        assert_eq!(r.bc, vec![0.0]);
        assert_eq!(r.stats.last_reached, 1);
    }
}

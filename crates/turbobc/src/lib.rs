//! **TurboBC** — memory-efficient betweenness centrality in the language
//! of linear algebra: a Rust reproduction of Artiles & Saeed, *TurboBC: A
//! Memory Efficient and Scalable GPU Based Betweenness Centrality
//! Algorithm in the Language of Linear Algebra* (ICPP Workshops '21).
//!
//! Betweenness centrality (BC) of a vertex `v` is the sum over all vertex
//! pairs `(s, t)` of the fraction of shortest `s → t` paths that pass
//! through `v`. The paper computes it with Brandes' two-stage algorithm
//! reformulated over the sparse adjacency matrix `A`:
//!
//! * a **forward** (BFS) stage advancing a frontier vector by masked
//!   sparse matrix–vector products `f_t ← Aᵀ f`, accumulating shortest-path
//!   counts `σ` and discovery depths `S`;
//! * a **backward** stage accumulating the one-sided dependencies `δ` by
//!   sweeping discovered depths in reverse, one SpMV (`δ_ut ← A δ_u`) plus
//!   two masked elementwise updates per depth.
//!
//! Three SpMV kernels are provided, mirroring the paper's §3:
//!
//! | kernel | storage | mapping | best for |
//! |---|---|---|---|
//! | [`Kernel::ScCooc`] | COOC | one thread per **edge** | graphs with a few extreme-degree vertices (mawi) |
//! | [`Kernel::ScCsc`] | CSC | one thread per **vertex** | low-degree *regular* graphs (meshes, roads) |
//! | [`Kernel::VeCsc`] | CSC | one **warp** per vertex | high-mean-degree *irregular* graphs (Mycielski, Kronecker) |
//!
//! and three execution engines:
//!
//! * [`Engine::Sequential`] — the paper's "(sequential)x" baseline: a
//!   plain sequential run of Algorithm 1;
//! * [`Engine::Parallel`] — a rayon data-parallel engine with the same
//!   kernel structure (the reproduction's stand-in for CUDA wall-clock
//!   measurements);
//! * [`BcSolver::run_simt`] — execution on the [`turbobc_simt`] GPU
//!   simulator, reporting device-memory footprint (the paper's `7n + m`
//!   words), per-kernel memory transactions, warp efficiency, modelled
//!   runtime and GLT.
//!
//! # Quick start
//!
//! ```
//! use turbobc::prelude::*;
//! use turbobc_graph::Graph;
//!
//! // An undirected path 0 – 1 – 2 – 3 – 4.
//! let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
//! let solver = BcSolver::new(&g, BcOptions::builder().build())?;
//! let result = solver.bc_exact()?;
//! assert_eq!(result.bc, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
//! # Ok::<(), turbobc::TurboBcError>(())
//! ```
//!
//! [`BcOptions::builder`] configures everything a run needs — kernel,
//! engine, recovery policy, checkpointing, simulated device — and the
//! solver's methods cover the whole algorithm family: [`BcSolver::approx`]
//! (sampled BC), [`BcSolver::edge_bc`] (Girvan–Newman edge scores),
//! [`BcSolver::closeness`], and [`BcSolver::ms_bfs`] (bit-parallel
//! multi-source BFS).
//!
//! # Observability
//!
//! Every engine reports through the [`observe`] subsystem: pass an
//! [`observe::Observer`] (usually an [`observe::ProfileObserver`]) to the
//! `*_observed` entry points and read back an [`observe::RunProfile`] —
//! per-level BFS trace events, merged kernel statistics, peak-memory
//! accounting against the paper's `7n + m` model, and the recovery
//! timeline — serialisable to the `turbobc-profile-v1` JSON schema.
//!
//! # Robustness
//!
//! Every public entry point returns [`Result<_, TurboBcError>`]; the
//! [`RecoveryPolicy`] in [`BcOptions`] controls how SIMT and multi-GPU
//! runs absorb device faults (transient-kernel retry, OOM degradation
//! veCSC → scCSC → scCOOC → CPU, lost-device requeue), and
//! [`CheckpointConfig`] adds checkpoint/resume to long multi-source
//! runs. What a run absorbed is logged in [`RunStats::recovery`].

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod approx;
mod batched;
pub mod checkpoint;
pub mod closeness;
pub mod dispatch;
pub mod dynamic;
pub mod edge;
mod error;
pub mod footprint;
pub mod frontier;
pub mod msbfs;
pub mod multi_gpu;
pub mod multi_gpu2d;
pub mod observe;
mod options;
mod par;
pub mod prep;
mod result;
mod seq;
mod simt_engine;
mod solver;
pub mod turbobfs;
pub mod weighted;

pub use simt_engine::{ms_bfs_simt, vecsc_reduction_ablation, MsBfsSimtOutcome};

#[allow(deprecated)] // the shims stay importable from the crate root
pub use approx::bc_approx;
pub use approx::{ApproxBcResult, ApproxOptions};
pub use checkpoint::CheckpointConfig;
pub use dispatch::{
    executor_for, CostModel, DispatchMode, Execution, ExecutionPlan, Executor, ExecutorKind,
    PlanSegment, PlanStrategy,
};
pub use dynamic::{
    graph_fingerprint, BcCache, DynamicBc, DynamicGraph, EdgeUpdate, UpdatePlan, UpdateReport,
};
pub use edge::EdgeBcResult;
#[allow(deprecated)] // the shims stay importable from the crate root
pub use edge::{edge_bc, edge_bc_sources};
pub use error::{CheckpointError, TurboBcError};
pub use frontier::{DirectionMode, Frontier, LevelDirection};
pub use options::{
    degrade, BatchWidth, BcOptions, BcOptionsBuilder, Engine, ExecutionPolicy, Kernel,
    KernelChoice, PrepMode, RecoveryPolicy,
};
pub use prep::PrepReport;
pub use result::{BcResult, RecoveryLog, RunStats, SimtReport};
pub use solver::BcSolver;
pub use turbobfs::{BfsRun, TurboBfs};

/// One-line import for the solver-centric API: `use turbobc::prelude::*;`.
///
/// Brings in the solver, its options builder, the result and error
/// types, and the observability layer's entry points.
pub mod prelude {
    pub use crate::checkpoint::CheckpointConfig;
    pub use crate::dispatch::{
        CostModel, DispatchMode, Execution, ExecutionPlan, ExecutorKind, PlanStrategy,
    };
    pub use crate::dynamic::{
        graph_fingerprint, BcCache, DynamicBc, DynamicGraph, EdgeUpdate, UpdateReport,
    };
    pub use crate::error::{CheckpointError, TurboBcError};
    pub use crate::frontier::{DirectionMode, Frontier, LevelDirection};
    pub use crate::observe::{
        NullObserver, Observer, ProfileObserver, RunProfile, TraceEvent, PROFILE_SCHEMA,
    };
    pub use crate::options::{
        BatchWidth, BcOptions, BcOptionsBuilder, Engine, ExecutionPolicy, Kernel, KernelChoice,
        PrepMode, RecoveryPolicy,
    };
    pub use crate::prep::PrepReport;
    pub use crate::result::{BcResult, RecoveryLog, RunStats, SimtReport};
    pub use crate::solver::BcSolver;
    pub use crate::turbobfs::{BfsRun, TurboBfs};
    pub use turbobc_simt::DeviceProps;
}

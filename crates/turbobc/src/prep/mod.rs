//! `turbobc::prep` — exact graph-reduction pipeline run before the BC
//! engines: component decomposition, iterated degree-1 folding, and
//! identical-vertex (type-I twin) compression, with closed-form BC
//! reconstruction. Every reduction is *exact*: reconstructed BC matches
//! the unreduced run to floating-point tolerance (and bitwise for the
//! components-only split).
//!
//! The pipeline order is fixed: components → fold to fixpoint → one twin
//! pass. Folding after twin compression would be unsound (a folded
//! pendant changes ω, which the twin correction terms already consumed),
//! so the pipeline stops after the twin pass.
//!
//! See `DESIGN.md` §14 for the full derivation of the multiplicity
//! weights (κ, Ω) threaded into the engines and the correction terms.

mod components;
mod fold;
mod twins;

use crate::options::PrepMode;
use turbobc_graph::{Graph, VertexId};

/// Multiplicity weights for one reduced component, consumed by the
/// weighted engine runs (see the invariant note in `turbobc_sparse::ops`).
/// Indexed by reduced-local vertex id.
pub(crate) struct RunWeights {
    /// `Ω(v)`: original vertices the reduced vertex stands for (its twin
    /// members plus all their folded subtrees) — the source-side weight.
    pub omega: Vec<f64>,
    /// Backward-sweep preseed `Ω(v) − 1`.
    pub seed: Vec<f64>,
    /// `κ(v)`: path-count multiplicity (twin class size).
    pub kappa: Vec<f64>,
    /// Sparse `(vertex, κ)` list for entries with `κ > 1`, for the
    /// forward frontier scaling.
    pub kappa_gt1: Vec<(u32, i64)>,
}

/// One reduced component under [`PrepMode::Full`].
pub(crate) struct ReducedComponent {
    /// The reduced graph the engine actually runs on.
    pub graph: Graph,
    /// Multiplicity weights for the weighted engine run.
    pub weights: RunWeights,
    /// Original vertex ids per reduced vertex (representative first).
    pub members: Vec<Vec<VertexId>>,
}

/// One component of the decomposition.
pub(crate) struct PrepComponent {
    /// Original vertex ids, ascending (the monotone compaction map).
    pub verts: Vec<VertexId>,
    /// The induced component graph in compacted ids.
    pub graph: Graph,
    /// Fold + twin reduction, present under [`PrepMode::Full`].
    pub reduced: Option<ReducedComponent>,
}

/// A resolved preprocessing plan. `None` from [`build_plan`] means the
/// solver runs the legacy path untouched (bit-identical to prep-less
/// builds).
pub(crate) struct PrepPlan {
    /// Summary statistics for observability and the CLI report.
    pub report: PrepReport,
    /// Component index per original vertex.
    pub comp_of: Vec<u32>,
    /// The components, ordered by smallest member vertex id.
    pub comps: Vec<PrepComponent>,
    /// Closed-form BC corrections per original vertex (all zero unless
    /// the plan is full). Already in the engines' undirected
    /// unordered-pair units — added without extra scale.
    pub corrections: Vec<f64>,
    /// Whether the fold/twin stages ran (vs components-only).
    pub full: bool,
}

/// Reduction statistics: what the pipeline removed and what the engines
/// actually run on.
#[derive(Debug, Clone, PartialEq)]
pub struct PrepReport {
    /// Resolved stage: `"off"`, `"components"`, or `"full"`.
    pub mode: &'static str,
    /// Original vertex count.
    pub n: usize,
    /// Original stored-arc count.
    pub m: usize,
    /// Weakly-connected components.
    pub components: usize,
    /// Vertices the engines run on after reduction.
    pub n_reduced: usize,
    /// Stored arcs the engines run on after reduction.
    pub m_reduced: usize,
    /// Degree-1 peel waves (max over components).
    pub fold_passes: usize,
    /// Vertices removed by folding (equals undirected edges removed).
    pub folded_vertices: usize,
    /// Vertices removed by folding in each wave, summed over components.
    pub fold_pass_removed: Vec<usize>,
    /// Twin classes with at least two members.
    pub twin_classes: usize,
    /// Vertices removed by twin compression.
    pub twin_members_removed: usize,
}

impl PrepReport {
    /// Fraction of the original `n + m` footprint the reduction removed
    /// (0.0 when nothing shrank, e.g. components-only splits).
    pub fn reduction_ratio(&self) -> f64 {
        let orig = (self.n + self.m) as f64;
        if orig == 0.0 {
            return 0.0;
        }
        1.0 - (self.n_reduced + self.m_reduced) as f64 / orig
    }

    fn identity(graph: &Graph) -> PrepReport {
        PrepReport {
            mode: "off",
            n: graph.n(),
            m: graph.m(),
            components: if graph.n() == 0 { 0 } else { 1 },
            n_reduced: graph.n(),
            m_reduced: graph.m(),
            fold_passes: 0,
            folded_vertices: 0,
            fold_pass_removed: Vec::new(),
            twin_classes: 0,
            twin_members_removed: 0,
        }
    }
}

/// Analyses `graph` under `mode` and returns the reduction report, even
/// when the resolved plan is a passthrough (the CLI `prep-stats` entry
/// point).
pub fn analyze(graph: &Graph, mode: PrepMode) -> PrepReport {
    match build_plan(graph, mode) {
        Some(plan) => plan.report,
        None => PrepReport::identity(graph),
    }
}

/// Resolves `mode` against the graph and builds the plan, or `None`
/// when the legacy (prep-less) path should run:
///
/// * [`PrepMode::Off`] — always `None`.
/// * [`PrepMode::Auto`] — full when the graph is undirected and at
///   least 1/8 of vertices (and ≥ 4) have degree 1; components-only
///   when disconnected; otherwise `None` (bit-identical legacy run).
/// * [`PrepMode::ComponentsOnly`] — `None` on connected graphs.
/// * [`PrepMode::Full`] — always plans on undirected graphs; degrades
///   to components-only on directed graphs (the fold/twin correction
///   terms are derived for the undirected pair convention).
pub(crate) fn build_plan(graph: &Graph, mode: PrepMode) -> Option<PrepPlan> {
    let n = graph.n();
    if n == 0 || matches!(mode, PrepMode::Off) {
        return None;
    }
    let full = match mode {
        PrepMode::Full => !graph.directed(),
        PrepMode::Auto => {
            if graph.directed() {
                false
            } else {
                let deg1 = graph.out_degrees().iter().filter(|&&d| d == 1).count();
                deg1 >= 4 && deg1 * 8 >= n
            }
        }
        _ => false,
    };
    let split = components::split(graph);
    let ncomp = split.comps.len();
    if !full && ncomp == 1 {
        return None;
    }

    let mut report = PrepReport::identity(graph);
    report.mode = if full { "full" } else { "components" };
    report.components = ncomp;
    let mut corrections = vec![0.0f64; n];
    let mut comps: Vec<PrepComponent> = Vec::with_capacity(ncomp);
    if full {
        report.n_reduced = 0;
        report.m_reduced = 0;
    }
    for cv in &split.comps {
        let induced = cv.graph(graph.directed());
        let reduced = if full {
            let csr = induced.to_csr();
            let adj: Vec<Vec<u32>> = (0..induced.n()).map(|v| csr.row(v).to_vec()).collect();
            let fold = fold::fold_degree_one(&adj);
            let twin = twins::collapse_twins(&adj, &fold);
            for (local, &orig) in cv.verts.iter().enumerate() {
                corrections[orig as usize] += fold.corr[local] + twin.corr[local];
            }
            report.folded_vertices += fold.removed;
            report.fold_passes = report.fold_passes.max(fold.passes);
            if report.fold_pass_removed.len() < fold.pass_removed.len() {
                report.fold_pass_removed.resize(fold.pass_removed.len(), 0);
            }
            for (i, &r) in fold.pass_removed.iter().enumerate() {
                report.fold_pass_removed[i] += r;
            }
            report.twin_classes += twin.classes;
            report.twin_members_removed += twin.removed;
            // Members of each reduced vertex, by subtree: the twin
            // member itself plus every vertex folded into its subtree.
            // Folded vertices are attributed by walking the fold's
            // parent relation implicitly: a folded vertex's mass is
            // carried by ω, and only the *member* ids are needed for
            // scatter (folded vertices receive engine-independent
            // closed-form BC via `corrections`).
            let members: Vec<Vec<VertexId>> = twin
                .members
                .iter()
                .map(|ms| ms.iter().map(|&l| cv.verts[l as usize]).collect())
                .collect();
            let r_n = members.len();
            let omega: Vec<f64> = twin.omega.iter().map(|&w| w as f64).collect();
            let seed: Vec<f64> = omega.iter().map(|&w| w - 1.0).collect();
            let kappa: Vec<f64> = twin.kappa.iter().map(|&k| k as f64).collect();
            let kappa_gt1: Vec<(u32, i64)> = twin
                .kappa
                .iter()
                .enumerate()
                .filter(|&(_, &k)| k > 1)
                .map(|(v, &k)| (v as u32, k as i64))
                .collect();
            let rgraph = Graph::from_edges(r_n, false, &twin.edges);
            report.n_reduced += r_n;
            report.m_reduced += rgraph.m();
            Some(ReducedComponent {
                graph: rgraph,
                weights: RunWeights {
                    omega,
                    seed,
                    kappa,
                    kappa_gt1,
                },
                members,
            })
        } else {
            None
        };
        comps.push(PrepComponent {
            verts: cv.verts.clone(),
            graph: induced,
            reduced,
        });
    }
    Some(PrepPlan {
        report,
        comp_of: split.comp_of,
        comps,
        corrections,
        full,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_and_connected_auto_are_passthrough() {
        let g = Graph::from_edges(4, false, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(build_plan(&g, PrepMode::Off).is_none());
        assert!(build_plan(&g, PrepMode::Auto).is_none());
        assert!(build_plan(&g, PrepMode::ComponentsOnly).is_none());
        assert_eq!(analyze(&g, PrepMode::Auto).mode, "off");
    }

    #[test]
    fn auto_splits_disconnected_graphs() {
        let g = Graph::from_edges(5, false, &[(0, 1), (2, 3), (3, 4), (2, 4)]);
        let plan = build_plan(&g, PrepMode::Auto).expect("components plan");
        assert!(!plan.full);
        assert_eq!(plan.report.mode, "components");
        assert_eq!(plan.report.components, 2);
        assert_eq!(plan.comps[0].verts, vec![0, 1]);
        assert_eq!(plan.comps[1].verts, vec![2, 3, 4]);
        assert!(plan.corrections.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn auto_goes_full_on_tree_heavy_graphs() {
        // Star K_{1,7}: 7 of 8 vertices have degree 1.
        let edges: Vec<(u32, u32)> = (1..8).map(|v| (0, v)).collect();
        let g = Graph::from_edges(8, false, &edges);
        let plan = build_plan(&g, PrepMode::Auto).expect("full plan");
        assert!(plan.full);
        assert_eq!(plan.report.mode, "full");
        assert_eq!(plan.report.folded_vertices, 7);
        assert_eq!(plan.report.n_reduced, 1);
        assert_eq!(plan.report.m_reduced, 0);
        assert!(plan.report.reduction_ratio() > 0.9);
        // BC of the centre: C(7,2) = 21 unordered pairs.
        assert_eq!(plan.corrections[0], 21.0);
    }

    #[test]
    fn full_degrades_to_components_on_directed_graphs() {
        let g = Graph::from_edges(4, true, &[(0, 1), (2, 3)]);
        let plan = build_plan(&g, PrepMode::Full).expect("components plan");
        assert!(!plan.full);
        assert_eq!(plan.report.mode, "components");
        // Connected directed graph: Full resolves to a passthrough.
        let g2 = Graph::from_edges(3, true, &[(0, 1), (1, 2), (2, 0)]);
        assert!(build_plan(&g2, PrepMode::Full).is_none());
    }

    #[test]
    fn full_plan_reduces_path_to_one_vertex_with_exact_corrections() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let plan = build_plan(&g, PrepMode::Full).expect("full plan");
        assert_eq!(plan.report.n_reduced, 1);
        assert_eq!(plan.corrections, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
        let rc = plan.comps[0].reduced.as_ref().unwrap();
        assert_eq!(rc.weights.omega, vec![5.0]);
        assert_eq!(rc.members, vec![vec![2]]);
    }

    #[test]
    fn full_plan_compresses_twins_with_multiplicities() {
        // C4: two twin classes of two.
        let g = Graph::from_edges(4, false, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let plan = build_plan(&g, PrepMode::Full).expect("full plan");
        assert_eq!(plan.report.twin_classes, 2);
        assert_eq!(plan.report.twin_members_removed, 2);
        assert_eq!(plan.report.n_reduced, 2);
        let rc = plan.comps[0].reduced.as_ref().unwrap();
        assert_eq!(rc.weights.kappa, vec![2.0, 2.0]);
        assert_eq!(rc.weights.kappa_gt1, vec![(0, 2), (1, 2)]);
        assert_eq!(rc.members, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(plan.corrections, vec![0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn report_aggregates_fold_passes_across_components() {
        // Two components: path-5 (2 waves) and a star (1 wave).
        let g = Graph::from_edges(
            9,
            false,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (5, 7), (5, 8)],
        );
        let plan = build_plan(&g, PrepMode::Full).expect("full plan");
        assert_eq!(plan.report.components, 2);
        assert_eq!(plan.report.fold_passes, 2);
        assert_eq!(plan.report.fold_pass_removed, vec![5, 2]);
        assert_eq!(plan.report.folded_vertices, 7);
    }
}

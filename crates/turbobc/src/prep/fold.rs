//! Iterated degree-1 folding: peels tree appendages off an undirected
//! component and records closed-form BC corrections.
//!
//! Folding a degree-1 vertex `c` into its unique live neighbour `p`
//! transfers `c`'s whole already-folded subtree (weight `ω(c) = 1 +
//! folded(c)`) onto `p`. Two correction families cover every shortest
//! path that never leaves the survivors' view:
//!
//! * **Inter-branch** — pairs with one endpoint in `c`'s subtree and the
//!   other in a subtree folded into `p` *earlier*: all their paths pass
//!   through `p`, so `corr(p) += ω(c) · folded(p)` *before* `folded(p)
//!   += ω(c)`.
//! * **Subtree-vs-outside** — at fixpoint, every pair with exactly one
//!   endpoint in the `folded(x)` vertices hanging off survivor `x`
//!   routes through `x`: `corr(x) += folded(x) · (N_c − 1 − folded(x))`
//!   where `N_c` is the component's original vertex count.
//!
//! Paths *inside* one folded subtree route through its interior folded
//! vertices; those are credited by the same two rules applied at the
//! moment each interior vertex was itself folded (its subtree-vs-outside
//! term is exact because a tree vertex separates its subtree from
//! everything else).

/// Outcome of folding one component to fixpoint (all ids component-local).
pub(super) struct FoldOutcome {
    /// Still present after folding.
    pub alive: Vec<bool>,
    /// Number of folded-away vertices whose subtree hangs off each
    /// survivor; for a folded vertex, its subtree size at the moment it
    /// was itself folded.
    pub folded: Vec<u64>,
    /// Closed-form BC correction per vertex, in the engines' undirected
    /// unordered-pair units (already halved — add without extra scale).
    pub corr: Vec<f64>,
    /// Peel waves until fixpoint.
    pub passes: usize,
    /// Total vertices removed.
    pub removed: usize,
    /// Vertices removed in each wave (each removal also deletes exactly
    /// one undirected edge, so this doubles as edges-per-pass).
    pub pass_removed: Vec<usize>,
}

impl FoldOutcome {
    /// Multiplicity `ω(v) = 1 + folded(v)` of a survivor: how many
    /// original vertices it stands for.
    pub fn omega(&self, v: usize) -> u64 {
        1 + self.folded[v]
    }
}

/// Peels degree-1 vertices (ascending id within each wave, waves to
/// fixpoint) off an undirected component given as sorted adjacency
/// lists. A 2-vertex component folds to a single vertex; a lone edge's
/// second endpoint survives.
pub(super) fn fold_degree_one(adj: &[Vec<u32>]) -> FoldOutcome {
    let n = adj.len();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut folded = vec![0u64; n];
    let mut corr = vec![0.0f64; n];
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| degree[v as usize] == 1).collect();
    let mut passes = 0usize;
    let mut removed = 0usize;
    let mut pass_removed: Vec<usize> = Vec::new();
    while !queue.is_empty() {
        passes += 1;
        let before = removed;
        let mut next: Vec<u32> = Vec::new();
        for &c in &queue {
            let c = c as usize;
            // A wave can drain both endpoints of a final edge; the
            // second one finds its degree already at 0 and survives.
            if !alive[c] || degree[c] != 1 {
                continue;
            }
            let p = adj[c]
                .iter()
                .map(|&u| u as usize)
                .find(|&u| alive[u])
                .expect("degree-1 vertex has a live neighbour");
            let omega_c = 1 + folded[c];
            corr[p] += (omega_c * folded[p]) as f64;
            folded[p] += omega_c;
            alive[c] = false;
            removed += 1;
            degree[p] -= 1;
            degree[c] = 0;
            if degree[p] == 1 {
                next.push(p as u32);
            }
        }
        next.sort_unstable();
        next.dedup();
        // Entries whose degree dropped past 1 within this wave (final
        // edges) would make a spurious empty wave.
        next.retain(|&v| alive[v as usize] && degree[v as usize] == 1);
        pass_removed.push(removed - before);
        queue = next;
    }
    // Subtree-vs-outside closure at fixpoint — for survivors *and* for
    // folded vertices themselves: a tree vertex separates its subtree
    // from the rest of the component, so this term is its entire BC.
    let total = n as u64;
    for v in 0..n {
        if folded[v] > 0 {
            corr[v] += (folded[v] * (total - 1 - folded[v])) as f64;
        }
    }
    FoldOutcome {
        alive,
        folded,
        corr,
        passes,
        removed,
        pass_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj_of(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    #[test]
    fn path_five_folds_to_one_vertex_with_exact_bc() {
        // Path 0-1-2-3-4: BC (unordered pairs) = [0, 3, 4, 3, 0].
        let adj = adj_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let out = fold_degree_one(&adj);
        assert_eq!(out.removed, 4);
        assert_eq!(out.alive.iter().filter(|&&a| a).count(), 1);
        // Wave order: {0,4} fold into {1,3}; {1,3} fold into 2.
        assert_eq!(out.passes, 2);
        assert_eq!(out.pass_removed, vec![2, 2]);
        assert_eq!(out.corr, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_center_gets_all_pairs() {
        // K_{1,4} with centre 0: BC(0) = C(4,2) = 6.
        let adj = adj_of(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let out = fold_degree_one(&adj);
        assert_eq!(out.passes, 1);
        assert!(out.alive[0]);
        assert_eq!(out.folded[0], 4);
        assert_eq!(out.corr[0], 6.0);
    }

    #[test]
    fn single_edge_leaves_one_survivor() {
        let adj = adj_of(2, &[(0, 1)]);
        let out = fold_degree_one(&adj);
        assert_eq!(out.removed, 1);
        assert!(out.alive[1] && !out.alive[0]);
        assert_eq!(out.corr, vec![0.0, 0.0]);
    }

    #[test]
    fn cycle_is_a_fixpoint() {
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let out = fold_degree_one(&adj);
        assert_eq!(out.removed, 0);
        assert_eq!(out.passes, 0);
    }

    #[test]
    fn broom_appendage_credits_handle_vertices() {
        // Triangle 0-1-2 with a 2-path handle 2-3-4.
        let adj = adj_of(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let out = fold_degree_one(&adj);
        assert_eq!(out.removed, 2);
        assert_eq!(out.folded[2], 2);
        // Vertex 3 separates {4} from {0,1,2,3}: corr = 1·3 = 3 (credited
        // at its own fold via the rules, landing in corr[3]).
        assert_eq!(out.corr[3], 3.0);
        // Vertex 2 separates {3,4} from {0,1}: corr = 2·2 = 4.
        assert_eq!(out.corr[2], 4.0);
    }
}

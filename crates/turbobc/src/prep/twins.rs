//! Identical-vertex compression: type-I twins (equal *open*
//! neighbourhoods, no edge between them — non-adjacency is automatic for
//! loop-free equal open neighbourhoods) collapse into one representative
//! carrying a path-count multiplicity `κ` and a vertex-mass `Ω`.
//!
//! Twin members are interchangeable endpoints. A member can still be an
//! intermediate for *outside* pairs — the weighted engine run (see the
//! invariant note in `sparse::ops`) recovers all of that mass exactly.
//! What a member can never be is an intermediate between two members of
//! its own class: member-to-member distance is exactly 2, through any
//! common neighbour. Those **cross-member** pairs within one class are
//! therefore the only mass the reduced run cannot see; their shortest
//! paths split evenly over the `D(w)` individual common-neighbour
//! vertices, and that mass is credited here in closed form.

use std::collections::HashMap;

use super::fold::FoldOutcome;

/// Outcome of compressing one folded component (ids component-local on
/// input, reduced-local on output).
pub(super) struct TwinOutcome {
    /// Component-local member ids per reduced vertex (representative
    /// first, ascending).
    pub members: Vec<Vec<u32>>,
    /// Path-count multiplicity per reduced vertex (class size).
    pub kappa: Vec<u64>,
    /// Vertex mass per reduced vertex: `Ω = Σ ω(member)`.
    pub omega: Vec<u64>,
    /// Reduced edge list (each undirected edge in both orientations or
    /// once — normalisation dedups).
    pub edges: Vec<(u32, u32)>,
    /// Classes with ≥ 2 members.
    pub classes: usize,
    /// Members removed by the compression (Σ (size − 1) over classes).
    pub removed: usize,
    /// Component-local closed-form corrections for the class-internal
    /// cross-member pairs, credited to every member of every reduced
    /// neighbour (undirected unordered-pair units).
    pub corr: Vec<f64>,
}

/// Groups live vertices of the folded component by open neighbourhood
/// and builds the reduced graph plus multiplicities. `adj` is the
/// component's sorted adjacency; `fold` the fixpoint fold outcome.
pub(super) fn collapse_twins(adj: &[Vec<u32>], fold: &FoldOutcome) -> TwinOutcome {
    let n = adj.len();
    // Live open neighbourhoods, sorted (adjacency is sorted; filtering
    // preserves order).
    let mut live_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n {
        if fold.alive[v] {
            live_adj[v] = adj[v]
                .iter()
                .copied()
                .filter(|&u| fold.alive[u as usize])
                .collect();
        }
    }
    // Class key = the neighbourhood itself; first (smallest) member is
    // the representative. Iteration over v ascending keeps everything
    // deterministic.
    let mut class_of_key: HashMap<&[u32], u32> = HashMap::new();
    let mut members: Vec<Vec<u32>> = Vec::new();
    let mut reduced_of = vec![u32::MAX; n];
    for v in 0..n {
        if !fold.alive[v] {
            continue;
        }
        let key: &[u32] = &live_adj[v];
        let r = *class_of_key.entry(key).or_insert_with(|| {
            members.push(Vec::new());
            (members.len() - 1) as u32
        });
        reduced_of[v] = r;
        members[r as usize].push(v as u32);
    }
    drop(class_of_key);
    let r_n = members.len();
    let mut kappa = vec![0u64; r_n];
    let mut omega = vec![0u64; r_n];
    for (r, ms) in members.iter().enumerate() {
        kappa[r] = ms.len() as u64;
        omega[r] = ms.iter().map(|&v| fold.omega(v as usize)).sum();
    }
    // Reduced edges via the representatives' neighbourhoods (identical
    // across members by construction).
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (r, ms) in members.iter().enumerate() {
        let rep = ms[0] as usize;
        for &u in &live_adj[rep] {
            edges.push((r as u32, reduced_of[u as usize]));
        }
    }
    // Class-internal cross-member pair mass. For class w with members
    // m_1..m_k (k ≥ 2): unordered vertex pairs spanning two different
    // members' subtrees number (Ω(w)² − Σ ω(m_i)²) / 2; their shortest
    // paths (length 2) split evenly over the D(w) individual common
    // neighbours — the entries of the representative's live adjacency,
    // each a distinct original vertex.
    let mut corr = vec![0.0f64; n];
    let mut classes = 0usize;
    let mut removed = 0usize;
    for (r, ms) in members.iter().enumerate() {
        if ms.len() < 2 {
            continue;
        }
        classes += 1;
        removed += ms.len() - 1;
        let sum_sq: u64 = ms
            .iter()
            .map(|&v| {
                let w = fold.omega(v as usize);
                w * w
            })
            .sum();
        let pairs_across = ((omega[r] * omega[r] - sum_sq) / 2) as f64;
        let rep = ms[0] as usize;
        // `live_adj[rep]` already lists the individual common-neighbour
        // vertices (it is the union of the complete neighbour classes),
        // so the per-vertex split divides by its length.
        let d_w = live_adj[rep].len() as u64;
        debug_assert!(d_w > 0, "twin class with an empty neighbourhood");
        let share = pairs_across / d_w as f64;
        for &x in &live_adj[rep] {
            corr[x as usize] += share;
        }
    }
    TwinOutcome {
        members,
        kappa,
        omega,
        edges,
        classes,
        removed,
        corr,
    }
}

#[cfg(test)]
mod tests {
    use super::super::fold::fold_degree_one;
    use super::*;

    fn adj_of(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    #[test]
    fn c4_collapses_opposite_corners() {
        // C4 0-1-2-3-0: classes {0,2} and {1,3}; BC = 0.5 each, all of
        // it class-internal (pairs (0,2) and (1,3), two paths each).
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let fold = fold_degree_one(&adj);
        let out = collapse_twins(&adj, &fold);
        assert_eq!(out.members, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(out.kappa, vec![2, 2]);
        assert_eq!(out.omega, vec![2, 2]);
        assert_eq!(out.classes, 2);
        assert_eq!(out.removed, 2);
        // Each class contributes 1 pair split over D = 2 members of the
        // neighbour class: 0.5 to each of that class's members.
        assert_eq!(out.corr, vec![0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn k23_sides_collapse_with_exact_internal_mass() {
        // K_{2,3}: side A = {0,1}, side B = {2,3,4}.
        // BC(A member) = 3/2, BC(B member) = 1/3 — all class-internal.
        let adj = adj_of(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        let fold = fold_degree_one(&adj);
        let out = collapse_twins(&adj, &fold);
        assert_eq!(out.members, vec![vec![0, 1], vec![2, 3, 4]]);
        // Class A: 1 cross pair over D = 3 → 1/3 to each of 2,3,4.
        // Class B: 3 cross pairs over D = 2 → 3/2 to each of 0,1.
        assert!((out.corr[0] - 1.5).abs() < 1e-12);
        assert!((out.corr[2] - 1.0 / 3.0).abs() < 1e-12);
        // One reduced edge, pushed once per live neighbour of each
        // representative: 3 from side A's rep + 2 from side B's rep
        // (normalisation dedups on graph construction).
        assert_eq!(out.edges.len(), 5);
    }

    #[test]
    fn twins_respect_fold_multiplicities() {
        // C4 with a pendant on vertex 0: 0 and 2 no longer twins after
        // folding? Pendant folds away, leaving C4 — but ω(0) = 2.
        let adj = adj_of(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)]);
        let fold = fold_degree_one(&adj);
        let out = collapse_twins(&adj, &fold);
        assert_eq!(out.members, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(out.omega, vec![3, 2]);
        // Class {0,2}: pairs across = (3² − (2²+1²))/2 = 2, D = 2 → 1.0
        // to each of 1 and 3. Class {1,3}: 1 pair over D = 2 → 0.5 each.
        assert!((out.corr[1] - 1.0).abs() < 1e-12);
        assert!((out.corr[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_neighbourhoods_stay_singleton() {
        // Path-shaped core (no fold: make it a cycle of 5, all distinct).
        let adj = adj_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let fold = fold_degree_one(&adj);
        let out = collapse_twins(&adj, &fold);
        assert_eq!(out.classes, 0);
        assert_eq!(out.removed, 0);
        assert_eq!(out.members.len(), 5);
        assert!(out.corr.iter().all(|&c| c == 0.0));
    }
}

//! Component decomposition: split a graph into its weakly-connected
//! components with monotone (order-preserving) vertex compaction.
//!
//! Cross-component dependencies are identically zero in Brandes'
//! accumulation, so BC distributes over components exactly. Because the
//! compaction map is monotone, every compacted CSC/CSR column keeps its
//! neighbour order and the per-component float summation order is
//! *bitwise* the order of the full-graph run.

use turbobc_graph::{connected_components, Graph, VertexId};

/// One component's original vertex ids (ascending) and its edge list in
/// compacted local ids.
pub(super) struct CompVerts {
    pub verts: Vec<VertexId>,
    pub edges: Vec<(VertexId, VertexId)>,
}

/// The full decomposition: per-vertex component index plus each
/// component's compacted vertex/edge lists.
pub(super) struct Split {
    pub comp_of: Vec<u32>,
    pub comps: Vec<CompVerts>,
}

/// Splits `graph` into components. Component order is by smallest
/// member vertex id, and within a component local ids follow ascending
/// original ids (the monotone compaction the bitwise argument needs).
pub(super) fn split(graph: &Graph) -> Split {
    let n = graph.n();
    let (label, count) = connected_components(graph);
    // `connected_components` labels each vertex with the smallest id in
    // its component, so ascending labels give a deterministic order.
    let mut comp_of = vec![0u32; n];
    let mut local_of = vec![0u32; n];
    let mut comps: Vec<CompVerts> = Vec::with_capacity(count);
    let mut index_of_label = vec![u32::MAX; n];
    for v in 0..n {
        let l = label[v] as usize;
        if index_of_label[l] == u32::MAX {
            index_of_label[l] = comps.len() as u32;
            comps.push(CompVerts {
                verts: Vec::new(),
                edges: Vec::new(),
            });
        }
        let c = index_of_label[l];
        comp_of[v] = c;
        let comp = &mut comps[c as usize];
        local_of[v] = comp.verts.len() as u32;
        comp.verts.push(v as VertexId);
    }
    for (u, v) in graph.edges() {
        let c = comp_of[u as usize] as usize;
        comps[c]
            .edges
            .push((local_of[u as usize], local_of[v as usize]));
    }
    Split { comp_of, comps }
}

impl CompVerts {
    /// Builds the compacted component graph (same directedness as the
    /// parent; arcs arrive in both orientations for undirected parents
    /// and collapse in normalisation).
    pub(super) fn graph(&self, directed: bool) -> Graph {
        Graph::from_edges(self.verts.len(), directed, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_orders_components_by_smallest_member() {
        // Components {0,2,4}, {1,3}, {5}.
        let g = Graph::from_edges(6, false, &[(0, 2), (2, 4), (1, 3)]);
        let s = split(&g);
        assert_eq!(s.comps.len(), 3);
        assert_eq!(s.comps[0].verts, vec![0, 2, 4]);
        assert_eq!(s.comps[1].verts, vec![1, 3]);
        assert_eq!(s.comps[2].verts, vec![5]);
        assert_eq!(s.comp_of, vec![0, 1, 0, 1, 0, 2]);
        let g0 = s.comps[0].graph(false);
        assert_eq!((g0.n(), g0.m()), (3, 4));
        let g2 = s.comps[2].graph(false);
        assert_eq!((g2.n(), g2.m()), (1, 0));
    }

    #[test]
    fn local_ids_are_monotone_in_original_ids() {
        let g = Graph::from_edges(5, true, &[(4, 0), (0, 2)]);
        let s = split(&g);
        assert_eq!(s.comps[0].verts, vec![0, 2, 4]);
        // Arc (4, 0) maps to local (2, 0); arc (0, 2) to local (0, 1).
        assert!(s.comps[0].edges.contains(&(2, 0)));
        assert!(s.comps[0].edges.contains(&(0, 1)));
    }
}

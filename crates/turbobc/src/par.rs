//! Rayon data-parallel execution of Algorithm 1 — the reproduction's
//! stand-in for the paper's CUDA wall-clock measurements.
//!
//! Each kernel keeps the GPU version's work mapping:
//!
//! * `scCOOC` — parallel over **edges**, accumulating the frontier and
//!   dependency products with atomics (the GPU kernel's `atomicAdd`);
//! * `scCSC` — parallel over **vertices** (columns), pure gather, no
//!   atomics;
//! * `veCSC` — on a CPU there are no warps, so the vector kernel shares
//!   the scalar column gather; the warp-level distinction is observable
//!   on the SIMT engine instead.
//!
//! The backward SpMV needs `A δ_u` (parent ← child). With CSC storage
//! that is a gather only when `A` is symmetric (undirected graphs —
//! which is how the paper gets away with one format); for directed
//! graphs the same CSC structure is used in a scatter with atomic f64
//! adds, preserving the one-format-per-run memory rule.

use crate::frontier::{DirectionEngine, DirectionMode, LevelDirection, LevelReport};
use crate::prep::RunWeights;
use crate::seq::SourceRun;
use rayon::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use turbobc_sparse::{Cooc, Csc};

/// Atomic saturating `i64 +=` via compare-exchange (shortest-path counts
/// saturate instead of wrapping; see `turbobc_sparse::Scalar`).
#[inline]
fn atomic_i64_sat_add(cell: &AtomicI64, val: i64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = cur.saturating_add(val);
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// Atomic `f64 +=` via compare-exchange on the bit pattern.
#[inline]
fn atomic_f64_add(cell: &AtomicU64, val: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + val).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// Parallel storage: a borrowed view of the run's one format, plus the
/// symmetry flag that decides the backward direction strategy.
pub(crate) enum ParStorage<'a> {
    Csc { csc: &'a Csc, symmetric: bool },
    Cooc(&'a Cooc),
}

impl ParStorage<'_> {
    pub(crate) fn n(&self) -> usize {
        match self {
            ParStorage::Csc { csc, .. } => csc.n_cols(),
            ParStorage::Cooc(c) => c.n_cols(),
        }
    }

    /// Parallel forward masked SpMV into `f_t` (atomic view).
    ///
    /// The CSC variant overwrites every entry of `f_t` (masked-out
    /// columns get 0), so no separate clear pass is needed; the COOC
    /// variant accumulates and relies on the previous level's fused
    /// update pass having reset `f_t` (the paper's kernel-fusion §3.4).
    fn forward(&self, f: &[i64], sigma: &[i64], f_t: &[AtomicI64]) {
        match self {
            ParStorage::Csc { csc, .. } => {
                f_t.par_iter().enumerate().for_each(|(j, out)| {
                    // Algorithm 3, one "thread" per column.
                    let mut sum = 0i64;
                    if sigma[j] == 0 {
                        for &r in csc.column(j) {
                            sum = sum.saturating_add(f[r as usize]);
                        }
                    }
                    out.store(sum, Ordering::Relaxed);
                });
            }
            ParStorage::Cooc(c) => {
                // Algorithm 2, one "thread" per edge.
                let rows = c.row_a();
                let cols = c.col_a();
                rows.par_iter().zip(cols.par_iter()).for_each(|(&r, &col)| {
                    let fv = f[r as usize];
                    if fv > 0 {
                        atomic_i64_sat_add(&f_t[col as usize], fv);
                    }
                });
            }
        }
    }

    /// Parallel backward SpMV: `δ_ut ← A δ_u`. The gather variant
    /// overwrites every entry; the scatter/COOC variants accumulate into
    /// a `δ_ut` that the fused accumulate pass resets each depth.
    fn backward(&self, delta_u: &[f64], delta_ut: &[AtomicU64]) {
        match self {
            ParStorage::Csc {
                csc,
                symmetric: true,
            } => {
                // Symmetric A: gather along columns, no atomics.
                delta_ut.par_iter().enumerate().for_each(|(j, out)| {
                    let mut sum = 0.0f64;
                    for &r in csc.column(j) {
                        sum += delta_u[r as usize];
                    }
                    out.store(sum.to_bits(), Ordering::Relaxed);
                });
            }
            ParStorage::Csc {
                csc,
                symmetric: false,
            } => {
                // Directed: scatter each column's value to its rows.
                (0..csc.n_cols()).into_par_iter().for_each(|j| {
                    let x = delta_u[j];
                    if x > 0.0 {
                        for &r in csc.column(j) {
                            atomic_f64_add(&delta_ut[r as usize], x);
                        }
                    }
                });
            }
            ParStorage::Cooc(c) => {
                let rows = c.row_a();
                let cols = c.col_a();
                rows.par_iter().zip(cols.par_iter()).for_each(|(&r, &col)| {
                    let x = delta_u[col as usize];
                    if x > 0.0 {
                        atomic_f64_add(&delta_ut[r as usize], x);
                    }
                });
            }
        }
    }
}

/// Parallel push step: scatter each frontier vertex's count along its
/// CSR row with atomic saturating adds — the same edge-parallel shape as
/// the COOC forward, restricted to the sparse frontier. Accumulates into
/// an `f_t` the previous level's fused update pass left zeroed.
fn push_forward_par(dir: &DirectionEngine, frontier: &[u32], f: &[i64], f_t: &[AtomicI64]) {
    let csr = dir.csr().expect("push chosen without a CSR structure");
    frontier.par_iter().for_each(|&u| {
        let fv = f[u as usize];
        if fv > 0 {
            for &v in csr.row(u as usize) {
                atomic_i64_sat_add(&f_t[v as usize], fv);
            }
        }
    });
}

/// Reusable per-source scratch for the rayon engine: the (atomic)
/// frontier vectors of the forward stage and the `δ` vectors of the
/// backward stage. Allocated once per run (or once per rayon chunk in
/// the across-sources path) and cleared per source — the atomics make
/// per-source reallocation especially wasteful since `Vec<AtomicI64>`
/// can't even use a memset-style fresh allocation.
pub(crate) struct ParScratch {
    f: Vec<i64>,
    f_t: Vec<AtomicI64>,
    frontier_list: Vec<u32>,
    delta: Vec<f64>,
    delta_u: Vec<f64>,
    delta_ut: Vec<AtomicU64>,
}

impl ParScratch {
    pub(crate) fn new(n: usize) -> Self {
        ParScratch {
            f: vec![0; n],
            f_t: (0..n).map(|_| AtomicI64::new(0)).collect(),
            frontier_list: Vec::new(),
            delta: vec![0.0; n],
            delta_u: vec![0.0; n],
            delta_ut: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Runs Algorithm 1 for one source on the rayon engine, accumulating
/// into `bc`.
#[allow(clippy::too_many_arguments)] // one arg per Algorithm-1 vector
pub(crate) fn bc_source_par(
    storage: &ParStorage,
    dir: &DirectionEngine,
    source: usize,
    scale: f64,
    bc: &mut [f64],
    sigma: &mut [i64],
    depths: &mut [u32],
    scratch: &mut ParScratch,
    weights: Option<&RunWeights>,
) -> SourceRun {
    bc_source_par_traced(
        storage,
        dir,
        source,
        scale,
        bc,
        sigma,
        depths,
        scratch,
        weights,
        &mut |_| {},
    )
}

/// [`bc_source_par`] with a per-level hook: `on_level` fires after each
/// level's fused frontier update with a [`LevelReport`], from the
/// driving thread (never from inside a rayon task).
///
/// A push level leaves masked-out entries of `f_t` untouched (they are
/// zero from the fused swap-reset) where a CSC pull overwrites them with
/// zero — the fused update pass sees identical values either way, so the
/// direction never changes `σ` or the discovered frontier.
#[allow(clippy::too_many_arguments)] // one arg per Algorithm-1 vector
pub(crate) fn bc_source_par_traced(
    storage: &ParStorage,
    dir: &DirectionEngine,
    source: usize,
    scale: f64,
    bc: &mut [f64],
    sigma: &mut [i64],
    depths: &mut [u32],
    scratch: &mut ParScratch,
    weights: Option<&RunWeights>,
    on_level: &mut dyn FnMut(LevelReport),
) -> SourceRun {
    let n = storage.n();
    debug_assert_eq!(bc.len(), n);
    sigma.par_iter_mut().for_each(|s| *s = 0);
    depths.par_iter_mut().for_each(|d| *d = 0);
    if n == 0 {
        return SourceRun {
            height: 0,
            reached: 0,
        };
    }

    let ParScratch {
        f,
        f_t,
        frontier_list,
        delta,
        delta_u,
        delta_ut,
    } = scratch;
    f.fill(0);
    for cell in f_t.iter() {
        cell.store(0, Ordering::Relaxed);
    }
    f[source] = 1;
    sigma[source] = 1;
    depths[source] = 1;
    let mut d = 1u32;
    let mut reached = 1usize;
    frontier_list.clear();
    let mut have_list = dir.needs_sparse();
    if have_list {
        frontier_list.push(source as u32);
    }
    let mut frontier_len = 1usize;
    loop {
        let frontier_edges = if have_list {
            dir.frontier_edges(frontier_list)
        } else {
            0
        };
        let direction = dir.choose(frontier_len, frontier_edges, have_list);
        match direction {
            LevelDirection::Push => push_forward_par(dir, frontier_list, f, f_t),
            LevelDirection::Pull => storage.forward(f, sigma, f_t),
        }
        d += 1;
        // Fused mask + σ/S update + f_t reset (lines 14 and 20–27 in one
        // pass), one "thread" per vertex.
        let next_d = d;
        let count: usize = {
            let f_t = &f_t;
            f.par_iter_mut()
                .zip(sigma.par_iter_mut())
                .zip(depths.par_iter_mut())
                .enumerate()
                .map(|(i, ((fi, si), di))| {
                    let ft = f_t[i].swap(0, Ordering::Relaxed);
                    if *si == 0 && ft != 0 {
                        *fi = ft;
                        *si = si.saturating_add(ft);
                        *di = next_d;
                        1
                    } else {
                        *fi = 0;
                        0
                    }
                })
                .sum()
        };
        if count == 0 {
            d -= 1;
            break;
        }
        if let Some(w) = weights {
            // Twin classes forward κ copies of every arriving path
            // (sparse list, applied from the driving thread).
            turbobc_sparse::ops::scale_frontier(f, &w.kappa_gt1);
        }
        reached += count;
        // Re-collect the sparse list only when the next level could go
        // push: a frontier already past the threshold pulls regardless.
        have_list = dir.needs_sparse()
            && (dir.mode() == DirectionMode::PushOnly || count <= dir.threshold());
        if have_list {
            frontier_list.clear();
            frontier_list.extend(
                f.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(i, _)| i as u32),
            );
        }
        frontier_len = count;
        on_level(LevelReport {
            depth: d,
            frontier: count,
            direction,
            frontier_edges,
        });
    }
    let height = d;

    // Backward stage: the float vectors come from the same reusable
    // scratch (the §3.4 int-before-float device rule lives in the SIMT
    // engine; host scratch stays resident across sources).
    match weights {
        Some(w) => delta.copy_from_slice(&w.seed),
        None => delta.fill(0.0),
    }
    for cell in delta_ut.iter() {
        cell.store(0, Ordering::Relaxed);
    }
    let mut depth = height;
    while depth > 1 {
        {
            let (dep, sig, del) = (&*depths, &*sigma, &delta);
            delta_u.par_iter_mut().enumerate().for_each(|(i, du)| {
                *du = if dep[i] == depth && sig[i] > 0 {
                    (1.0 + del[i]) / sig[i] as f64
                } else {
                    0.0
                };
            });
        }
        storage.backward(delta_u, delta_ut);
        {
            // Fused δ accumulate + δ_ut reset.
            let (dep, sig, dut) = (&*depths, &*sigma, &delta_ut);
            match weights {
                Some(w) => {
                    let kap = &w.kappa;
                    delta.par_iter_mut().enumerate().for_each(|(i, dl)| {
                        let v = f64::from_bits(dut[i].swap(0, Ordering::Relaxed));
                        if dep[i] == depth - 1 {
                            *dl += kap[i] * v * sig[i] as f64;
                        }
                    });
                }
                None => {
                    delta.par_iter_mut().enumerate().for_each(|(i, dl)| {
                        let v = f64::from_bits(dut[i].swap(0, Ordering::Relaxed));
                        if dep[i] == depth - 1 {
                            *dl += v * sig[i] as f64;
                        }
                    });
                }
            }
        }
        depth -= 1;
    }
    match weights {
        Some(w) => {
            let source_weight = w.omega[source];
            let (seed, kap) = (&w.seed, &w.kappa);
            bc.par_iter_mut().enumerate().for_each(|(v, b)| {
                if v != source {
                    *b += (delta[v] - seed[v]) / kap[v] * source_weight * scale;
                }
            });
        }
        None => {
            bc.par_iter_mut().enumerate().for_each(|(v, b)| {
                if v != source {
                    *b += delta[v] * scale;
                }
            });
        }
    }
    SourceRun { height, reached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::brandes_single_source;
    use turbobc_graph::Graph;

    fn run_dir(
        graph: &Graph,
        storage: ParStorage<'_>,
        source: usize,
        mode: DirectionMode,
    ) -> Vec<f64> {
        let n = graph.n();
        let mut bc = vec![0.0; n];
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        let dir = DirectionEngine::new(graph, mode);
        bc_source_par(
            &storage,
            &dir,
            source,
            graph.bc_scale(),
            &mut bc,
            &mut sigma,
            &mut depths,
            &mut ParScratch::new(n),
            None,
        );
        bc
    }

    fn run(graph: &Graph, storage: ParStorage<'_>, source: usize) -> Vec<f64> {
        run_dir(graph, storage, source, DirectionMode::Auto)
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < 1e-9, "bc[{i}] = {g}, want {w}");
        }
    }

    #[test]
    fn cooc_matches_oracle_on_directed_diamond() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_close(
            &run(&g, ParStorage::Cooc(&g.to_cooc()), 0),
            &brandes_single_source(&g, 0),
        );
    }

    #[test]
    fn csc_symmetric_gather_matches_oracle() {
        let g = Graph::from_edges(6, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let csc = g.to_csc();
        let storage = ParStorage::Csc {
            csc: &csc,
            symmetric: true,
        };
        assert_close(&run(&g, storage, 1), &brandes_single_source(&g, 1));
    }

    #[test]
    fn csc_directed_scatter_matches_oracle() {
        let g = Graph::from_edges(5, true, &[(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (1, 4)]);
        let csc = g.to_csc();
        let storage = ParStorage::Csc {
            csc: &csc,
            symmetric: false,
        };
        assert_close(&run(&g, storage, 0), &brandes_single_source(&g, 0));
    }

    #[test]
    fn every_direction_mode_matches_the_oracle() {
        let g = Graph::from_edges(
            7,
            false,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (1, 5),
                (5, 6),
            ],
        );
        let want = brandes_single_source(&g, 0);
        let csc = g.to_csc();
        let cooc = g.to_cooc();
        for mode in [
            DirectionMode::Auto,
            DirectionMode::PushOnly,
            DirectionMode::PullOnly,
        ] {
            let storage = ParStorage::Csc {
                csc: &csc,
                symmetric: true,
            };
            assert_close(&run_dir(&g, storage, 0, mode), &want);
            assert_close(&run_dir(&g, ParStorage::Cooc(&cooc), 0, mode), &want);
        }
    }

    #[test]
    fn empty_frontier_terminates() {
        let g = Graph::from_edges(3, true, &[(1, 2)]);
        let bc = run(&g, ParStorage::Cooc(&g.to_cooc()), 0);
        assert!(bc.iter().all(|&x| x == 0.0));
    }
}

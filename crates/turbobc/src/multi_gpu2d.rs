//! 2D (checkerboard) multi-GPU BC — the antidote to 1D partitioning's
//! replication floor (see [`crate::multi_gpu`]).
//!
//! A `q × q` device grid splits the vertex set into `q` blocks
//! `B_0 … B_{q−1}`; device `(i, j)` stores the adjacency block
//! `A[B_i, B_j]`. Per BFS level:
//!
//! 1. each diagonal owner `(i, i)` **broadcasts** its frontier segment
//!    `f[B_i]` along grid row `i` (`q − 1` transfers of `n/q`);
//! 2. every device computes an *unmasked* partial
//!    `Σ_{r ∈ B_i ∩ col} f[r]` for its column block (the extra unmasked
//!    work is the classic 2D trade-off — the σ-mask lives only at the
//!    owner);
//! 3. partials **reduce** along grid column `j` onto the owner `(j, j)`
//!    (`q − 1` transfers of `n/q`), which then runs the masked
//!    `bfs_update` on its σ/S/f segment.
//!
//! The backward stage mirrors this with `δ_u` (symmetric adjacency:
//! undirected graphs only — a directed 2D layout would store transposed
//! blocks as well). Exchange per level is `O(n/q · (q−1) · 2)` against
//! 1D's `O(n · (p−1))`, and no device holds a full-length vector.
//!
//! Layout caveat: this prototype keeps each block's vertex state (σ, S,
//! δ, …) on the grid **diagonal** — simple and correct, but it
//! concentrates `O(n/q)` state on `q` of the `q²` devices; the
//! off-diagonal workers hold only their structure block plus two
//! `n/q` segments. A production layout shards the owner state along
//! grid columns to spread that too.

use crate::error::TurboBcError;
use crate::multi_gpu::transfer_with_retry;
use crate::options::RecoveryPolicy;
use crate::result::RecoveryLog;
use crate::simt_engine::{kernels, retry_kernel};
use turbobc_graph::{Graph, VertexId};
use turbobc_simt::{
    DSlice, DSliceMut, Device, DeviceBuffer, DeviceError, DeviceProps, Interconnect, LaunchConfig,
    MemoryReport, WARP_SIZE,
};

/// Report from a 2D run.
#[derive(Debug, Clone)]
pub struct MultiGpu2dReport {
    /// Grid side `q` (device count = q²).
    pub grid: usize,
    /// Per-device memory snapshots (grid row-major).
    pub per_device_memory: Vec<MemoryReport>,
    /// Interconnect transfers.
    pub transfers: u64,
    /// Interconnect bytes.
    pub transfer_bytes: u64,
    /// Modelled compute time (max over devices).
    pub modelled_compute_s: f64,
    /// Modelled interconnect time.
    pub modelled_transfer_s: f64,
    /// Total modelled time.
    pub modelled_time_s: f64,
    /// What the (default) recovery policy absorbed — link retries and
    /// transient-kernel retries; device loss is a 1D-driver feature.
    pub recovery: RecoveryLog,
}

impl MultiGpu2dReport {
    /// Folds this report into a [`crate::observe::RunProfile`] (the 2D
    /// driver keeps per-device memory, not registries, so only the
    /// recovery timeline and run shape carry over).
    pub fn run_profile(&self, n: usize, m: usize, sources: usize) -> crate::observe::RunProfile {
        let mut profile = crate::observe::RunProfile {
            engine: "multi_gpu_2d".to_string(),
            kernel: "scCSC".to_string(),
            n,
            m,
            sources,
            attempts: 1,
            elapsed_s: self.modelled_time_s,
            ..Default::default()
        };
        profile.absorb_recovery_log(&self.recovery);
        profile
    }
}

/// Unmasked partial gather: `out[j] = Σ_{r ∈ column j} f[r]` over a
/// local CSC block (i64). The σ-mask is applied later at the owner.
fn partial_gather(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    f: &DSlice<'_, i64>,
    out: &mut DSliceMut<'_, i64>,
) -> Result<(), DeviceError> {
    let n = cp.len() - 1;
    dev.try_launch("fwd_partial", LaunchConfig::per_element(n), |w| {
        let mut cols = [None; WARP_SIZE];
        for (l, slot) in cols.iter_mut().enumerate() {
            *slot = w.global_id(l).filter(|&g| g < n);
        }
        let some = cols.iter().filter(|c| c.is_some()).count();
        if some == 0 {
            return;
        }
        let starts = w.gather(cp, &cols);
        let mut cols1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            cols1[l] = cols[l].map(|j| j + 1);
        }
        let ends = w.gather(cp, &cols1);
        let mut sums = [0i64; WARP_SIZE];
        let mut t = 0u32;
        loop {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if cols[l].is_some() {
                    let p = starts[l] + t;
                    if p < ends[l] {
                        idx[l] = Some(p as usize);
                    }
                }
            }
            let active = idx.iter().filter(|x| x.is_some()).count();
            if active == 0 {
                break;
            }
            let rs = w.gather(rows, &idx);
            let mut fidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                fidx[l] = idx[l].map(|_| rs[l] as usize);
            }
            let fv = w.gather(f, &fidx);
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    sums[l] = sums[l].saturating_add(fv[l]);
                }
            }
            w.alu(active);
            t += 1;
        }
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(j) = cols[l] {
                writes[l] = Some((j, sums[l]));
            }
        }
        w.scatter(out, &writes);
    })
    .map(|_| ())
}

/// f64 variant of [`partial_gather`] for the backward stage.
fn partial_gather_f64(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    x: &DSlice<'_, f64>,
    out: &mut DSliceMut<'_, f64>,
) -> Result<(), DeviceError> {
    let n = cp.len() - 1;
    dev.try_launch("bwd_partial", LaunchConfig::per_element(n), |w| {
        let mut cols = [None; WARP_SIZE];
        for (l, slot) in cols.iter_mut().enumerate() {
            *slot = w.global_id(l).filter(|&g| g < n);
        }
        let some = cols.iter().filter(|c| c.is_some()).count();
        if some == 0 {
            return;
        }
        let starts = w.gather(cp, &cols);
        let mut cols1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            cols1[l] = cols[l].map(|j| j + 1);
        }
        let ends = w.gather(cp, &cols1);
        let mut sums = [0.0f64; WARP_SIZE];
        let mut t = 0u32;
        loop {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if cols[l].is_some() {
                    let p = starts[l] + t;
                    if p < ends[l] {
                        idx[l] = Some(p as usize);
                    }
                }
            }
            let active = idx.iter().filter(|x| x.is_some()).count();
            if active == 0 {
                break;
            }
            let rs = w.gather(rows, &idx);
            let mut xidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                xidx[l] = idx[l].map(|_| rs[l] as usize);
            }
            let xv = w.gather(x, &xidx);
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    sums[l] += xv[l];
                }
            }
            w.alu(active);
            t += 1;
        }
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(j) = cols[l] {
                writes[l] = Some((j, sums[l]));
            }
        }
        w.scatter(out, &writes);
    })
    .map(|_| ())
}

/// One grid device: the `A[B_i, B_j]` block plus its buffers.
struct Cell {
    device: Device,
    cp: DeviceBuffer<u32>,
    rows: DeviceBuffer<u32>,
    /// Input-segment buffer (`f[B_i]` / `δ_u[B_i]` broadcast target).
    seg_i64: DeviceBuffer<i64>,
    seg_f64: DeviceBuffer<f64>,
    /// Partial output (length |B_j|).
    part_i64: DeviceBuffer<i64>,
    part_f64: DeviceBuffer<f64>,
}

/// Owner-side (diagonal) state for block `B_j`.
struct Owner {
    sigma: DeviceBuffer<i64>,
    depths: DeviceBuffer<u32>,
    bc: DeviceBuffer<f64>,
    f: DeviceBuffer<i64>,
    f_t: DeviceBuffer<i64>,
    delta: DeviceBuffer<f64>,
    delta_u: DeviceBuffer<f64>,
    delta_ut: DeviceBuffer<f64>,
    count: DeviceBuffer<i64>,
}

/// Runs undirected BC for `sources` on a `q × q` simulated device grid.
///
/// Link faults armed on the `link` (see
/// [`Interconnect::with_faults`]) are absorbed by retries under the
/// default [`RecoveryPolicy`]; per-device fault plans and lost-device
/// requeueing live in the 1D driver
/// ([`crate::multi_gpu::bc_multi_gpu_faulty`]).
pub fn bc_multi_gpu_2d(
    graph: &Graph,
    sources: &[VertexId],
    q: usize,
    props: DeviceProps,
    mut link: Interconnect,
) -> Result<(Vec<f64>, MultiGpu2dReport), TurboBcError> {
    if q == 0 {
        return Err(TurboBcError::NoDevices);
    }
    if graph.directed() {
        return Err(TurboBcError::DirectedUnsupported {
            what: "the 2D multi-GPU prototype",
        });
    }
    for &s in sources {
        if s as usize >= graph.n() {
            return Err(TurboBcError::InvalidSource {
                source: s,
                n: graph.n(),
            });
        }
    }
    let policy = RecoveryPolicy::default();
    let mut log = RecoveryLog::default();
    let n = graph.n();
    let csc = graph.to_csc();
    let scale = graph.bc_scale();
    // Equal-width vertex blocks.
    let block = n.div_ceil(q).max(1);
    let blocks: Vec<(usize, usize)> = (0..q)
        .map(|b| (b * block, ((b + 1) * block).min(n)))
        .collect();

    // Build grid cells: (i, j) holds A[B_i, B_j] with rows rebased to B_i.
    let mut cells: Vec<Cell> = Vec::with_capacity(q * q);
    for i in 0..q {
        let (rlo, rhi) = blocks[i];
        for j in 0..q {
            let (clo, chi) = blocks[j];
            let device = Device::new(props);
            let mut cp_host = Vec::with_capacity(chi - clo + 1);
            let mut rows_host: Vec<u32> = Vec::new();
            cp_host.push(0u32);
            for c in clo..chi {
                for &r in csc.column(c) {
                    let r = r as usize;
                    if (rlo..rhi).contains(&r) {
                        rows_host.push((r - rlo) as u32);
                    }
                }
                cp_host.push(rows_host.len() as u32);
            }
            let cp = device.alloc_from(&cp_host)?;
            let rows = device.alloc_from(&rows_host)?;
            let seg_i64 = device.alloc::<i64>(rhi - rlo)?;
            let seg_f64 = device.alloc::<f64>(rhi - rlo)?;
            let part_i64 = device.alloc::<i64>(chi - clo)?;
            let part_f64 = device.alloc::<f64>(chi - clo)?;
            cells.push(Cell {
                device,
                cp,
                rows,
                seg_i64,
                seg_f64,
                part_i64,
                part_f64,
            });
        }
    }
    // Diagonal owners.
    let mut owners: Vec<Owner> = Vec::with_capacity(q);
    for j in 0..q {
        let (lo, hi) = blocks[j];
        let len = hi - lo;
        let device = &cells[j * q + j].device;
        owners.push(Owner {
            sigma: device.alloc::<i64>(len)?,
            depths: device.alloc::<u32>(len)?,
            bc: device.alloc::<f64>(len)?,
            f: device.alloc::<i64>(len)?,
            f_t: device.alloc::<i64>(len)?,
            delta: device.alloc::<f64>(len)?,
            delta_u: device.alloc::<f64>(len)?,
            delta_ut: device.alloc::<f64>(len)?,
            count: device.alloc::<i64>(1)?,
        });
    }

    let seg_of = |v: usize| v / block;

    for &source in sources {
        if n == 0 {
            break;
        }
        // Init owner state.
        for (j, owner) in owners.iter_mut().enumerate() {
            let device = &cells[j * q + j].device;
            retry_kernel(&policy, &mut log.kernel_retries, || {
                kernels::clear(device, "clear_sigma", &mut owner.sigma.dslice_mut())
            })?;
            retry_kernel(&policy, &mut log.kernel_retries, || {
                kernels::clear(device, "clear_depths", &mut owner.depths.dslice_mut())
            })?;
            retry_kernel(&policy, &mut log.kernel_retries, || {
                kernels::clear(device, "clear_f", &mut owner.f.dslice_mut())
            })?;
        }
        {
            let sb = seg_of(source as usize);
            let local = source as usize - blocks[sb].0;
            owners[sb].f.host_mut()[local] = 1;
            owners[sb].sigma.host_mut()[local] = 1;
            owners[sb].depths.host_mut()[local] = 1;
        }

        let mut d = 1u32;
        loop {
            // 1) Broadcast f segments along grid rows.
            for i in 0..q {
                let f_host: Vec<i64> = owners[i].f.host().to_vec();
                for j in 0..q {
                    let cell = &mut cells[i * q + j];
                    if j != i && q > 1 {
                        transfer_with_retry(&mut link, f_host.len() as u64 * 8, &policy, &mut log)?;
                    }
                    cell.seg_i64.host_mut()[..f_host.len()].copy_from_slice(&f_host);
                }
            }
            // 2) Unmasked partials per cell.
            for i in 0..q {
                for j in 0..q {
                    let cell = &mut cells[i * q + j];
                    let (cp, rows, seg, part, device) = (
                        cell.cp.dslice(),
                        cell.rows.dslice(),
                        cell.seg_i64.dslice(),
                        &mut cell.part_i64,
                        &cell.device,
                    );
                    retry_kernel(&policy, &mut log.kernel_retries, || {
                        partial_gather(device, &cp, &rows, &seg, &mut part.dslice_mut())
                    })?;
                }
            }
            // 3) Reduce partials down each grid column onto the owner.
            let mut total_count = 0i64;
            for j in 0..q {
                let len = blocks[j].1 - blocks[j].0;
                let mut reduced = vec![0i64; len];
                for i in 0..q {
                    if i != j && q > 1 {
                        transfer_with_retry(&mut link, len as u64 * 8, &policy, &mut log)?;
                    }
                    let part = cells[i * q + j].part_i64.host();
                    for (acc, &x) in reduced.iter_mut().zip(part) {
                        *acc = acc.saturating_add(x);
                    }
                }
                owners[j].f_t.host_mut().copy_from_slice(&reduced);
                // 4) Masked update at the owner.
                owners[j].count.fill(0);
                let device = &cells[j * q + j].device;
                let owner = &mut owners[j];
                retry_kernel(&policy, &mut log.kernel_retries, || {
                    kernels::bfs_update(
                        device,
                        &mut owner.f_t.dslice_mut(),
                        &mut owner.sigma.dslice_mut(),
                        &mut owner.depths.dslice_mut(),
                        &mut owner.f.dslice_mut(),
                        d + 1,
                        &mut owner.count.dslice_mut(),
                    )
                })?;
                total_count += owner.count.host()[0];
            }
            if total_count == 0 {
                break;
            }
            d += 1;
        }
        let height = d;

        // Backward (symmetric gather over the same blocks).
        for (j, owner) in owners.iter_mut().enumerate() {
            let device = &cells[j * q + j].device;
            retry_kernel(&policy, &mut log.kernel_retries, || {
                kernels::clear(device, "clear_delta", &mut owner.delta.dslice_mut())
            })?;
        }
        let mut depth = height;
        while depth > 1 {
            // Seed δ_u at owners, broadcast along grid rows.
            for i in 0..q {
                let device = &cells[i * q + i].device;
                let owner = &mut owners[i];
                retry_kernel(&policy, &mut log.kernel_retries, || {
                    kernels::bwd_seed(
                        device,
                        &owner.depths.dslice(),
                        &owner.sigma.dslice(),
                        &owner.delta.dslice(),
                        depth,
                        &mut owner.delta_u.dslice_mut(),
                    )
                })?;
                let du_host: Vec<f64> = owner.delta_u.host().to_vec();
                for j in 0..q {
                    let cell = &mut cells[i * q + j];
                    if j != i && q > 1 {
                        transfer_with_retry(
                            &mut link,
                            du_host.len() as u64 * 8,
                            &policy,
                            &mut log,
                        )?;
                    }
                    cell.seg_f64.host_mut()[..du_host.len()].copy_from_slice(&du_host);
                }
            }
            // Partials + column reduction.
            for i in 0..q {
                for j in 0..q {
                    let cell = &mut cells[i * q + j];
                    let (cp, rows, seg, part, device) = (
                        cell.cp.dslice(),
                        cell.rows.dslice(),
                        cell.seg_f64.dslice(),
                        &mut cell.part_f64,
                        &cell.device,
                    );
                    retry_kernel(&policy, &mut log.kernel_retries, || {
                        partial_gather_f64(device, &cp, &rows, &seg, &mut part.dslice_mut())
                    })?;
                }
            }
            for j in 0..q {
                let len = blocks[j].1 - blocks[j].0;
                let mut reduced = vec![0.0f64; len];
                for i in 0..q {
                    if i != j && q > 1 {
                        transfer_with_retry(&mut link, len as u64 * 8, &policy, &mut log)?;
                    }
                    let part = cells[i * q + j].part_f64.host();
                    for (acc, &x) in reduced.iter_mut().zip(part) {
                        *acc += x;
                    }
                }
                owners[j].delta_ut.host_mut().copy_from_slice(&reduced);
                let device = &cells[j * q + j].device;
                let owner = &mut owners[j];
                retry_kernel(&policy, &mut log.kernel_retries, || {
                    kernels::bwd_accum(
                        device,
                        &owner.depths.dslice(),
                        &owner.sigma.dslice(),
                        &mut owner.delta_ut.dslice_mut(),
                        depth,
                        &mut owner.delta.dslice_mut(),
                    )
                })?;
            }
            depth -= 1;
        }
        for (j, owner) in owners.iter_mut().enumerate() {
            let (lo, hi) = blocks[j];
            let local_source = if (lo..hi).contains(&(source as usize)) {
                source as usize - lo
            } else {
                hi - lo // out of range = "not here"
            };
            let device = &cells[j * q + j].device;
            retry_kernel(&policy, &mut log.kernel_retries, || {
                kernels::bc_accum(
                    device,
                    &owner.delta.dslice(),
                    local_source,
                    scale,
                    &mut owner.bc.dslice_mut(),
                )
            })?;
        }
    }

    // Assemble.
    let mut bc = vec![0.0f64; n];
    for (j, owner) in owners.iter().enumerate() {
        let (lo, hi) = blocks[j];
        bc[lo..hi].copy_from_slice(owner.bc.host());
    }
    let per_device_memory: Vec<MemoryReport> = cells.iter().map(|c| c.device.memory()).collect();
    let modelled_compute_s = cells
        .iter()
        .map(|c| {
            let m = c.device.metrics();
            let t = c.device.timing();
            m.iter().map(|(_, s)| t.kernel_time_s(s)).sum::<f64>()
        })
        .fold(0.0f64, f64::max);
    let modelled_transfer_s = link.modelled_time_s();
    let report = MultiGpu2dReport {
        grid: q,
        per_device_memory,
        transfers: link.transfers(),
        transfer_bytes: link.bytes(),
        modelled_compute_s,
        modelled_transfer_s,
        modelled_time_s: modelled_compute_s + modelled_transfer_s,
        recovery: log,
    };
    Ok((bc, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::brandes_single_source;
    use turbobc_graph::gen;

    fn check(g: &Graph, q: usize) -> MultiGpu2dReport {
        let s = g.default_source();
        let (bc, report) =
            bc_multi_gpu_2d(g, &[s], q, DeviceProps::titan_xp(), Interconnect::pcie3()).unwrap();
        let want = brandes_single_source(g, s);
        for (v, (a, b)) in bc.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "q={q} bc[{v}]: {a} vs {b}");
        }
        report
    }

    #[test]
    fn matches_oracle_on_grids() {
        let g = gen::small_world(130, 3, 0.2, 7);
        for q in [1, 2, 3] {
            let r = check(&g, q);
            assert_eq!(r.grid, q);
        }
    }

    #[test]
    fn matches_oracle_on_disconnected_undirected() {
        let g = gen::gnm(90, 80, false, 4);
        check(&g, 2);
    }

    #[test]
    fn rejects_directed_graphs() {
        let g = gen::gnm(20, 60, true, 1);
        let err = bc_multi_gpu_2d(&g, &[0], 2, DeviceProps::titan_xp(), Interconnect::pcie3())
            .unwrap_err();
        assert!(matches!(err, TurboBcError::DirectedUnsupported { .. }));
    }

    #[test]
    fn rejects_empty_grid() {
        let g = gen::gnm(20, 60, false, 1);
        assert!(matches!(
            bc_multi_gpu_2d(&g, &[0], 0, DeviceProps::titan_xp(), Interconnect::pcie3()),
            Err(TurboBcError::NoDevices)
        ));
    }

    #[test]
    fn dropped_grid_exchanges_are_retried_bit_identically() {
        use turbobc_simt::FaultPlan;
        let g = gen::small_world(100, 3, 0.2, 2);
        let s = g.default_source();
        let (clean, _) =
            bc_multi_gpu_2d(&g, &[s], 2, DeviceProps::titan_xp(), Interconnect::pcie3()).unwrap();
        let link = Interconnect::pcie3().with_faults(FaultPlan::new(3).drop_transfer_at(1));
        let (bc, report) = bc_multi_gpu_2d(&g, &[s], 2, DeviceProps::titan_xp(), link).unwrap();
        assert_eq!(report.recovery.link_retries, 1);
        assert_eq!(bc, clean);
    }

    #[test]
    fn worker_cells_hold_no_full_length_vectors() {
        let g = gen::delaunay(1600, 8);
        let s = g.default_source();
        let (_, r1d) = crate::multi_gpu::bc_multi_gpu(
            &g,
            &[s],
            4,
            DeviceProps::titan_xp(),
            Interconnect::pcie3(),
        )
        .unwrap();
        // 2D at q = 2 (also 4 devices): the off-diagonal workers carry
        // only a structure block plus O(n/q) segments, unlike 1D where
        // *every* device carries full-length replicated vectors.
        let r2d = check(&g, 2);
        let max_1d = r1d.per_device_memory.iter().map(|m| m.peak).max().unwrap();
        let q = r2d.grid;
        let worker_max = r2d
            .per_device_memory
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx / q != idx % q)
            .map(|(_, m)| m.peak)
            .max()
            .unwrap();
        assert!(
            worker_max < max_1d,
            "2D workers must sit below the 1D replication floor: {worker_max} vs {max_1d}"
        );
        // At a 3x3 grid vs 9-way 1D the margin widens (worker segments
        // are n/q while 1D replicas stay at n).
        let (_, r1d9) = crate::multi_gpu::bc_multi_gpu(
            &g,
            &[s],
            9,
            DeviceProps::titan_xp(),
            Interconnect::pcie3(),
        )
        .unwrap();
        let r2d3 = check(&g, 3);
        let max_1d9 = r1d9.per_device_memory.iter().map(|m| m.peak).max().unwrap();
        let worker_max3 = r2d3
            .per_device_memory
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx / 3 != idx % 3)
            .map(|(_, m)| m.peak)
            .max()
            .unwrap();
        assert!(
            worker_max3 * 3 < max_1d9 * 2,
            "q=3 workers: {worker_max3} vs 1D p=9: {max_1d9}"
        );
    }

    #[test]
    fn exchange_is_cheaper_than_1d_at_equal_devices() {
        let g = gen::small_world(2000, 4, 0.1, 5);
        let s = g.default_source();
        let (_, r1d) = crate::multi_gpu::bc_multi_gpu(
            &g,
            &[s],
            4,
            DeviceProps::titan_xp(),
            Interconnect::pcie3(),
        )
        .unwrap();
        let r2d = check(&g, 2);
        assert!(
            r2d.transfer_bytes < r1d.transfer_bytes,
            "2D: {} vs 1D: {}",
            r2d.transfer_bytes,
            r1d.transfer_bytes
        );
    }
}

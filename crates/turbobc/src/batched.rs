//! Batched multi-source BC: a block of `b` sources per matrix sweep.
//!
//! The per-source engines (`seq`, `par`) traverse the sparse matrix once
//! per BFS level *per source*; the structure arrays are re-read `n` times
//! for exact BC even though they never change. This module processes `b`
//! sources at once instead (Solomonik et al.'s communication-efficient
//! SpMM formulation; GraphBLAST's masked-SpMM BC):
//!
//! * the frontier becomes an `n×b` **bit-sliced matrix** (`ceil(b/64)`
//!   u64 words per vertex, one lane per source — the multi-source
//!   generalisation of [`crate::frontier`]'s dense bitmask);
//! * `σ` and the depth vector become `n×b` **panels**;
//! * the forward stage is one masked SpMM per level
//!   ([`Csc::spmm_t_frontier`] / [`Cooc::spmm_t_frontier`] /
//!   [`Csr::spmm_t_frontier_push`] under the Beamer direction switch);
//! * the backward stage sweeps each depth once for all `b` lanes
//!   ([`Csc::spmm_panel`]) and folds the `δ` panel into the shared BC
//!   vector lane-by-lane, preserving the per-source summation order.
//!
//! The multi-source BFS of [`crate::msbfs`] is the `σ`-free special case
//! of this engine (bit matrix only, no panels).
//!
//! All scratch lives in one [`BatchScratch`] reused across blocks —
//! no per-source (or per-block) allocation churn.

use crate::frontier::{DirectionEngine, DirectionMode, LevelDirection, LevelReport};
use crate::options::Kernel;
use crate::seq::Storage;
use turbobc_sparse::{lane_words, ops, DeltaCsc};

/// The sparse operand a batched block sweeps: either one of the static
/// per-run storages (kernel-selected, as built by the solver) or a
/// [`DeltaCsc`] view of an updated graph — the delta-aware SpMM path
/// the dynamic layer's dirty-block recompute runs on without
/// materialising the post-update CSC. Delta runs are pull-only (the
/// view carries no CSR), which the caller enforces by pairing them
/// with a [`DirectionMode::PullOnly`] engine.
pub(crate) enum PanelMat<'a> {
    /// Kernel-selected static storage (the pre-dynamic behaviour).
    Static {
        /// The run's CSC or COOC structure.
        storage: &'a Storage,
        /// Which paper kernel variant sweeps it.
        kernel: Kernel,
    },
    /// Insert/delete overlays over a borrowed base CSC.
    Delta(&'a DeltaCsc<'a>),
}

impl PanelMat<'_> {
    pub(crate) fn n(&self) -> usize {
        match self {
            PanelMat::Static { storage, .. } => storage.n(),
            PanelMat::Delta(d) => d.n_cols(),
        }
    }
}

/// Reusable scratch for the batched engine: one bit-sliced frontier
/// triple plus the `σ`/depth/`δ` panels, sized for a fixed batch width.
/// Construct once per run, reuse for every block (tail blocks run at
/// full width with the extra lanes simply never seeded).
pub(crate) struct BatchScratch {
    /// Batch width `b` (lanes per sweep).
    width: usize,
    /// `ceil(width / 64)` — u64 words per vertex in the bit matrices.
    words: usize,
    /// Current frontier bits, `n·words`.
    fbits: Vec<u64>,
    /// Next frontier bits, `n·words`.
    tbits: Vec<u64>,
    /// Discovered bits (the per-lane `σ != 0` mask), `n·words`.
    seen: Vec<u64>,
    /// Current frontier counts, `n·width`.
    f: Vec<i64>,
    /// Next frontier counts, `n·width`.
    f_t: Vec<i64>,
    /// Shortest-path count panel, `n·width`.
    sigma: Vec<i64>,
    /// Discovery-depth panel, `n·width`.
    depths: Vec<u32>,
    /// Dependency panel, `n·width`.
    delta: Vec<f64>,
    /// Backward auxiliary panel `δ_u`, `n·width`.
    delta_u: Vec<f64>,
    /// Backward product panel `δ_ut`, `n·width`.
    delta_ut: Vec<f64>,
    /// Union frontier as a sparse vertex list (push direction).
    frontier_list: Vec<u32>,
    /// Per-word OR of the level's fresh bits (lane-activity tracking).
    level_any: Vec<u64>,
}

impl BatchScratch {
    pub(crate) fn new(n: usize, width: usize) -> Self {
        let width = width.max(1);
        let w = lane_words(width);
        BatchScratch {
            width,
            words: w,
            fbits: vec![0; n * w],
            tbits: vec![0; n * w],
            seen: vec![0; n * w],
            f: vec![0; n * width],
            f_t: vec![0; n * width],
            sigma: vec![0; n * width],
            depths: vec![ops::UNDISCOVERED; n * width],
            delta: vec![0.0; n * width],
            delta_u: vec![0.0; n * width],
            delta_ut: vec![0.0; n * width],
            frontier_list: Vec::new(),
            level_any: vec![0; w],
        }
    }

    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Copies the first `len` lanes of the `σ`/depth panels into dense
    /// `n × len` panels (stride `len`) — the cached form the dynamic
    /// layer's dirty-block detection scans.
    pub(crate) fn extract_block(
        &self,
        n: usize,
        len: usize,
        sigma: &mut Vec<i64>,
        depths: &mut Vec<u32>,
    ) {
        debug_assert!(len <= self.width);
        sigma.clear();
        depths.clear();
        sigma.reserve(n * len);
        depths.reserve(n * len);
        for v in 0..n {
            let base = v * self.width;
            sigma.extend_from_slice(&self.sigma[base..base + len]);
            depths.extend_from_slice(&self.depths[base..base + len]);
        }
    }

    /// Copies lane `k`'s `σ` and depth columns out of the panels — the
    /// deterministic per-source surface for the last source of a run.
    pub(crate) fn extract_lane(&self, lane: usize, sigma: &mut [i64], depths: &mut [u32]) {
        debug_assert!(lane < self.width);
        debug_assert_eq!(sigma.len() * self.width, self.sigma.len());
        for v in 0..sigma.len() {
            sigma[v] = self.sigma[v * self.width + lane];
            depths[v] = self.depths[v * self.width + lane];
        }
    }
}

/// Outcome of one block: per-lane BFS heights and reach counts, plus
/// the number of matrix sweeps the block cost (the amortized quantity —
/// one sweep serves every lane).
pub(crate) struct BlockRun {
    pub heights: Vec<u32>,
    pub reached: Vec<usize>,
    pub sweeps: u32,
}

/// Splits `n_sources` into the contiguous `(first, len)` block ranges a
/// width-`width` batched run sweeps — the unit the dispatcher's
/// block-parallel strategy schedules across host threads. The trailing
/// block may be narrower.
pub(crate) fn block_ranges(n_sources: usize, width: usize) -> Vec<(usize, usize)> {
    let width = width.max(1);
    (0..n_sources.div_ceil(width))
        .map(|i| {
            let first = i * width;
            (first, width.min(n_sources - first))
        })
        .collect()
}

/// Masks freshly-computed bits with the discovered set (`tbits &=
/// !seen`) — the post-pass for the unmasked COOC / push kernels.
fn mask_seen(tbits: &mut [u64], seen: &[u64]) {
    for (t, s) in tbits.iter_mut().zip(seen) {
        *t &= !s;
    }
}

/// One block of sources through both stages of Algorithm 1, batched:
/// forward masked SpMM per level, backward panel sweep per depth, `δ`
/// panel folded into the shared `bc`. `sources.len()` must be at most
/// `scratch.width()`; duplicate sources are fine (lanes are
/// independent). `on_level` fires once per *sweep* with the union
/// frontier's size and the direction the Beamer switch picked for it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bc_block_traced(
    storage: &Storage,
    kernel: Kernel,
    dir: &DirectionEngine,
    sources: &[u32],
    scale: f64,
    bc: &mut [f64],
    scratch: &mut BatchScratch,
    weights: Option<&crate::prep::RunWeights>,
    on_level: &mut dyn FnMut(LevelReport),
) -> BlockRun {
    bc_block_mat_traced(
        &PanelMat::Static { storage, kernel },
        dir,
        sources,
        scale,
        bc,
        scratch,
        weights,
        on_level,
    )
}

/// [`bc_block_traced`] generalised over the sparse operand: the static
/// storages and the dynamic layer's [`DeltaCsc`] view share this body,
/// so an incremental dirty-block recompute runs the *same* float
/// operation sequence as a static run on the updated graph.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bc_block_mat_traced(
    mat: &PanelMat<'_>,
    dir: &DirectionEngine,
    sources: &[u32],
    scale: f64,
    bc: &mut [f64],
    scratch: &mut BatchScratch,
    weights: Option<&crate::prep::RunWeights>,
    on_level: &mut dyn FnMut(LevelReport),
) -> BlockRun {
    let n = mat.n();
    let b = scratch.width;
    let w = scratch.words;
    debug_assert!(sources.len() <= b);
    debug_assert_eq!(bc.len(), n);

    // Reset block state. Tail blocks reuse the previous block's panels,
    // so every lane-indexed array must come back to its seed state.
    scratch.fbits.fill(0);
    scratch.seen.fill(0);
    scratch.f.fill(0);
    scratch.sigma.fill(0);
    scratch.depths.fill(ops::UNDISCOVERED);

    let mut heights = vec![1u32; sources.len()];
    let mut reached = vec![1usize; sources.len()];
    if n == 0 || sources.is_empty() {
        return BlockRun {
            heights,
            reached,
            sweeps: 0,
        };
    }

    // Seed one lane per source: depth 1, σ = 1, frontier bit set.
    for (k, &s) in sources.iter().enumerate() {
        let v = s as usize;
        scratch.fbits[v * w + k / 64] |= 1u64 << (k % 64);
        scratch.seen[v * w + k / 64] |= 1u64 << (k % 64);
        scratch.f[v * b + k] = 1;
        scratch.sigma[v * b + k] = 1;
        scratch.depths[v * b + k] = 1;
    }

    // The union frontier drives the Beamer switch: its vertex count and
    // out-edge total play the role of the per-source |frontier| /
    // frontier_edges (DESIGN.md §12, lifted to the block).
    let mut have_list = dir.needs_sparse();
    if have_list {
        scratch.frontier_list.clear();
        scratch.frontier_list.extend_from_slice(sources);
        scratch.frontier_list.sort_unstable();
        scratch.frontier_list.dedup();
    }
    let mut union_len = scratch.frontier_list.len().max(1);

    let mut d = 1u32;
    let mut sweeps = 0u32;
    loop {
        let frontier_edges = if have_list {
            dir.frontier_edges(&scratch.frontier_list)
        } else {
            0
        };
        let direction = dir.choose(union_len, frontier_edges, have_list);
        match direction {
            LevelDirection::Push => {
                // Push scatters over the union list's out-edges; like
                // the per-source push it is unmasked, so zero the
                // accumulators and mask afterwards.
                scratch.tbits.fill(0);
                scratch.f_t.fill(0);
                dir.csr()
                    .expect("push direction requires a CSR")
                    .spmm_t_frontier_push(
                        b,
                        &scratch.frontier_list,
                        &scratch.fbits,
                        &scratch.f,
                        &mut scratch.tbits,
                        &mut scratch.f_t,
                    );
                mask_seen(&mut scratch.tbits, &scratch.seen);
            }
            LevelDirection::Pull => match mat {
                PanelMat::Static {
                    storage: Storage::Csc(csc),
                    kernel,
                } => {
                    // Masked internally; tbits is fully overwritten and
                    // f_t written at fresh lanes only — no pre-clear.
                    if *kernel == Kernel::VeCsc {
                        csc.spmm_t_frontier_vector(
                            b,
                            &scratch.fbits,
                            &scratch.f,
                            &scratch.seen,
                            &mut scratch.tbits,
                            &mut scratch.f_t,
                        );
                    } else {
                        csc.spmm_t_frontier(
                            b,
                            &scratch.fbits,
                            &scratch.f,
                            &scratch.seen,
                            &mut scratch.tbits,
                            &mut scratch.f_t,
                        );
                    }
                }
                PanelMat::Static {
                    storage: Storage::Cooc(cooc),
                    ..
                } => {
                    scratch.tbits.fill(0);
                    scratch.f_t.fill(0);
                    cooc.spmm_t_frontier(
                        b,
                        &scratch.fbits,
                        &scratch.f,
                        &mut scratch.tbits,
                        &mut scratch.f_t,
                    );
                    mask_seen(&mut scratch.tbits, &scratch.seen);
                }
                PanelMat::Delta(d) => {
                    // Same masking contract as the CSC arm; the merged
                    // column order makes the sums bit-identical to a
                    // rebuilt CSC.
                    d.spmm_t_frontier(
                        b,
                        &scratch.fbits,
                        &scratch.f,
                        &scratch.seen,
                        &mut scratch.tbits,
                        &mut scratch.f_t,
                    );
                }
            },
        }
        sweeps += 1;
        d += 1;

        // Panel analogue of lines 23–27: record depth d and fold the
        // new path counts into σ for every fresh (vertex, lane).
        let discovered = ops::update_sigma_depth_panel(
            b,
            &scratch.tbits,
            &scratch.f_t,
            d,
            &mut scratch.depths,
            &mut scratch.sigma,
        );
        if discovered == 0 {
            break;
        }
        if let Some(wt) = weights {
            // Twin classes forward κ copies along each fresh lane.
            ops::scale_frontier_panel(b, &scratch.tbits, &mut scratch.f_t, &wt.kappa_gt1);
        }

        // Fold the fresh bits into `seen` and account the level: which
        // lanes advanced (their height becomes d), how many vertices
        // each lane discovered, and the union frontier's vertex count.
        scratch.level_any.fill(0);
        let mut union_vertices = 0usize;
        for v in 0..n {
            let base = v * w;
            let mut vert = 0u64;
            for t in 0..w {
                let fresh = scratch.tbits[base + t];
                if fresh != 0 {
                    scratch.seen[base + t] |= fresh;
                    scratch.level_any[t] |= fresh;
                    vert |= fresh;
                    let mut bits = fresh;
                    while bits != 0 {
                        let k = t * 64 + bits.trailing_zeros() as usize;
                        reached[k] += 1;
                        bits &= bits - 1;
                    }
                }
            }
            if vert != 0 {
                union_vertices += 1;
            }
        }
        for (t, &word) in scratch.level_any.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let k = t * 64 + bits.trailing_zeros() as usize;
                heights[k] = d;
                bits &= bits - 1;
            }
        }

        // Re-collect the union list only while the push direction can
        // still want it (same policy as the per-source engines).
        have_list = dir.needs_sparse()
            && (dir.mode() == DirectionMode::PushOnly || union_vertices <= dir.threshold());
        if have_list {
            scratch.frontier_list.clear();
            for v in 0..n {
                if scratch.tbits[v * w..(v + 1) * w].iter().any(|&x| x != 0) {
                    scratch.frontier_list.push(v as u32);
                }
            }
        }
        union_len = union_vertices;

        std::mem::swap(&mut scratch.f, &mut scratch.f_t);
        std::mem::swap(&mut scratch.fbits, &mut scratch.tbits);
        on_level(LevelReport {
            depth: d,
            frontier: union_vertices,
            direction,
            frontier_edges,
        });
    }

    // Backward stage, batched: sweep each depth once for all lanes.
    // Lanes whose BFS tree is shallower than the block's maximum simply
    // carry zero panels at those depths (`+= 0.0` over non-negative
    // dependencies is exact), so each lane's float summation order is
    // identical to its per-source run.
    let max_height = heights.iter().copied().max().unwrap_or(1);
    match weights {
        Some(wt) => ops::preseed_delta_panel(b, &wt.seed, &mut scratch.delta),
        None => scratch.delta.fill(0.0),
    }
    let mut depth = max_height;
    while depth > 1 {
        ops::seed_delta_u_panel(
            b,
            &scratch.depths,
            &scratch.sigma,
            &scratch.delta,
            depth,
            &mut scratch.delta_u,
        );
        scratch.delta_ut.fill(0.0);
        match mat {
            PanelMat::Static {
                storage: Storage::Csc(csc),
                ..
            } => csc.spmm_panel(b, &scratch.delta_u, &mut scratch.delta_ut),
            PanelMat::Static {
                storage: Storage::Cooc(cooc),
                ..
            } => cooc.spmm_panel(b, &scratch.delta_u, &mut scratch.delta_ut),
            PanelMat::Delta(d) => d.spmm_panel(b, &scratch.delta_u, &mut scratch.delta_ut),
        }
        match weights {
            Some(wt) => ops::accumulate_delta_panel_weighted(
                b,
                &scratch.depths,
                &scratch.sigma,
                &wt.kappa,
                &scratch.delta_ut,
                depth,
                &mut scratch.delta,
            ),
            None => ops::accumulate_delta_panel(
                b,
                &scratch.depths,
                &scratch.sigma,
                &scratch.delta_ut,
                depth,
                &mut scratch.delta,
            ),
        }
        depth -= 1;
    }
    match weights {
        Some(wt) => {
            let source_weights: Vec<f64> = sources.iter().map(|&s| wt.omega[s as usize]).collect();
            ops::fold_bc_panel_weighted(
                b,
                &scratch.delta,
                &wt.seed,
                &wt.kappa,
                sources,
                &source_weights,
                scale,
                bc,
            );
        }
        None => ops::fold_bc_panel(b, &scratch.delta, sources, scale, bc),
    }

    BlockRun {
        heights,
        reached,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::DirectionMode;
    use crate::seq::bc_source_seq_traced;
    use crate::seq::SeqScratch;
    use turbobc_graph::{gen, Graph};

    fn storage_for(g: &Graph, kernel: Kernel) -> Storage {
        match kernel {
            Kernel::ScCooc => Storage::Cooc(g.to_cooc()),
            _ => Storage::Csc(g.to_csc()),
        }
    }

    /// Per-source reference over the same storage/direction engine.
    fn reference(
        g: &Graph,
        kernel: Kernel,
        mode: DirectionMode,
        sources: &[u32],
    ) -> (Vec<f64>, Vec<i64>, Vec<u32>) {
        let storage = storage_for(g, kernel);
        let dir = DirectionEngine::new(g, mode);
        let n = g.n();
        let mut bc = vec![0.0; n];
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        let mut scratch = SeqScratch::new(n);
        for &s in sources {
            bc_source_seq_traced(
                &storage,
                &dir,
                s as usize,
                g.bc_scale(),
                &mut bc,
                &mut sigma,
                &mut depths,
                &mut scratch,
                None,
                &mut |_| {},
            );
        }
        (bc, sigma, depths)
    }

    fn batched(
        g: &Graph,
        kernel: Kernel,
        mode: DirectionMode,
        sources: &[u32],
        width: usize,
    ) -> (Vec<f64>, Vec<i64>, Vec<u32>) {
        let storage = storage_for(g, kernel);
        let dir = DirectionEngine::new(g, mode);
        let n = g.n();
        let mut bc = vec![0.0; n];
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        let mut scratch = BatchScratch::new(n, width);
        for block in sources.chunks(width.max(1)) {
            let run = bc_block_traced(
                &storage,
                kernel,
                &dir,
                block,
                g.bc_scale(),
                &mut bc,
                &mut scratch,
                None,
                &mut |_| {},
            );
            assert_eq!(run.heights.len(), block.len());
            let lane = block.len() - 1;
            scratch.extract_lane(lane, &mut sigma, &mut depths);
        }
        (bc, sigma, depths)
    }

    fn graphs() -> Vec<Graph> {
        vec![
            gen::gnm(40, 120, true, 7),
            gen::gnm(40, 120, false, 8),
            gen::grid2d(6, 6),
            // Disconnected: an isolated tail the BFS never reaches.
            Graph::from_edges(6, true, &[(0, 1), (1, 2), (0, 2)]),
            // Diamond with two shortest paths.
            Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]),
        ]
    }

    #[test]
    fn batched_matches_per_source_every_kernel_and_width() {
        for g in &graphs() {
            let sources: Vec<u32> = (0..g.n() as u32).collect();
            for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
                let (want_bc, want_sigma, want_depths) =
                    reference(g, kernel, DirectionMode::Auto, &sources);
                for width in [1usize, 3, 64, 65] {
                    let (bc, sigma, depths) =
                        batched(g, kernel, DirectionMode::Auto, &sources, width);
                    assert_eq!(sigma, want_sigma, "{kernel:?} width {width} sigma");
                    assert_eq!(depths, want_depths, "{kernel:?} width {width} depths");
                    for (v, (got, want)) in bc.iter().zip(&want_bc).enumerate() {
                        assert!(
                            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                            "{kernel:?} width {width} bc[{v}] = {got}, want {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn csc_batched_is_bit_identical_to_per_source() {
        // Same storage, same direction policy, integer forward stage and
        // order-preserving backward stage: f64 BC must match exactly.
        let g = gen::gnm(50, 160, false, 3);
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let (want_bc, ..) = reference(&g, Kernel::ScCsc, DirectionMode::PullOnly, &sources);
        for width in [1usize, 17, 64] {
            let (bc, ..) = batched(&g, Kernel::ScCsc, DirectionMode::PullOnly, &sources, width);
            assert_eq!(bc, want_bc, "width {width}");
        }
    }

    #[test]
    fn push_and_pull_agree_batched() {
        let g = gen::gnm(40, 130, true, 11);
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let (pull_bc, pull_sigma, _) =
            batched(&g, Kernel::ScCsc, DirectionMode::PullOnly, &sources, 64);
        let (push_bc, push_sigma, _) =
            batched(&g, Kernel::ScCsc, DirectionMode::PushOnly, &sources, 64);
        assert_eq!(pull_sigma, push_sigma);
        for (got, want) in push_bc.iter().zip(&pull_bc) {
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
        }
    }

    #[test]
    fn duplicate_sources_accumulate_independent_lanes() {
        let g = gen::grid2d(4, 4);
        let (want_bc, ..) = reference(&g, Kernel::ScCsc, DirectionMode::Auto, &[5, 5, 2]);
        let (bc, ..) = batched(&g, Kernel::ScCsc, DirectionMode::Auto, &[5, 5, 2], 64);
        for (got, want) in bc.iter().zip(&want_bc) {
            assert!((got - want).abs() <= 1e-12);
        }
    }

    #[test]
    fn block_run_reports_heights_and_reach() {
        // Path 0-1-2-3-4: from source 0 the BFS has height 5 and
        // reaches all 5 vertices; from source 4 likewise.
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let storage = storage_for(&g, Kernel::ScCsc);
        let dir = DirectionEngine::new(&g, DirectionMode::Auto);
        let mut bc = vec![0.0; 5];
        let mut scratch = BatchScratch::new(5, 64);
        let run = bc_block_traced(
            &storage,
            Kernel::ScCsc,
            &dir,
            &[0, 2, 4],
            g.bc_scale(),
            &mut bc,
            &mut scratch,
            None,
            &mut |_| {},
        );
        assert_eq!(run.heights, vec![5, 3, 5]);
        assert_eq!(run.reached, vec![5, 5, 5]);
        // The whole block costs max_height sweeps (5 levels from the
        // ends, final empty check included), not the sum over lanes.
        assert_eq!(run.sweeps, 5);
    }

    #[test]
    fn block_ranges_cover_every_source_once() {
        assert_eq!(block_ranges(10, 4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(block_ranges(8, 4), vec![(0, 4), (4, 4)]);
        assert_eq!(block_ranges(3, 64), vec![(0, 3)]);
        assert_eq!(block_ranges(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(
            block_ranges(5, 0),
            vec![(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)],
            "width clamps to 1"
        );
    }

    #[test]
    fn scratch_reuse_across_blocks_is_clean() {
        // Run a wide block, then a narrow tail block through the same
        // scratch: stale lanes from the first block must not leak.
        let g = gen::gnm(30, 90, false, 21);
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let (want_bc, ..) = reference(&g, Kernel::ScCsc, DirectionMode::Auto, &sources);
        // 30 sources at width 8: three full blocks + tail of 6.
        let (bc, ..) = batched(&g, Kernel::ScCsc, DirectionMode::Auto, &sources, 8);
        assert_eq!(bc, want_bc);
    }
}

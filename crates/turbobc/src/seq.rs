//! Sequential execution of Algorithm 1 — the paper's "(sequential)x"
//! baseline and the reference semantics for the parallel engines.

use turbobc_sparse::ops;
use turbobc_sparse::{Cooc, Csc};

/// The one storage format a run holds, per the paper's memory rule.
#[derive(Clone)]
pub(crate) enum Storage {
    Csc(Csc),
    Cooc(Cooc),
}

impl Storage {
    pub(crate) fn n(&self) -> usize {
        match self {
            Storage::Csc(c) => c.n_cols(),
            Storage::Cooc(c) => c.n_cols(),
        }
    }

    #[allow(dead_code)] // used by the bench harness via the solver
    pub(crate) fn m(&self) -> usize {
        match self {
            Storage::Csc(c) => c.nnz(),
            Storage::Cooc(c) => c.nnz(),
        }
    }

    /// Forward masked SpMV (`f_t ← Aᵀ f`, only into undiscovered
    /// vertices). `f_t` must be zeroed by the caller (Algorithm 1 line
    /// 14).
    fn forward(&self, f: &[i64], sigma: &[i64], f_t: &mut [i64]) {
        match self {
            // Algorithm 3: the σ-mask is fused into the column gather.
            Storage::Csc(c) => c.masked_spmv_t(f, |j| sigma[j] == 0, f_t),
            // Algorithm 2: plain edge sweep; masking happens afterwards
            // in `ops::mask_new_frontier`.
            Storage::Cooc(c) => c.spmv_t(f, f_t),
        }
    }

    /// Backward SpMV (`δ_ut ← A δ_u`): dependencies flow from children
    /// back to parents along forward edges. `δ_ut` must be zeroed by the
    /// caller.
    fn backward(&self, delta_u: &[f64], delta_ut: &mut [f64]) {
        match self {
            Storage::Csc(c) => c.spmv(delta_u, delta_ut),
            Storage::Cooc(c) => c.spmv(delta_u, delta_ut),
        }
    }
}

/// Output of one source's forward+backward sweep.
pub(crate) struct SourceRun {
    /// BFS-tree height (source at depth 1).
    pub height: u32,
    /// Vertices reached (including the source).
    pub reached: usize,
}

/// Runs Algorithm 1 for one source, accumulating into `bc`.
/// `sigma`/`depths` are caller-provided scratch, returned filled for the
/// source (the solver surfaces the last source's vectors). The
/// `on_level(depth, frontier)` hook fires once per discovered BFS level,
/// with the depth just reached and the number of vertices discovered
/// there (the observability layer's
/// [`crate::observe::TraceEvent::Level`] source).
pub(crate) fn bc_source_seq_traced(
    storage: &Storage,
    source: usize,
    scale: f64,
    bc: &mut [f64],
    sigma: &mut [i64],
    depths: &mut [u32],
    on_level: &mut dyn FnMut(u32, usize),
) -> SourceRun {
    let n = storage.n();
    debug_assert_eq!(bc.len(), n);
    sigma.fill(0);
    depths.fill(ops::UNDISCOVERED);
    if n == 0 {
        return SourceRun {
            height: 0,
            reached: 0,
        };
    }

    // Forward stage: the paper's integer frontier vectors.
    let mut f = vec![0i64; n];
    let mut f_t = vec![0i64; n];
    f[source] = 1;
    sigma[source] = 1;
    depths[source] = 1;
    let mut d = 1u32;
    let mut reached = 1usize;
    loop {
        f_t.fill(0);
        storage.forward(&f, sigma, &mut f_t);
        let count = ops::mask_new_frontier(&f_t, sigma, &mut f);
        if count == 0 {
            break;
        }
        d += 1;
        ops::update_sigma_depth(&f, d, depths, sigma);
        reached += count;
        on_level(d, count);
    }
    let height = d;

    // §3.4: free the integer frontier vectors before allocating the
    // float backward vectors.
    drop(f);
    drop(f_t);

    // Backward stage.
    let mut delta = vec![0.0f64; n];
    let mut delta_u = vec![0.0f64; n];
    let mut delta_ut = vec![0.0f64; n];
    let mut depth = height;
    while depth > 1 {
        ops::seed_delta_u(depths, sigma, &delta, depth, &mut delta_u);
        delta_ut.fill(0.0);
        storage.backward(&delta_u, &mut delta_ut);
        ops::accumulate_delta(depths, sigma, &delta_ut, depth, &mut delta);
        depth -= 1;
    }
    ops::accumulate_bc(&delta, source, scale, bc);
    SourceRun { height, reached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::brandes_single_source;
    use turbobc_graph::Graph;

    fn run(graph: &Graph, storage: Storage, source: usize) -> (Vec<f64>, SourceRun) {
        let n = graph.n();
        let mut bc = vec![0.0; n];
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        let r = bc_source_seq_traced(
            &storage,
            source,
            graph.bc_scale(),
            &mut bc,
            &mut sigma,
            &mut depths,
            &mut |_, _| {},
        );
        (bc, r)
    }

    #[test]
    fn csc_matches_oracle_on_diamond() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (bc, r) = run(&g, Storage::Csc(g.to_csc()), 0);
        let want = brandes_single_source(&g, 0);
        for (a, b) in bc.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{bc:?} vs {want:?}");
        }
        assert_eq!(r.height, 3);
        assert_eq!(r.reached, 4);
    }

    #[test]
    fn cooc_matches_oracle_on_undirected_cycle() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (bc, _) = run(&g, Storage::Cooc(g.to_cooc()), 2);
        let want = brandes_single_source(&g, 2);
        for (a, b) in bc.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{bc:?} vs {want:?}");
        }
    }

    #[test]
    fn sigma_and_depths_are_surfaced() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let n = g.n();
        let mut bc = vec![0.0; n];
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        bc_source_seq_traced(
            &Storage::Csc(g.to_csc()),
            0,
            1.0,
            &mut bc,
            &mut sigma,
            &mut depths,
            &mut |_, _| {},
        );
        assert_eq!(sigma, vec![1, 1, 1, 2], "two shortest paths reach vertex 3");
        assert_eq!(depths, vec![1, 2, 2, 3]);
    }

    #[test]
    fn level_hook_sees_every_frontier() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let n = g.n();
        let (mut bc, mut sigma, mut depths) = (vec![0.0; n], vec![0i64; n], vec![0u32; n]);
        let mut levels = Vec::new();
        let r = bc_source_seq_traced(
            &Storage::Csc(g.to_csc()),
            0,
            1.0,
            &mut bc,
            &mut sigma,
            &mut depths,
            &mut |d, count| levels.push((d, count)),
        );
        assert_eq!(levels, vec![(2, 2), (3, 1)]);
        assert_eq!(levels.len() as u32 + 1, r.height);
    }

    #[test]
    fn disconnected_source_component_only() {
        let g = Graph::from_edges(5, false, &[(0, 1), (2, 3)]);
        let (bc, r) = run(&g, Storage::Csc(g.to_csc()), 0);
        assert_eq!(r.reached, 2);
        assert_eq!(r.height, 2);
        assert!(bc.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn isolated_source() {
        let g = Graph::from_edges(3, true, &[(1, 2)]);
        let (bc, r) = run(&g, Storage::Cooc(g.to_cooc()), 0);
        assert_eq!(r.height, 1);
        assert_eq!(r.reached, 1);
        assert!(bc.iter().all(|&x| x == 0.0));
    }
}

//! Sequential execution of Algorithm 1 — the paper's "(sequential)x"
//! baseline and the reference semantics for the parallel engines.

use crate::frontier::{DirectionEngine, LevelDirection, LevelReport};
use crate::prep::RunWeights;
use turbobc_sparse::ops;
use turbobc_sparse::{Cooc, Csc};

/// The one storage format a run holds, per the paper's memory rule.
#[derive(Clone)]
pub(crate) enum Storage {
    Csc(Csc),
    Cooc(Cooc),
}

impl Storage {
    pub(crate) fn n(&self) -> usize {
        match self {
            Storage::Csc(c) => c.n_cols(),
            Storage::Cooc(c) => c.n_cols(),
        }
    }

    #[allow(dead_code)] // used by the bench harness via the solver
    pub(crate) fn m(&self) -> usize {
        match self {
            Storage::Csc(c) => c.nnz(),
            Storage::Cooc(c) => c.nnz(),
        }
    }

    /// Forward masked SpMV (`f_t ← Aᵀ f`, only into undiscovered
    /// vertices). `f_t` must be zeroed by the caller (Algorithm 1 line
    /// 14).
    pub(crate) fn forward(&self, f: &[i64], sigma: &[i64], f_t: &mut [i64]) {
        match self {
            // Algorithm 3: the σ-mask is fused into the column gather.
            Storage::Csc(c) => c.masked_spmv_t(f, |j| sigma[j] == 0, f_t),
            // Algorithm 2: plain edge sweep; masking happens afterwards
            // in `ops::mask_new_frontier`.
            Storage::Cooc(c) => c.spmv_t(f, f_t),
        }
    }

    /// Backward SpMV (`δ_ut ← A δ_u`): dependencies flow from children
    /// back to parents along forward edges. `δ_ut` must be zeroed by the
    /// caller.
    pub(crate) fn backward(&self, delta_u: &[f64], delta_ut: &mut [f64]) {
        match self {
            Storage::Csc(c) => c.spmv(delta_u, delta_ut),
            Storage::Cooc(c) => c.spmv(delta_u, delta_ut),
        }
    }
}

/// Output of one source's forward+backward sweep.
pub(crate) struct SourceRun {
    /// BFS-tree height (source at depth 1).
    pub height: u32,
    /// Vertices reached (including the source).
    pub reached: usize,
}

/// Reusable per-source scratch for the sequential engine: the frontier
/// vectors of the forward stage and the `δ` vectors of the backward
/// stage. Allocated once per run and cleared per source — reallocating
/// six `n`-vectors inside the source loop dominated small-graph exact
/// BC. (The paper's §3.4 "free the integer arrays before allocating the
/// float arrays" rule is about *device* memory; the SIMT engine still
/// honours it. Host scratch is cheap to keep resident.)
pub(crate) struct SeqScratch {
    pub(crate) f: Vec<i64>,
    pub(crate) f_t: Vec<i64>,
    pub(crate) frontier_list: Vec<u32>,
    pub(crate) delta: Vec<f64>,
    pub(crate) delta_u: Vec<f64>,
    pub(crate) delta_ut: Vec<f64>,
}

impl SeqScratch {
    pub(crate) fn new(n: usize) -> Self {
        SeqScratch {
            f: vec![0; n],
            f_t: vec![0; n],
            frontier_list: Vec::new(),
            delta: vec![0.0; n],
            delta_u: vec![0.0; n],
            delta_ut: vec![0.0; n],
        }
    }
}

/// Runs Algorithm 1 for one source, accumulating into `bc`.
/// `sigma`/`depths` are caller-provided scratch, returned filled for the
/// source (the solver surfaces the last source's vectors). The
/// `on_level` hook fires once per discovered BFS level with a
/// [`LevelReport`] — depth reached, vertices discovered, and the
/// push/pull direction the level was advanced in (the observability
/// layer's [`crate::observe::TraceEvent::Level`] and
/// [`crate::observe::TraceEvent::Direction`] source).
///
/// The forward step per level is either the storage's masked pull SpMV
/// or, when `dir` says so, a push scatter over the sparse frontier list
/// (`dir.push_seq`); both produce the same unmasked counts, and the
/// shared `mask_new_frontier` pass makes the masked results identical —
/// integer arithmetic is exact, so the direction never changes `σ`.
#[allow(clippy::too_many_arguments)] // one arg per Algorithm-1 vector
pub(crate) fn bc_source_seq_traced(
    storage: &Storage,
    dir: &DirectionEngine,
    source: usize,
    scale: f64,
    bc: &mut [f64],
    sigma: &mut [i64],
    depths: &mut [u32],
    scratch: &mut SeqScratch,
    weights: Option<&RunWeights>,
    on_level: &mut dyn FnMut(LevelReport),
) -> SourceRun {
    let n = storage.n();
    debug_assert_eq!(bc.len(), n);
    sigma.fill(0);
    depths.fill(ops::UNDISCOVERED);
    if n == 0 {
        return SourceRun {
            height: 0,
            reached: 0,
        };
    }

    // Forward stage: the paper's integer frontier vectors, plus the
    // sparse index list the push direction iterates (maintained only
    // while the frontier is small enough for push to be on the table).
    let SeqScratch {
        f,
        f_t,
        frontier_list,
        delta,
        delta_u,
        delta_ut,
    } = scratch;
    f.fill(0);
    f[source] = 1;
    sigma[source] = 1;
    depths[source] = 1;
    let mut d = 1u32;
    let mut reached = 1usize;
    frontier_list.clear();
    let mut have_list = dir.needs_sparse();
    if have_list {
        frontier_list.push(source as u32);
    }
    let mut frontier_len = 1usize;
    loop {
        let frontier_edges = if have_list {
            dir.frontier_edges(frontier_list)
        } else {
            0
        };
        let direction = dir.choose(frontier_len, frontier_edges, have_list);
        f_t.fill(0);
        match direction {
            LevelDirection::Push => dir.push_seq(frontier_list, f, f_t),
            LevelDirection::Pull => storage.forward(f, sigma, f_t),
        }
        let count = ops::mask_new_frontier(f_t, sigma, f);
        if count == 0 {
            break;
        }
        d += 1;
        ops::update_sigma_depth(f, d, depths, sigma);
        if let Some(w) = weights {
            // Twin classes forward κ copies of every arriving path.
            ops::scale_frontier(f, &w.kappa_gt1);
        }
        reached += count;
        // Re-collect the sparse list only when the next level could go
        // push: a frontier already past the threshold pulls regardless.
        have_list = dir.needs_sparse()
            && (matches!(dir.mode(), crate::frontier::DirectionMode::PushOnly)
                || count <= dir.threshold());
        if have_list {
            frontier_list.clear();
            frontier_list.extend(
                f.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(i, _)| i as u32),
            );
        }
        frontier_len = count;
        on_level(LevelReport {
            depth: d,
            frontier: count,
            direction,
            frontier_edges,
        });
    }
    let height = d;

    // Backward stage. (On the device this is where §3.4 frees the
    // integer frontier arrays before allocating the float ones; the
    // host engines keep both resident in the reusable scratch instead.)
    match weights {
        Some(w) => delta.copy_from_slice(&w.seed),
        None => delta.fill(0.0),
    }
    let mut depth = height;
    while depth > 1 {
        ops::seed_delta_u(depths, sigma, delta, depth, delta_u);
        delta_ut.fill(0.0);
        storage.backward(delta_u, delta_ut);
        match weights {
            Some(w) => {
                ops::accumulate_delta_weighted(depths, sigma, &w.kappa, delta_ut, depth, delta)
            }
            None => ops::accumulate_delta(depths, sigma, delta_ut, depth, delta),
        }
        depth -= 1;
    }
    match weights {
        Some(w) => ops::accumulate_bc_weighted(
            delta,
            &w.seed,
            &w.kappa,
            source,
            w.omega[source],
            scale,
            bc,
        ),
        None => ops::accumulate_bc(delta, source, scale, bc),
    }
    SourceRun { height, reached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::brandes_single_source;
    use turbobc_graph::Graph;

    use crate::frontier::DirectionMode;

    fn run_dir(
        graph: &Graph,
        storage: Storage,
        source: usize,
        mode: DirectionMode,
    ) -> (Vec<f64>, SourceRun) {
        let n = graph.n();
        let mut bc = vec![0.0; n];
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        let dir = DirectionEngine::new(graph, mode);
        let mut scratch = SeqScratch::new(n);
        let r = bc_source_seq_traced(
            &storage,
            &dir,
            source,
            graph.bc_scale(),
            &mut bc,
            &mut sigma,
            &mut depths,
            &mut scratch,
            None,
            &mut |_| {},
        );
        (bc, r)
    }

    fn run(graph: &Graph, storage: Storage, source: usize) -> (Vec<f64>, SourceRun) {
        run_dir(graph, storage, source, DirectionMode::Auto)
    }

    #[test]
    fn csc_matches_oracle_on_diamond() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (bc, r) = run(&g, Storage::Csc(g.to_csc()), 0);
        let want = brandes_single_source(&g, 0);
        for (a, b) in bc.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{bc:?} vs {want:?}");
        }
        assert_eq!(r.height, 3);
        assert_eq!(r.reached, 4);
    }

    #[test]
    fn cooc_matches_oracle_on_undirected_cycle() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (bc, _) = run(&g, Storage::Cooc(g.to_cooc()), 2);
        let want = brandes_single_source(&g, 2);
        for (a, b) in bc.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{bc:?} vs {want:?}");
        }
    }

    #[test]
    fn sigma_and_depths_are_surfaced() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let n = g.n();
        let mut bc = vec![0.0; n];
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        bc_source_seq_traced(
            &Storage::Csc(g.to_csc()),
            &DirectionEngine::new(&g, DirectionMode::Auto),
            0,
            1.0,
            &mut bc,
            &mut sigma,
            &mut depths,
            &mut SeqScratch::new(n),
            None,
            &mut |_| {},
        );
        assert_eq!(sigma, vec![1, 1, 1, 2], "two shortest paths reach vertex 3");
        assert_eq!(depths, vec![1, 2, 2, 3]);
    }

    #[test]
    fn level_hook_sees_every_frontier_and_direction() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let n = g.n();
        let (mut bc, mut sigma, mut depths) = (vec![0.0; n], vec![0i64; n], vec![0u32; n]);
        let mut levels = Vec::new();
        let r = bc_source_seq_traced(
            &Storage::Csc(g.to_csc()),
            &DirectionEngine::new(&g, DirectionMode::PushOnly),
            0,
            1.0,
            &mut bc,
            &mut sigma,
            &mut depths,
            &mut SeqScratch::new(n),
            None,
            &mut |lr: LevelReport| levels.push((lr.depth, lr.frontier, lr.direction)),
        );
        assert_eq!(
            levels,
            vec![(2, 2, LevelDirection::Push), (3, 1, LevelDirection::Push)]
        );
        assert_eq!(levels.len() as u32 + 1, r.height);
    }

    #[test]
    fn every_direction_mode_matches_the_pull_reference() {
        let g = Graph::from_edges(
            6,
            false,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (1, 5)],
        );
        let (want, _) = run_dir(&g, Storage::Csc(g.to_csc()), 0, DirectionMode::PullOnly);
        for mode in [DirectionMode::Auto, DirectionMode::PushOnly] {
            let (got, _) = run_dir(&g, Storage::Csc(g.to_csc()), 0, mode);
            assert_eq!(got, want, "{mode:?} must be bit-identical to pull");
            let (got, _) = run_dir(&g, Storage::Cooc(g.to_cooc()), 0, mode);
            assert_eq!(got, want, "{mode:?}/COOC must be bit-identical to pull");
        }
    }

    #[test]
    fn disconnected_source_component_only() {
        let g = Graph::from_edges(5, false, &[(0, 1), (2, 3)]);
        let (bc, r) = run(&g, Storage::Csc(g.to_csc()), 0);
        assert_eq!(r.reached, 2);
        assert_eq!(r.height, 2);
        assert!(bc.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn isolated_source() {
        let g = Graph::from_edges(3, true, &[(1, 2)]);
        let (bc, r) = run(&g, Storage::Cooc(g.to_cooc()), 0);
        assert_eq!(r.height, 1);
        assert_eq!(r.reached, 1);
        assert!(bc.iter().all(|&x| x == 0.0));
    }
}

//! The unified observability layer: every engine (CPU sequential /
//! parallel, SIMT, TurboBFS, MS-BFS, multi-GPU, approx, weighted)
//! reports its traversal behaviour through one [`Observer`] trait, and
//! [`ProfileObserver`] assembles those events into a [`RunProfile`] —
//! the machine-readable record the paper's Tables 1–5 are made of:
//!
//! * per-level BFS trace events (frontier size, σ updates, timestamps)
//!   and the push/pull direction decision each level was advanced with;
//! * the kernel auto-selection record (chosen kernel, the scf and mean
//!   degree it saw, the configured direction mode);
//! * per-source completion events (BFS height, vertices reached);
//! * aggregated [`MetricsRegistry`] kernel counters (warp efficiency,
//!   coalescing, L2 hit rate) lifted out of the SIMT simulator;
//! * a peak-memory snapshot validated against the paper's `7n + m`
//!   device-words claim (§3.4, Figure 4);
//! * recovery events (retries, OOM degradations, checkpoint resumes)
//!   folded into the same timeline.
//!
//! Profiles serialise to JSON (`RunProfile::to_json`) with a documented
//! schema (`turbobc-profile-v1`, see DESIGN.md) that
//! [`RunProfile::validate`] checks without any external dependency, and
//! render to a human summary table (`RunProfile::summary`). The CLI's
//! `--profile out.json` / `--profile-summary` flags and the bench
//! crate's `BENCH_*.json` emitter are thin wrappers over this module.

pub mod json;

use crate::footprint;
use crate::options::Kernel;
use crate::result::RecoveryLog;
use json::Json;
use std::time::Instant;
use turbobc_simt::{KernelStats, MemoryReport, MetricsRegistry};

/// Schema identifier written into (and required from) profile JSON.
pub const PROFILE_SCHEMA: &str = "turbobc-profile-v1";

/// One observation from a running engine. Events arrive in timeline
/// order within a run attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A run attempt begins. Emitted once per attempt — an OOM
    /// degradation or CPU fallback starts a fresh attempt (with the
    /// events of the failed attempt discarded by [`ProfileObserver`],
    /// and the failure recorded as a [`TraceEvent::Recovery`]).
    RunStart {
        /// Engine display name (`"seq"`, `"par"`, `"simt"`, …).
        engine: &'static str,
        /// The resolved kernel for this attempt.
        kernel: Kernel,
        /// Vertex count.
        n: usize,
        /// Stored arc count.
        m: usize,
        /// Number of sources the attempt will process.
        sources: usize,
    },
    /// One BFS level advanced: `frontier` vertices were discovered at
    /// `depth`, writing `sigma_updates` σ cells.
    Level {
        /// Source vertex of the sweep this level belongs to.
        source: u32,
        /// Depth just reached (source depth is 1).
        depth: u32,
        /// Vertices discovered at this depth (the frontier size).
        frontier: usize,
        /// σ cells written this level (equals `frontier` for the exact
        /// engines; recorded separately so sampling engines can differ).
        sigma_updates: u64,
    },
    /// The direction decision behind one BFS level: which of push/pull
    /// advanced the frontier into `depth`, and the numbers the
    /// Beamer-style rule compared. Emitted next to [`TraceEvent::Level`]
    /// (and gated by the same [`Observer::wants_levels`] hint); fixed
    /// direction modes report their forced direction with the same
    /// fields.
    Direction {
        /// Source vertex of the sweep this decision belongs to.
        source: u32,
        /// Depth the level advanced into (matches the paired `Level`).
        depth: u32,
        /// `"push"` or `"pull"`.
        direction: &'static str,
        /// Out-edges of the previous frontier — the `Σ out-degree` term
        /// of the rule (0 when no sparse list was kept).
        frontier_edges: usize,
        /// The rule's threshold `m / α`.
        threshold: usize,
    },
    /// How `Kernel::Auto` (and the direction mode) resolved for this
    /// run. Emitted once per run by the solver entry points, before
    /// `RunStart`; survives attempt restarts like the recovery timeline.
    KernelChoice {
        /// The kernel the run starts on.
        kernel: Kernel,
        /// The graph's normalised scale-free metric the selector saw.
        scf: f64,
        /// The graph's mean out-degree the selector saw.
        mean_degree: f64,
        /// The configured [`crate::DirectionMode`] name.
        direction: &'static str,
    },
    /// What the [`crate::prep`] reduction pipeline did to this run's
    /// graph. Emitted once per routed run by the solver entry points,
    /// before `KernelChoice`/`RunStart`; survives attempt restarts like
    /// the kernel-choice record. Legacy (passthrough) runs never emit it.
    Prep {
        /// Resolved stage: `"components"` or `"full"`.
        mode: &'static str,
        /// Connected components the run was split into.
        components: usize,
        /// Vertices the engines run on after reduction.
        n_reduced: usize,
        /// Stored arcs the engines run on after reduction.
        m_reduced: usize,
        /// Vertices removed by degree-1 folding.
        folded: usize,
        /// Twin classes with at least two members.
        twin_classes: usize,
        /// Vertices removed by twin compression.
        twin_members: usize,
        /// Degree-1 peel waves to fixpoint (max over components).
        fold_passes: usize,
        /// Kernel display name each component's sub-run resolves to, in
        /// component order.
        component_kernels: Vec<&'static str>,
    },
    /// One executor dispatch decision (the [`crate::dispatch`] cost
    /// model's counterpart to [`TraceEvent::KernelChoice`]): which
    /// executor a run, source block, or individual BFS level was
    /// scheduled onto and why. Emitted by [`crate::BcSolver::execute`]
    /// at plan granularity and by the hybrid per-level driver at every
    /// CPU↔device transition; survives attempt restarts like the
    /// kernel-choice record.
    Dispatch {
        /// Decision granularity: `"run"`, `"block"`, or `"level"`.
        granularity: &'static str,
        /// Executor display name (`"seq"`, `"par"`, `"batched"`,
        /// `"simt"`, `"cpu"`, `"hybrid"`, …).
        executor: &'static str,
        /// Source the decision applies to (the first source of a run or
        /// block decision).
        source: u32,
        /// Depth the decision applies from (0 for run/block decisions).
        depth: u32,
        /// Frontier size (level decisions) or source count (run/block
        /// decisions) the decision was based on.
        frontier: usize,
        /// The cost-model rationale.
        reason: String,
    },
    /// One batched block finished: `width` sources were advanced
    /// together by `sweeps` masked-SpMM matrix sweeps (the amortization
    /// the batched engine exists for — per-source cost is
    /// `sweeps / width` of a sweep, against `height` sweeps per source
    /// for the per-source engines). Emitted by
    /// [`crate::BcSolver::bc_batched`] before the block's per-source
    /// [`TraceEvent::SourceDone`] events.
    Block {
        /// First source of the block (the block is a contiguous chunk
        /// of the request's source list).
        first_source: u32,
        /// Lanes in this block (the trailing block may be narrower than
        /// the configured batch width).
        width: usize,
        /// Matrix sweeps the block's forward stage performed — the max
        /// BFS height over the block's lanes.
        sweeps: u32,
    },
    /// One dynamic update batch hit the cached BC state
    /// ([`crate::dynamic`]): how many arcs changed and how many of the
    /// cached source blocks the batch invalidated. Emitted by the
    /// incremental driver before the dirty blocks are recomputed;
    /// survives attempt restarts like the dispatch record.
    Update {
        /// Effective edge insertions in the batch (after dedup).
        inserts: usize,
        /// Effective edge deletions in the batch (after dedup).
        deletes: usize,
        /// Cached source blocks the batch invalidated.
        dirty_blocks: usize,
        /// Cached source blocks in total.
        total_blocks: usize,
        /// How the recompute was scheduled: `"incremental"` (dirty
        /// blocks only), `"full"` (dirty fraction past the cost model's
        /// threshold), or `"noop"` (no block touched).
        strategy: &'static str,
    },
    /// One source's forward+backward sweep finished.
    SourceDone {
        /// The source vertex.
        source: u32,
        /// BFS-tree height (source at depth 1).
        height: u32,
        /// Vertices reached, including the source.
        reached: usize,
    },
    /// The recovery machinery absorbed something.
    Recovery {
        /// Event class (`"kernel_retry"`, `"oom_degradation"`,
        /// `"cpu_fallback"`, `"resume"`, `"link_retry"`,
        /// `"device_requeue"`).
        kind: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Device kernel counters, reported once per attempt (SIMT and
    /// multi-GPU engines).
    Metrics {
        /// The device's accumulated per-kernel registry.
        registry: MetricsRegistry,
    },
    /// Device memory snapshot, reported once per attempt (SIMT engines).
    Memory {
        /// The allocation-ledger snapshot at the end of the attempt.
        report: MemoryReport,
    },
    /// The run finished successfully.
    RunEnd {
        /// Wall-clock seconds for the whole run.
        elapsed_s: f64,
    },
}

/// Receives [`TraceEvent`]s from a running engine.
///
/// Engines call [`Observer::event`] from their driver loop; the
/// [`Observer::wants_levels`] hint lets the hot per-level path skip
/// event construction entirely when nobody is listening.
pub trait Observer {
    /// Handles one event.
    fn event(&mut self, event: TraceEvent);

    /// Whether per-level [`TraceEvent::Level`] events should be emitted.
    fn wants_levels(&self) -> bool {
        true
    }
}

/// The no-op observer: every un-observed run uses this.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn event(&mut self, _event: TraceEvent) {}

    fn wants_levels(&self) -> bool {
        false
    }
}

/// One [`TraceEvent::Level`] with its timeline stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelTrace {
    /// Source vertex of the sweep.
    pub source: u32,
    /// Depth reached.
    pub depth: u32,
    /// Frontier size at this depth.
    pub frontier: usize,
    /// σ cells written.
    pub sigma_updates: u64,
    /// Seconds since the profile started.
    pub t_s: f64,
}

/// One [`TraceEvent::Direction`] with its timeline stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectionTrace {
    /// Source vertex of the sweep.
    pub source: u32,
    /// Depth the level advanced into.
    pub depth: u32,
    /// `"push"` or `"pull"`.
    pub direction: String,
    /// Out-edges of the previous frontier.
    pub frontier_edges: usize,
    /// The switching threshold `m / α`.
    pub threshold: usize,
    /// Seconds since the profile started.
    pub t_s: f64,
}

/// The [`TraceEvent::KernelChoice`] record of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelChoiceTrace {
    /// Kernel display name the run started on.
    pub kernel: String,
    /// Normalised scale-free metric the selector saw.
    pub scf: f64,
    /// Mean out-degree the selector saw.
    pub mean_degree: f64,
    /// Configured direction mode name (`"auto"`/`"push"`/`"pull"`).
    pub direction: String,
}

/// The [`TraceEvent::Prep`] record of a run: what the graph-reduction
/// pipeline removed before the engines ran.
#[derive(Debug, Clone, PartialEq)]
pub struct PrepTrace {
    /// Resolved stage: `"components"` or `"full"`.
    pub mode: String,
    /// Connected components the run was split into.
    pub components: usize,
    /// Vertices the engines run on after reduction.
    pub n_reduced: usize,
    /// Stored arcs the engines run on after reduction.
    pub m_reduced: usize,
    /// Vertices removed by degree-1 folding.
    pub folded: usize,
    /// Twin classes with at least two members.
    pub twin_classes: usize,
    /// Vertices removed by twin compression.
    pub twin_members: usize,
    /// Degree-1 peel waves to fixpoint (max over components).
    pub fold_passes: usize,
    /// Per-component kernel display names, in component order.
    pub component_kernels: Vec<String>,
}

/// One [`TraceEvent::Dispatch`] with its timeline stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchTrace {
    /// Decision granularity: `"run"`, `"block"`, or `"level"`.
    pub granularity: String,
    /// Executor display name.
    pub executor: String,
    /// Source the decision applies to.
    pub source: u32,
    /// Depth the decision applies from (0 for run/block decisions).
    pub depth: u32,
    /// Frontier size or source count behind the decision.
    pub frontier: usize,
    /// The cost-model rationale.
    pub reason: String,
    /// Seconds since the profile started.
    pub t_s: f64,
}

/// One [`TraceEvent::Block`] with its timeline stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTrace {
    /// First source of the block.
    pub first_source: u32,
    /// Lanes in the block.
    pub width: usize,
    /// Matrix sweeps the block's forward stage performed.
    pub sweeps: u32,
    /// Seconds since the profile started.
    pub t_s: f64,
}

/// One [`TraceEvent::Update`] with its timeline stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateTrace {
    /// Effective edge insertions in the batch.
    pub inserts: usize,
    /// Effective edge deletions in the batch.
    pub deletes: usize,
    /// Cached source blocks the batch invalidated.
    pub dirty_blocks: usize,
    /// Cached source blocks in total.
    pub total_blocks: usize,
    /// `"incremental"`, `"full"`, or `"noop"`.
    pub strategy: String,
    /// Seconds since the profile started.
    pub t_s: f64,
}

/// One [`TraceEvent::SourceDone`] with its timeline stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceTrace {
    /// The source vertex.
    pub source: u32,
    /// BFS-tree height.
    pub height: u32,
    /// Vertices reached.
    pub reached: usize,
    /// Seconds since the profile started.
    pub t_s: f64,
}

/// One [`TraceEvent::Recovery`] with its timeline stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryTrace {
    /// Event class.
    pub kind: String,
    /// Detail message.
    pub detail: String,
    /// Seconds since the profile started.
    pub t_s: f64,
}

/// Device peak memory checked against the paper's footprint model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySnapshot {
    /// Measured peak bytes on the device.
    pub peak_bytes: u64,
    /// Device capacity.
    pub capacity_bytes: u64,
    /// The paper's word count for this kernel/format — `7n + m (+ 2)`
    /// for CSC, `6n + 2m + 1` for COOC (§3.4).
    pub paper_words: usize,
    /// The footprint model in bytes (exact element sizes, before the
    /// device's per-allocation rounding).
    pub modelled_bytes: u64,
    /// Measured peak expressed in 8-byte words — the figure comparable
    /// against `paper_words` (array elements are 4 or 8 bytes, so this
    /// brackets the paper's count from above in word terms).
    pub measured_words: u64,
    /// Whether the measured peak sits within the model plus the
    /// device's per-allocation rounding slack.
    pub within_model: bool,
}

/// The assembled observability record of one run.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Engine display name (`"seq"`, `"par"`, `"simt"`, …).
    pub engine: String,
    /// Resolved kernel display name (`"scCSC"`, …).
    pub kernel: String,
    /// Vertex count.
    pub n: usize,
    /// Stored arc count.
    pub m: usize,
    /// Sources processed.
    pub sources: usize,
    /// Run attempts (1 on a clean run; +1 per OOM degradation rung or
    /// CPU fallback).
    pub attempts: u32,
    /// Per-level trace of the successful attempt.
    pub levels: Vec<LevelTrace>,
    /// Per-level direction decisions of the successful attempt.
    pub directions: Vec<DirectionTrace>,
    /// How the kernel (and direction mode) resolved for this run; kept
    /// across attempt restarts like the recovery timeline.
    pub kernel_choice: Option<KernelChoiceTrace>,
    /// What the graph-reduction pipeline did before the engines ran;
    /// `None` on legacy (passthrough) runs. Kept across attempt
    /// restarts like the kernel-choice record.
    pub prep: Option<PrepTrace>,
    /// Executor dispatch decisions ([`crate::dispatch`]): the plan's
    /// run/block assignments plus every per-level CPU↔device handoff.
    /// Kept across attempt restarts like the kernel-choice record;
    /// empty on statically dispatched runs.
    pub dispatch: Vec<DispatchTrace>,
    /// Per-block completions of the successful attempt (batched engine
    /// only; empty for per-source engines).
    pub blocks: Vec<BlockTrace>,
    /// Dynamic update batches applied against cached BC state
    /// ([`crate::dynamic`]); empty on static runs. Kept across attempt
    /// restarts like the dispatch record.
    pub updates: Vec<UpdateTrace>,
    /// Per-source completions of the successful attempt.
    pub source_runs: Vec<SourceTrace>,
    /// Recovery timeline (kept across attempts).
    pub recovery: Vec<RecoveryTrace>,
    /// Aggregated device kernel counters (empty for pure-CPU runs).
    pub metrics: MetricsRegistry,
    /// Device memory vs. the `7n + m` model (SIMT runs only).
    pub memory: Option<MemorySnapshot>,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
}

impl RunProfile {
    /// Number of per-level trace events recorded.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Per-level events of one source, in depth order.
    pub fn levels_for(&self, source: u32) -> impl Iterator<Item = &LevelTrace> {
        self.levels.iter().filter(move |l| l.source == source)
    }

    /// Counts of (push, pull) level decisions recorded.
    pub fn direction_counts(&self) -> (usize, usize) {
        let push = self
            .directions
            .iter()
            .filter(|d| d.direction == "push")
            .count();
        (push, self.directions.len() - push)
    }

    /// The paper's MTEPS figure (`sources · m / t`, in millions).
    pub fn mteps(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.m as f64 * self.sources as f64 / self.elapsed_s / 1e6
    }

    /// Folds a [`RecoveryLog`]'s counters into the recovery timeline —
    /// used by drivers that aggregate recovery outside the event stream
    /// (checkpointed and multi-GPU runs).
    pub fn absorb_recovery_log(&mut self, log: &RecoveryLog) {
        let mut push = |kind: &str, detail: String| {
            self.recovery.push(RecoveryTrace {
                kind: kind.to_string(),
                detail,
                t_s: self.elapsed_s,
            });
        };
        if log.resumed_sources > 0 {
            push(
                "resume",
                format!("checkpoint covered {} source(s)", log.resumed_sources),
            );
        }
        if log.kernel_retries > 0 {
            push(
                "kernel_retry",
                format!("{} transient kernel fault(s) retried", log.kernel_retries),
            );
        }
        if log.link_retries > 0 {
            push(
                "link_retry",
                format!("{} interconnect retry(ies)", log.link_retries),
            );
        }
        if log.device_requeues > 0 {
            push(
                "device_requeue",
                format!("{} lost device(s) requeued", log.device_requeues),
            );
        }
        if log.oom_degradations > 0 {
            push(
                "oom_degradation",
                format!(
                    "{} rung(s) down the ladder{}",
                    log.oom_degradations,
                    log.degraded_to
                        .map(|k| format!(", finished on {k}"))
                        .unwrap_or_default()
                ),
            );
        }
        if log.cpu_fallback {
            push(
                "cpu_fallback",
                "device ladder exhausted, reran on CPU".to_string(),
            );
        }
    }

    /// Merges a device's kernel registry under a per-device prefix
    /// (multi-GPU drivers report one registry per device).
    pub fn absorb_registry(&mut self, prefix: &str, registry: &MetricsRegistry) {
        for (name, stats) in registry.iter() {
            self.metrics.record(&format!("{prefix}{name}"), stats);
        }
    }

    /// Serialises to the `turbobc-profile-v1` JSON document.
    pub fn to_json(&self) -> Json {
        let kernel_entry = |name: &str, s: &KernelStats| {
            Json::Obj(vec![
                ("name".into(), name.into()),
                ("launches".into(), s.launches.into()),
                ("instructions".into(), s.instructions.into()),
                ("warp_efficiency".into(), s.warp_efficiency().into()),
                ("coalescing_factor".into(), s.coalescing_factor().into()),
                ("load_transactions".into(), s.load_transactions.into()),
                ("store_transactions".into(), s.store_transactions.into()),
                ("bytes_loaded".into(), s.bytes_loaded.into()),
                ("bytes_stored".into(), s.bytes_stored.into()),
                ("atomic_conflicts".into(), s.atomic_conflicts.into()),
                ("l2_modelled".into(), s.l2_modelled.into()),
                (
                    "l2_hit_rate".into(),
                    if s.l2_modelled {
                        Json::Num(s.l2_hit_rate())
                    } else {
                        Json::Null
                    },
                ),
            ])
        };
        let total = self.metrics.total();
        let totals = Json::Obj(vec![
            ("launches".into(), total.launches.into()),
            ("instructions".into(), total.instructions.into()),
            (
                "warp_efficiency".into(),
                self.metrics.warp_efficiency().into(),
            ),
            ("bytes_loaded".into(), total.bytes_loaded.into()),
            ("bytes_stored".into(), total.bytes_stored.into()),
            (
                "l2_hit_rate".into(),
                self.metrics
                    .l2_hit_rate()
                    .map(Json::Num)
                    .unwrap_or(Json::Null),
            ),
            (
                "l2_unmodelled_bytes".into(),
                self.metrics.unmodelled_bytes().into(),
            ),
        ]);
        let memory = match &self.memory {
            None => Json::Null,
            Some(mem) => Json::Obj(vec![
                ("peak_bytes".into(), mem.peak_bytes.into()),
                ("capacity_bytes".into(), mem.capacity_bytes.into()),
                ("paper_words".into(), mem.paper_words.into()),
                ("modelled_bytes".into(), mem.modelled_bytes.into()),
                ("measured_words".into(), mem.measured_words.into()),
                ("within_model".into(), mem.within_model.into()),
            ]),
        };
        Json::Obj(vec![
            ("schema".into(), PROFILE_SCHEMA.into()),
            ("engine".into(), self.engine.as_str().into()),
            ("kernel".into(), self.kernel.as_str().into()),
            (
                "graph".into(),
                Json::Obj(vec![
                    ("n".into(), self.n.into()),
                    ("m".into(), self.m.into()),
                ]),
            ),
            ("sources".into(), self.sources.into()),
            ("attempts".into(), self.attempts.into()),
            ("elapsed_s".into(), self.elapsed_s.into()),
            ("mteps".into(), self.mteps().into()),
            (
                "levels".into(),
                Json::Arr(
                    self.levels
                        .iter()
                        .map(|l| {
                            Json::Obj(vec![
                                ("source".into(), l.source.into()),
                                ("depth".into(), l.depth.into()),
                                ("frontier".into(), l.frontier.into()),
                                ("sigma_updates".into(), l.sigma_updates.into()),
                                ("t_s".into(), l.t_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "directions".into(),
                Json::Arr(
                    self.directions
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("source".into(), d.source.into()),
                                ("depth".into(), d.depth.into()),
                                ("direction".into(), d.direction.as_str().into()),
                                ("frontier_edges".into(), d.frontier_edges.into()),
                                ("threshold".into(), d.threshold.into()),
                                ("t_s".into(), d.t_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "kernel_choice".into(),
                match &self.kernel_choice {
                    None => Json::Null,
                    Some(c) => Json::Obj(vec![
                        ("kernel".into(), c.kernel.as_str().into()),
                        ("scf".into(), c.scf.into()),
                        ("mean_degree".into(), c.mean_degree.into()),
                        ("direction".into(), c.direction.as_str().into()),
                    ]),
                },
            ),
            (
                "prep".into(),
                match &self.prep {
                    None => Json::Null,
                    Some(pr) => Json::Obj(vec![
                        ("mode".into(), pr.mode.as_str().into()),
                        ("components".into(), pr.components.into()),
                        ("n_reduced".into(), pr.n_reduced.into()),
                        ("m_reduced".into(), pr.m_reduced.into()),
                        ("folded".into(), pr.folded.into()),
                        ("twin_classes".into(), pr.twin_classes.into()),
                        ("twin_members".into(), pr.twin_members.into()),
                        ("fold_passes".into(), pr.fold_passes.into()),
                        (
                            "component_kernels".into(),
                            Json::Arr(
                                pr.component_kernels
                                    .iter()
                                    .map(|k| k.as_str().into())
                                    .collect(),
                            ),
                        ),
                    ]),
                },
            ),
            (
                "dispatch".into(),
                Json::Arr(
                    self.dispatch
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("granularity".into(), d.granularity.as_str().into()),
                                ("executor".into(), d.executor.as_str().into()),
                                ("source".into(), d.source.into()),
                                ("depth".into(), d.depth.into()),
                                ("frontier".into(), d.frontier.into()),
                                ("reason".into(), d.reason.as_str().into()),
                                ("t_s".into(), d.t_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "blocks".into(),
                Json::Arr(
                    self.blocks
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("first_source".into(), b.first_source.into()),
                                ("width".into(), b.width.into()),
                                ("sweeps".into(), b.sweeps.into()),
                                ("t_s".into(), b.t_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "updates".into(),
                Json::Arr(
                    self.updates
                        .iter()
                        .map(|u| {
                            Json::Obj(vec![
                                ("inserts".into(), u.inserts.into()),
                                ("deletes".into(), u.deletes.into()),
                                ("dirty_blocks".into(), u.dirty_blocks.into()),
                                ("total_blocks".into(), u.total_blocks.into()),
                                ("strategy".into(), u.strategy.as_str().into()),
                                ("t_s".into(), u.t_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "source_runs".into(),
                Json::Arr(
                    self.source_runs
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("source".into(), s.source.into()),
                                ("height".into(), s.height.into()),
                                ("reached".into(), s.reached.into()),
                                ("t_s".into(), s.t_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "kernels".into(),
                Json::Arr(
                    self.metrics
                        .iter()
                        .map(|(name, s)| kernel_entry(name, s))
                        .collect(),
                ),
            ),
            ("totals".into(), totals),
            ("memory".into(), memory),
            (
                "recovery".into(),
                Json::Arr(
                    self.recovery
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("kind".into(), r.kind.as_str().into()),
                                ("detail".into(), r.detail.as_str().into()),
                                ("t_s".into(), r.t_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialises to pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Validates a JSON document against the `turbobc-profile-v1`
    /// schema: required keys, field types, and per-entry structure of
    /// the trace arrays. Returns the parsed document on success.
    pub fn validate(text: &str) -> Result<Json, String> {
        let doc = json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing 'schema' string")?;
        if schema != PROFILE_SCHEMA {
            return Err(format!("schema '{schema}' is not '{PROFILE_SCHEMA}'"));
        }
        for key in ["engine", "kernel"] {
            doc.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("missing '{key}' string"))?;
        }
        let graph = doc.get("graph").ok_or("missing 'graph' object")?;
        for key in ["n", "m"] {
            graph
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing 'graph.{key}'"))?;
        }
        for key in ["sources", "attempts", "elapsed_s", "mteps"] {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing '{key}' number"))?;
        }
        let check_entries = |key: &str, fields: &[&str]| -> Result<(), String> {
            let arr = doc
                .get(key)
                .and_then(Json::as_arr)
                .ok_or(format!("missing '{key}' array"))?;
            for (i, entry) in arr.iter().enumerate() {
                for f in fields {
                    entry
                        .get(f)
                        .and_then(Json::as_f64)
                        .ok_or(format!("{key}[{i}] missing number '{f}'"))?;
                }
            }
            Ok(())
        };
        check_entries(
            "levels",
            &["source", "depth", "frontier", "sigma_updates", "t_s"],
        )?;
        check_entries("source_runs", &["source", "height", "reached", "t_s"])?;
        // "blocks" arrived with the batched engine; older profiles
        // (and hand-built fixtures) may omit the key entirely.
        if doc.get("blocks").is_some() {
            check_entries("blocks", &["first_source", "width", "sweeps", "t_s"])?;
        }
        // "updates" arrived with the dynamic-graph layer; older
        // profiles may omit the key entirely.
        if let Some(arr) = doc.get("updates") {
            let arr = arr.as_arr().ok_or("'updates' is not an array")?;
            for (i, entry) in arr.iter().enumerate() {
                entry
                    .get("strategy")
                    .and_then(Json::as_str)
                    .ok_or(format!("updates[{i}] missing string 'strategy'"))?;
                for f in ["inserts", "deletes", "dirty_blocks", "total_blocks", "t_s"] {
                    entry
                        .get(f)
                        .and_then(Json::as_f64)
                        .ok_or(format!("updates[{i}] missing number '{f}'"))?;
                }
            }
        }
        // "dispatch" arrived with the cost-model dispatcher; older
        // profiles may omit the key entirely.
        if let Some(arr) = doc.get("dispatch") {
            let arr = arr.as_arr().ok_or("'dispatch' is not an array")?;
            for (i, entry) in arr.iter().enumerate() {
                for f in ["granularity", "executor", "reason"] {
                    entry
                        .get(f)
                        .and_then(Json::as_str)
                        .ok_or(format!("dispatch[{i}] missing string '{f}'"))?;
                }
                for f in ["source", "depth", "frontier", "t_s"] {
                    entry
                        .get(f)
                        .and_then(Json::as_f64)
                        .ok_or(format!("dispatch[{i}] missing number '{f}'"))?;
                }
            }
        }
        // "prep" arrived with the graph-reduction pipeline; same
        // back-compat rule — absent or null means a passthrough run.
        match doc.get("prep") {
            None | Some(Json::Null) => {}
            Some(pr) => {
                pr.get("mode")
                    .and_then(Json::as_str)
                    .ok_or("prep missing 'mode' string")?;
                for f in [
                    "components",
                    "n_reduced",
                    "m_reduced",
                    "folded",
                    "twin_classes",
                    "twin_members",
                    "fold_passes",
                ] {
                    pr.get(f)
                        .and_then(Json::as_f64)
                        .ok_or(format!("prep missing number '{f}'"))?;
                }
                let kernels = pr
                    .get("component_kernels")
                    .and_then(Json::as_arr)
                    .ok_or("prep missing 'component_kernels' array")?;
                for (i, k) in kernels.iter().enumerate() {
                    k.as_str()
                        .ok_or(format!("prep.component_kernels[{i}] not a string"))?;
                }
            }
        }
        let directions = doc
            .get("directions")
            .and_then(Json::as_arr)
            .ok_or("missing 'directions' array")?;
        for (i, entry) in directions.iter().enumerate() {
            entry
                .get("direction")
                .and_then(Json::as_str)
                .ok_or(format!("directions[{i}] missing 'direction'"))?;
            for f in ["source", "depth", "frontier_edges", "threshold", "t_s"] {
                entry
                    .get(f)
                    .and_then(Json::as_f64)
                    .ok_or(format!("directions[{i}] missing number '{f}'"))?;
            }
        }
        match doc.get("kernel_choice") {
            None => return Err("missing 'kernel_choice' (object or null)".to_string()),
            Some(Json::Null) => {}
            Some(c) => {
                for f in ["kernel", "direction"] {
                    c.get(f)
                        .and_then(Json::as_str)
                        .ok_or(format!("kernel_choice missing '{f}'"))?;
                }
                for f in ["scf", "mean_degree"] {
                    c.get(f)
                        .and_then(Json::as_f64)
                        .ok_or(format!("kernel_choice missing '{f}'"))?;
                }
            }
        }
        let kernels = doc
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("missing 'kernels' array")?;
        for (i, entry) in kernels.iter().enumerate() {
            entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or(format!("kernels[{i}] missing 'name'"))?;
            for f in [
                "launches",
                "warp_efficiency",
                "bytes_loaded",
                "bytes_stored",
            ] {
                entry
                    .get(f)
                    .and_then(Json::as_f64)
                    .ok_or(format!("kernels[{i}] missing '{f}'"))?;
            }
            entry
                .get("l2_modelled")
                .and_then(Json::as_bool)
                .ok_or(format!("kernels[{i}] missing 'l2_modelled'"))?;
        }
        let totals = doc.get("totals").ok_or("missing 'totals' object")?;
        for f in ["warp_efficiency", "bytes_loaded", "l2_unmodelled_bytes"] {
            totals
                .get(f)
                .and_then(Json::as_f64)
                .ok_or(format!("totals missing '{f}'"))?;
        }
        match doc.get("memory") {
            None => return Err("missing 'memory' (object or null)".to_string()),
            Some(Json::Null) => {}
            Some(mem) => {
                for f in [
                    "peak_bytes",
                    "capacity_bytes",
                    "paper_words",
                    "modelled_bytes",
                    "measured_words",
                ] {
                    mem.get(f)
                        .and_then(Json::as_f64)
                        .ok_or(format!("memory missing '{f}'"))?;
                }
                mem.get("within_model")
                    .and_then(Json::as_bool)
                    .ok_or("memory missing 'within_model'")?;
            }
        }
        let recovery = doc
            .get("recovery")
            .and_then(Json::as_arr)
            .ok_or("missing 'recovery' array")?;
        for (i, entry) in recovery.iter().enumerate() {
            entry
                .get("kind")
                .and_then(Json::as_str)
                .ok_or(format!("recovery[{i}] missing 'kind'"))?;
            entry
                .get("detail")
                .and_then(Json::as_str)
                .ok_or(format!("recovery[{i}] missing 'detail'"))?;
        }
        Ok(doc)
    }

    /// Renders the human-readable profile table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run profile: engine {}, kernel {}, n {}, m {}",
            self.engine, self.kernel, self.n, self.m
        );
        let _ = writeln!(
            out,
            "  {} source(s), {} attempt(s), {:.3} ms, {:.2} MTEPS",
            self.sources,
            self.attempts,
            self.elapsed_s * 1e3,
            self.mteps()
        );
        if let Some(c) = &self.kernel_choice {
            let _ = writeln!(
                out,
                "  auto-selection: kernel {} (scf {:.2}, mean degree {:.2}), direction mode {}",
                c.kernel, c.scf, c.mean_degree, c.direction
            );
        }
        if let Some(pr) = &self.prep {
            let _ = writeln!(
                out,
                "  prep: {} — {} component(s), reduced to n {} / m {} ({} folded in {} pass(es), {} twin member(s) in {} class(es))",
                pr.mode,
                pr.components,
                pr.n_reduced,
                pr.m_reduced,
                pr.folded,
                pr.fold_passes,
                pr.twin_members,
                pr.twin_classes
            );
        }
        if !self.directions.is_empty() {
            let (push, pull) = self.direction_counts();
            let _ = writeln!(
                out,
                "  direction: {push} push / {pull} pull level(s), threshold {}",
                self.directions.first().map(|d| d.threshold).unwrap_or(0)
            );
        }
        if !self.dispatch.is_empty() {
            let device_levels = self
                .dispatch
                .iter()
                .filter(|d| d.granularity == "level" && d.executor == "simt")
                .count();
            let _ = writeln!(
                out,
                "  dispatch: {} decision(s), {} device-segment entr{}",
                self.dispatch.len(),
                device_levels,
                if device_levels == 1 { "y" } else { "ies" }
            );
            for d in &self.dispatch {
                let _ = writeln!(
                    out,
                    "    [{:>5}] {} @ source {}, depth {}, frontier {} — {}",
                    d.granularity, d.executor, d.source, d.depth, d.frontier, d.reason
                );
            }
        }
        if !self.updates.is_empty() {
            let dirty: usize = self.updates.iter().map(|u| u.dirty_blocks).sum();
            let total: usize = self.updates.iter().map(|u| u.total_blocks).sum();
            let full = self.updates.iter().filter(|u| u.strategy == "full").count();
            let _ = writeln!(
                out,
                "  updates: {} batch(es), {} / {} block(s) dirty, {} full recompute(s)",
                self.updates.len(),
                dirty,
                total,
                full
            );
            for u in &self.updates {
                let _ = writeln!(
                    out,
                    "    [{:>11}] +{} -{} arcs, {} / {} block(s) dirty",
                    u.strategy, u.inserts, u.deletes, u.dirty_blocks, u.total_blocks
                );
            }
        }
        if !self.blocks.is_empty() {
            let sweeps: u64 = self.blocks.iter().map(|b| u64::from(b.sweeps)).sum();
            let heights: u64 = self.source_runs.iter().map(|s| u64::from(s.height)).sum();
            let _ = writeln!(
                out,
                "  batched: {} block(s), {} matrix sweep(s) for {} per-source sweep-equivalents ({:.2}x amortized)",
                self.blocks.len(),
                sweeps,
                heights,
                if sweeps > 0 {
                    heights as f64 / sweeps as f64
                } else {
                    0.0
                }
            );
        }
        if !self.source_runs.is_empty() {
            let max_h = self.source_runs.iter().map(|s| s.height).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "  {} level event(s), max depth {} over {} completed source(s)",
                self.levels.len(),
                max_h,
                self.source_runs.len()
            );
        }
        if let Some(first) = self.source_runs.first() {
            let _ = writeln!(out, "  level trace (source {}):", first.source);
            let _ = writeln!(out, "    {:>5}  {:>9}  {:>9}", "depth", "frontier", "sigma");
            for l in self.levels_for(first.source) {
                let _ = writeln!(
                    out,
                    "    {:>5}  {:>9}  {:>9}",
                    l.depth, l.frontier, l.sigma_updates
                );
            }
        }
        if self.metrics.iter().count() > 0 {
            let _ = writeln!(out, "  kernels:");
            let _ = writeln!(
                out,
                "    {:<22} {:>8} {:>9} {:>8} {:>12}",
                "name", "launches", "warp_eff", "l2_hit", "bytes"
            );
            for (name, s) in self.metrics.iter() {
                let l2 = if s.l2_modelled {
                    format!("{:.3}", s.l2_hit_rate())
                } else {
                    "-".to_string()
                };
                let _ = writeln!(
                    out,
                    "    {:<22} {:>8} {:>9.3} {:>8} {:>12}",
                    name,
                    s.launches,
                    s.warp_efficiency(),
                    l2,
                    s.bytes_total()
                );
            }
            let l2 = self
                .metrics
                .l2_hit_rate()
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "    total: warp_eff {:.3}, l2_hit {} ({} unmodelled bytes excluded)",
                self.metrics.warp_efficiency(),
                l2,
                self.metrics.unmodelled_bytes()
            );
        }
        if let Some(mem) = &self.memory {
            let _ = writeln!(
                out,
                "  memory: peak {} B = {} words vs paper {} words ({} B modelled) — {}",
                mem.peak_bytes,
                mem.measured_words,
                mem.paper_words,
                mem.modelled_bytes,
                if mem.within_model {
                    "within model"
                } else {
                    "OVER model"
                }
            );
        }
        if self.recovery.is_empty() {
            let _ = writeln!(out, "  recovery: clean");
        } else {
            let _ = writeln!(out, "  recovery:");
            for r in &self.recovery {
                let _ = writeln!(out, "    [{:>9.3}s] {}: {}", r.t_s, r.kind, r.detail);
            }
        }
        out
    }
}

/// Assembles [`TraceEvent`]s into a [`RunProfile`].
///
/// A new [`TraceEvent::RunStart`] discards the level/source traces of a
/// failed attempt (the successful attempt's trace is the profile) while
/// keeping the recovery timeline and bumping `attempts`.
#[derive(Debug)]
pub struct ProfileObserver {
    profile: RunProfile,
    started: Instant,
}

impl Default for ProfileObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileObserver {
    /// A fresh observer; the timeline starts now.
    pub fn new() -> Self {
        ProfileObserver {
            profile: RunProfile::default(),
            started: Instant::now(),
        }
    }

    /// The profile assembled so far.
    pub fn profile(&self) -> &RunProfile {
        &self.profile
    }

    /// Consumes the observer, returning the assembled profile.
    pub fn into_profile(self) -> RunProfile {
        self.profile
    }

    fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Observer for ProfileObserver {
    fn event(&mut self, event: TraceEvent) {
        let t_s = self.now();
        let p = &mut self.profile;
        match event {
            TraceEvent::RunStart {
                engine,
                kernel,
                n,
                m,
                sources,
            } => {
                p.engine = engine.to_string();
                p.kernel = kernel.name().to_string();
                p.n = n;
                p.m = m;
                p.sources = sources;
                p.attempts += 1;
                p.levels.clear();
                p.directions.clear();
                p.blocks.clear();
                p.source_runs.clear();
                p.metrics = MetricsRegistry::default();
                p.memory = None;
            }
            TraceEvent::Level {
                source,
                depth,
                frontier,
                sigma_updates,
            } => {
                p.levels.push(LevelTrace {
                    source,
                    depth,
                    frontier,
                    sigma_updates,
                    t_s,
                });
            }
            TraceEvent::Direction {
                source,
                depth,
                direction,
                frontier_edges,
                threshold,
            } => {
                p.directions.push(DirectionTrace {
                    source,
                    depth,
                    direction: direction.to_string(),
                    frontier_edges,
                    threshold,
                    t_s,
                });
            }
            TraceEvent::KernelChoice {
                kernel,
                scf,
                mean_degree,
                direction,
            } => {
                p.kernel_choice = Some(KernelChoiceTrace {
                    kernel: kernel.name().to_string(),
                    scf,
                    mean_degree,
                    direction: direction.to_string(),
                });
            }
            TraceEvent::Prep {
                mode,
                components,
                n_reduced,
                m_reduced,
                folded,
                twin_classes,
                twin_members,
                fold_passes,
                component_kernels,
            } => {
                p.prep = Some(PrepTrace {
                    mode: mode.to_string(),
                    components,
                    n_reduced,
                    m_reduced,
                    folded,
                    twin_classes,
                    twin_members,
                    fold_passes,
                    component_kernels: component_kernels.into_iter().map(str::to_string).collect(),
                });
            }
            TraceEvent::Dispatch {
                granularity,
                executor,
                source,
                depth,
                frontier,
                reason,
            } => {
                p.dispatch.push(DispatchTrace {
                    granularity: granularity.to_string(),
                    executor: executor.to_string(),
                    source,
                    depth,
                    frontier,
                    reason,
                    t_s,
                });
            }
            TraceEvent::Block {
                first_source,
                width,
                sweeps,
            } => {
                p.blocks.push(BlockTrace {
                    first_source,
                    width,
                    sweeps,
                    t_s,
                });
            }
            TraceEvent::Update {
                inserts,
                deletes,
                dirty_blocks,
                total_blocks,
                strategy,
            } => {
                p.updates.push(UpdateTrace {
                    inserts,
                    deletes,
                    dirty_blocks,
                    total_blocks,
                    strategy: strategy.to_string(),
                    t_s,
                });
            }
            TraceEvent::SourceDone {
                source,
                height,
                reached,
            } => {
                p.source_runs.push(SourceTrace {
                    source,
                    height,
                    reached,
                    t_s,
                });
            }
            TraceEvent::Recovery { kind, detail } => {
                p.recovery.push(RecoveryTrace {
                    kind: kind.to_string(),
                    detail,
                    t_s,
                });
            }
            TraceEvent::Metrics { registry } => {
                p.metrics = registry;
            }
            TraceEvent::Memory { report } => {
                let kernel = kernel_from_name(&p.kernel);
                let modelled_bytes = footprint::turbobc_bytes(p.n, p.m, kernel);
                // The simulator rounds each allocation up to 256 bytes;
                // a run holds at most ~12 simultaneous allocations.
                let slack = 16 * 256;
                p.memory = Some(MemorySnapshot {
                    peak_bytes: report.peak,
                    capacity_bytes: report.capacity,
                    paper_words: footprint::turbobc_words(p.n, p.m, kernel),
                    modelled_bytes,
                    measured_words: report.peak.div_ceil(8),
                    within_model: report.peak >= modelled_bytes
                        && report.peak <= modelled_bytes + slack,
                });
            }
            TraceEvent::RunEnd { elapsed_s } => {
                p.elapsed_s = elapsed_s;
            }
        }
    }
}

fn kernel_from_name(name: &str) -> Kernel {
    match name {
        "scCOOC" => Kernel::ScCooc,
        "veCSC" => Kernel::VeCsc,
        _ => Kernel::ScCsc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(obs: &mut ProfileObserver) {
        obs.event(TraceEvent::RunStart {
            engine: "simt",
            kernel: Kernel::ScCsc,
            n: 100,
            m: 400,
            sources: 2,
        });
        for (src, depth, frontier) in [(0u32, 2u32, 5usize), (0, 3, 7), (1, 2, 4)] {
            obs.event(TraceEvent::Level {
                source: src,
                depth,
                frontier,
                sigma_updates: frontier as u64,
            });
        }
        obs.event(TraceEvent::SourceDone {
            source: 0,
            height: 3,
            reached: 13,
        });
        obs.event(TraceEvent::SourceDone {
            source: 1,
            height: 2,
            reached: 5,
        });
        obs.event(TraceEvent::RunEnd { elapsed_s: 0.25 });
    }

    #[test]
    fn profile_collects_levels_and_sources() {
        let mut obs = ProfileObserver::new();
        feed(&mut obs);
        let p = obs.into_profile();
        assert_eq!(p.engine, "simt");
        assert_eq!(p.kernel, "scCSC");
        assert_eq!(p.level_count(), 3);
        assert_eq!(p.levels_for(0).count(), 2);
        assert_eq!(p.source_runs.len(), 2);
        assert_eq!(p.attempts, 1);
        assert!((p.mteps() - 400.0 * 2.0 / 0.25 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn restart_discards_failed_attempt_but_keeps_recovery() {
        let mut obs = ProfileObserver::new();
        obs.event(TraceEvent::RunStart {
            engine: "simt",
            kernel: Kernel::VeCsc,
            n: 100,
            m: 400,
            sources: 2,
        });
        obs.event(TraceEvent::Level {
            source: 0,
            depth: 2,
            frontier: 9,
            sigma_updates: 9,
        });
        obs.event(TraceEvent::Recovery {
            kind: "oom_degradation",
            detail: "veCSC -> scCSC".to_string(),
        });
        feed(&mut obs);
        let p = obs.into_profile();
        assert_eq!(p.attempts, 2);
        assert_eq!(p.kernel, "scCSC", "profile reflects the successful attempt");
        assert_eq!(p.level_count(), 3, "failed attempt's levels dropped");
        assert_eq!(
            p.recovery.len(),
            1,
            "recovery timeline survives the restart"
        );
    }

    #[test]
    fn dispatch_decisions_survive_restarts_and_round_trip() {
        let mut obs = ProfileObserver::new();
        obs.event(TraceEvent::Dispatch {
            granularity: "run",
            executor: "hybrid",
            source: 0,
            depth: 0,
            frontier: 2,
            reason: "cost model picked per-level scheduling".to_string(),
        });
        feed(&mut obs);
        obs.event(TraceEvent::Dispatch {
            granularity: "level",
            executor: "simt",
            source: 0,
            depth: 3,
            frontier: 40,
            reason: "frontier 40/100 past dense-enter".to_string(),
        });
        let p = obs.into_profile();
        assert_eq!(
            p.dispatch.len(),
            2,
            "run-granularity decision must survive RunStart"
        );
        assert_eq!(p.dispatch[0].granularity, "run");
        assert_eq!(p.dispatch[1].executor, "simt");
        let text = p.to_json_string();
        let doc = RunProfile::validate(&text).expect("dispatch entries must validate");
        assert_eq!(doc.get("dispatch").and_then(Json::as_arr).unwrap().len(), 2);
        let s = p.summary();
        assert!(s.contains("dispatch: 2 decision(s), 1 device-segment entry"));
        // A malformed dispatch entry is rejected.
        let bad = text.replace("\"granularity\": \"run\"", "\"granularity\": 7");
        assert!(RunProfile::validate(&bad).unwrap_err().contains("dispatch"));
    }

    #[test]
    fn json_round_trip_validates() {
        let mut obs = ProfileObserver::new();
        feed(&mut obs);
        let mut p = obs.into_profile();
        p.metrics.record(
            "fwd_scCSC",
            &KernelStats {
                launches: 3,
                instructions: 10,
                active_lane_ops: 200,
                bytes_loaded: 320,
                load_transactions: 10,
                dram_bytes_loaded: 64,
                l2_modelled: true,
                ..Default::default()
            },
        );
        let text = p.to_json_string();
        let doc = RunProfile::validate(&text).expect("self-produced profile must validate");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(PROFILE_SCHEMA)
        );
        assert_eq!(doc.get("levels").and_then(Json::as_arr).unwrap().len(), 3);
        let totals = doc.get("totals").unwrap();
        assert!(totals.get("l2_hit_rate").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(RunProfile::validate("{}").is_err());
        assert!(RunProfile::validate("not json").is_err());
        let wrong_schema = r#"{"schema": "other-v9"}"#;
        assert!(RunProfile::validate(wrong_schema)
            .unwrap_err()
            .contains("other-v9"));
        // A valid profile with one required level field removed.
        let mut obs = ProfileObserver::new();
        feed(&mut obs);
        let text = obs
            .into_profile()
            .to_json_string()
            .replace("\"frontier\"", "\"frontear\"");
        assert!(RunProfile::validate(&text)
            .unwrap_err()
            .contains("frontier"));
    }

    #[test]
    fn recovery_log_folds_into_timeline() {
        let mut p = RunProfile {
            elapsed_s: 1.5,
            ..Default::default()
        };
        p.absorb_recovery_log(&RecoveryLog {
            oom_degradations: 2,
            kernel_retries: 3,
            resumed_sources: 10,
            cpu_fallback: true,
            degraded_to: Some("scCOOC"),
            ..Default::default()
        });
        let kinds: Vec<&str> = p.recovery.iter().map(|r| r.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["resume", "kernel_retry", "oom_degradation", "cpu_fallback"]
        );
        assert!(p.recovery.iter().all(|r| (r.t_s - 1.5).abs() < 1e-12));
        p.absorb_recovery_log(&RecoveryLog::default());
        assert_eq!(p.recovery.len(), 4, "clean log adds nothing");
    }

    #[test]
    fn registry_absorption_prefixes_kernel_names() {
        let mut p = RunProfile::default();
        let mut reg = MetricsRegistry::default();
        reg.record(
            "fwd",
            &KernelStats {
                launches: 2,
                ..Default::default()
            },
        );
        p.absorb_registry("gpu0/", &reg);
        p.absorb_registry("gpu1/", &reg);
        assert!(p.metrics.kernel("gpu0/fwd").is_some());
        assert_eq!(p.metrics.total().launches, 4);
    }

    #[test]
    fn memory_event_checks_footprint_model() {
        let mut obs = ProfileObserver::new();
        obs.event(TraceEvent::RunStart {
            engine: "simt",
            kernel: Kernel::ScCsc,
            n: 100,
            m: 400,
            sources: 1,
        });
        let modelled = footprint::turbobc_bytes(100, 400, Kernel::ScCsc);
        obs.event(TraceEvent::Memory {
            report: MemoryReport {
                used: 0,
                peak: modelled + 512,
                capacity: 1 << 30,
                live_allocations: 0,
            },
        });
        obs.event(TraceEvent::RunEnd { elapsed_s: 0.1 });
        let mem = obs.into_profile().memory.unwrap();
        assert!(mem.within_model);
        assert_eq!(mem.paper_words, 7 * 100 + 400 + 2);
        assert_eq!(mem.measured_words, (modelled + 512).div_ceil(8));
    }

    #[test]
    fn direction_and_kernel_choice_events_flow_into_profile() {
        let mut obs = ProfileObserver::new();
        obs.event(TraceEvent::KernelChoice {
            kernel: Kernel::VeCsc,
            scf: 12.5,
            mean_degree: 30.0,
            direction: "auto",
        });
        obs.event(TraceEvent::RunStart {
            engine: "par",
            kernel: Kernel::VeCsc,
            n: 100,
            m: 400,
            sources: 1,
        });
        obs.event(TraceEvent::Direction {
            source: 0,
            depth: 2,
            direction: "push",
            frontier_edges: 3,
            threshold: 20,
        });
        obs.event(TraceEvent::Direction {
            source: 0,
            depth: 3,
            direction: "pull",
            frontier_edges: 90,
            threshold: 20,
        });
        obs.event(TraceEvent::RunEnd { elapsed_s: 0.1 });
        let p = obs.into_profile();
        let choice = p.kernel_choice.as_ref().expect("choice survives RunStart");
        assert_eq!(choice.kernel, "veCSC");
        assert_eq!(choice.direction, "auto");
        assert!((choice.scf - 12.5).abs() < 1e-12);
        assert_eq!(p.direction_counts(), (1, 1));

        let text = p.to_json_string();
        let doc = RunProfile::validate(&text).expect("profile with directions must validate");
        assert_eq!(
            doc.get("directions").and_then(Json::as_arr).unwrap().len(),
            2
        );
        assert_eq!(
            doc.get("kernel_choice")
                .and_then(|c| c.get("kernel"))
                .and_then(Json::as_str),
            Some("veCSC")
        );
        let s = p.summary();
        assert!(s.contains("auto-selection"));
        assert!(s.contains("1 push / 1 pull"));
        // Validation catches a broken direction entry.
        assert!(
            RunProfile::validate(&text.replace("\"threshold\"", "\"treshold\""))
                .unwrap_err()
                .contains("threshold")
        );
    }

    #[test]
    fn block_events_flow_into_profile_and_json() {
        let mut obs = ProfileObserver::new();
        obs.event(TraceEvent::RunStart {
            engine: "batched",
            kernel: Kernel::ScCsc,
            n: 100,
            m: 400,
            sources: 128,
        });
        obs.event(TraceEvent::Block {
            first_source: 0,
            width: 64,
            sweeps: 6,
        });
        obs.event(TraceEvent::SourceDone {
            source: 0,
            height: 6,
            reached: 100,
        });
        obs.event(TraceEvent::Block {
            first_source: 64,
            width: 64,
            sweeps: 5,
        });
        obs.event(TraceEvent::RunEnd { elapsed_s: 0.2 });
        let p = obs.into_profile();
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.blocks[1].first_source, 64);
        assert!(p.summary().contains("2 block(s)"));

        let text = p.to_json_string();
        let doc = RunProfile::validate(&text).expect("profile with blocks must validate");
        assert_eq!(doc.get("blocks").and_then(Json::as_arr).unwrap().len(), 2);
        // Back-compat: a pre-batched profile without the key validates.
        assert!(RunProfile::validate(&text.replace("\"blocks\"", "\"blocks_v0\"")).is_ok());
        // But a present-and-broken entry is rejected.
        assert!(
            RunProfile::validate(&text.replace("\"sweeps\"", "\"sweps\""))
                .unwrap_err()
                .contains("sweeps")
        );
    }

    #[test]
    fn update_events_flow_into_profile_and_json() {
        let mut obs = ProfileObserver::new();
        obs.event(TraceEvent::Update {
            inserts: 3,
            deletes: 1,
            dirty_blocks: 2,
            total_blocks: 8,
            strategy: "incremental",
        });
        obs.event(TraceEvent::RunStart {
            engine: "dynamic",
            kernel: Kernel::ScCsc,
            n: 100,
            m: 400,
            sources: 128,
        });
        obs.event(TraceEvent::RunEnd { elapsed_s: 0.1 });
        // A later batch escalates; like dispatch decisions, the update
        // timeline survives the new attempt's RunStart.
        obs.event(TraceEvent::Update {
            inserts: 0,
            deletes: 9,
            dirty_blocks: 7,
            total_blocks: 8,
            strategy: "full",
        });
        obs.event(TraceEvent::RunStart {
            engine: "dynamic",
            kernel: Kernel::ScCsc,
            n: 100,
            m: 382,
            sources: 512,
        });
        obs.event(TraceEvent::RunEnd { elapsed_s: 0.3 });
        let p = obs.into_profile();
        assert_eq!(p.updates.len(), 2, "updates survive attempt restarts");
        assert_eq!(p.updates[0].dirty_blocks, 2);
        assert_eq!(p.updates[1].strategy, "full");
        let s = p.summary();
        assert!(s.contains("2 batch(es)"), "summary: {s}");
        assert!(s.contains("1 full recompute(s)"), "summary: {s}");

        let text = p.to_json_string();
        let doc = RunProfile::validate(&text).expect("profile with updates must validate");
        assert_eq!(doc.get("updates").and_then(Json::as_arr).unwrap().len(), 2);
        // Back-compat: a pre-dynamic profile without the key validates.
        assert!(RunProfile::validate(&text.replace("\"updates\"", "\"updates_v0\"")).is_ok());
        // But a present-and-broken entry is rejected.
        assert!(
            RunProfile::validate(&text.replace("\"dirty_blocks\"", "\"dirty\""))
                .unwrap_err()
                .contains("dirty_blocks")
        );
    }

    #[test]
    fn prep_event_flows_into_profile_and_json() {
        let mut obs = ProfileObserver::new();
        obs.event(TraceEvent::Prep {
            mode: "full",
            components: 2,
            n_reduced: 7,
            m_reduced: 12,
            folded: 30,
            twin_classes: 3,
            twin_members: 4,
            fold_passes: 5,
            component_kernels: vec!["scCSC", "scCOOC"],
        });
        feed(&mut obs);
        let p = obs.into_profile();
        let pr = p.prep.as_ref().expect("prep record survives RunStart");
        assert_eq!(pr.mode, "full");
        assert_eq!(pr.folded, 30);
        assert_eq!(pr.component_kernels, vec!["scCSC", "scCOOC"]);
        assert!(p.summary().contains("prep: full — 2 component(s)"));

        let text = p.to_json_string();
        let doc = RunProfile::validate(&text).expect("profile with prep must validate");
        assert_eq!(
            doc.get("prep")
                .and_then(|pr| pr.get("mode"))
                .and_then(Json::as_str),
            Some("full")
        );
        // Back-compat: a pre-prep profile without the key validates
        // (and a legacy run serialises the key as null).
        assert!(RunProfile::validate(&text.replace("\"prep\"", "\"prep_v0\"")).is_ok());
        // But a present-and-broken record is rejected.
        assert!(
            RunProfile::validate(&text.replace("\"twin_classes\"", "\"twin_clases\""))
                .unwrap_err()
                .contains("twin_classes")
        );
    }

    #[test]
    fn restart_clears_directions_but_keeps_kernel_choice() {
        let mut obs = ProfileObserver::new();
        obs.event(TraceEvent::KernelChoice {
            kernel: Kernel::ScCsc,
            scf: 1.0,
            mean_degree: 4.0,
            direction: "pull",
        });
        obs.event(TraceEvent::RunStart {
            engine: "simt",
            kernel: Kernel::ScCsc,
            n: 10,
            m: 20,
            sources: 1,
        });
        obs.event(TraceEvent::Direction {
            source: 0,
            depth: 2,
            direction: "pull",
            frontier_edges: 0,
            threshold: 1,
        });
        feed(&mut obs);
        let p = obs.into_profile();
        assert!(
            p.directions.is_empty(),
            "failed attempt's decisions dropped"
        );
        assert!(p.kernel_choice.is_some(), "choice record survives restarts");
    }

    #[test]
    fn summary_renders_key_figures() {
        let mut obs = ProfileObserver::new();
        feed(&mut obs);
        let s = obs.into_profile().summary();
        assert!(s.contains("engine simt"));
        assert!(s.contains("kernel scCSC"));
        assert!(s.contains("recovery: clean"));
        assert!(s.contains("level trace"));
    }

    #[test]
    fn null_observer_skips_levels() {
        assert!(!NullObserver.wants_levels());
        assert!(ProfileObserver::new().wants_levels());
        NullObserver.event(TraceEvent::RunEnd { elapsed_s: 0.0 });
    }
}

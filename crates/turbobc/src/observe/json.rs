//! Minimal JSON document model used by the profile serialiser and the
//! schema validator. The workspace deliberately carries no serde
//! dependency, so profiles are written and re-read with this ~200-line
//! subset: objects, arrays, strings, numbers, booleans and null — all
//! JSON a [`crate::observe::RunProfile`] needs.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps), so serialised profiles are stable and diff-friendly.

use std::fmt::Write as _;

/// A JSON value. Numbers are kept as `f64` (profile counters fit in the
/// 2^53 exact-integer range; serialisation prints integers without a
/// decimal point).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an insertion-ordered association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Num(x as f64)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Self {
        Json::Num(x as f64)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; profiles encode them as null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset this module writes, plus
/// standard escapes). Returns a message with a byte offset on failure.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogates are not paired — profiles never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::from("fwd_scCSC")),
            ("launches".into(), Json::from(12u64)),
            ("rate".into(), Json::Num(0.75)),
            ("modelled".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "levels".into(),
                Json::Arr(vec![Json::from(1u64), Json::from(2u64), Json::from(3u64)]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::Obj(vec![("s".into(), Json::from("a\"b\\c\nd\te\u{1}"))]);
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        let mut s = String::new();
        Json::from(7u64).write(&mut s, 0);
        assert_eq!(s, "7");
        let mut s = String::new();
        Json::Num(0.5).write(&mut s, 0);
        assert_eq!(s, "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let doc = Json::Arr(vec![Json::Num(f64::INFINITY), Json::Num(f64::NAN)]);
        let text = doc.pretty();
        assert_eq!(
            parse(&text).unwrap(),
            Json::Arr(vec![Json::Null, Json::Null])
        );
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse(r#"{"a": {"b": [1, true, "x"]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(arr[0].get("k").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": 1,}"#).is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("truth").is_err());
    }

    #[test]
    fn parses_standalone_scalars() {
        assert_eq!(parse("  null ").unwrap(), Json::Null);
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
    }
}

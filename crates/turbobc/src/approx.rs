//! Approximate betweenness centrality with a probabilistic error
//! guarantee — source sampling in the style of Brandes & Pich (2007) /
//! Bader et al., with the Hoeffding sample-size bound.
//!
//! Exact BC costs one forward+backward sweep per vertex (`O(nm)`); the
//! paper's Table 5 shows this is the expensive regime. Sampling `k`
//! uniform sources and scaling by `n/k` gives an unbiased estimator, and
//! since each per-source dependency satisfies `0 ≤ δ_s(v) ≤ n − 2`,
//! Hoeffding + a union bound over the `n` vertices yields: with
//!
//! ```text
//! k = ⌈ ln(2n/δ) / (2ε²) ⌉
//! ```
//!
//! samples, `|b̂(v) − b(v)| ≤ ε` holds for **all** vertices
//! simultaneously with probability at least `1 − δ`, where `b(v) =
//! BC(v) / (n·(n−2))` is the normalised score.

use crate::{BcOptions, BcResult, BcSolver, TurboBcError};
use rand::{Rng, SeedableRng};
use turbobc_graph::{Graph, VertexId};

/// Accuracy contract for [`bc_approx`].
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxOptions {
    /// Maximum normalised error `ε` (per vertex).
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// RNG seed for the source sample.
    pub seed: u64,
    /// Kernel/engine configuration for the underlying sweeps.
    pub bc: BcOptions,
}

impl Default for ApproxOptions {
    fn default() -> Self {
        ApproxOptions {
            epsilon: 0.05,
            delta: 0.1,
            seed: 0x70b0bc,
            bc: BcOptions::default(),
        }
    }
}

/// The Hoeffding sample size for `(epsilon, delta)` on an `n`-vertex
/// graph (capped at `n` — beyond that, run exact BC).
pub fn sample_size(n: usize, epsilon: f64, delta: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    if n == 0 {
        return 0;
    }
    let k = ((2.0 * n as f64 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize;
    k.clamp(1, n)
}

/// Result of an approximate run: estimated (unnormalised) BC plus the
/// sample metadata.
#[derive(Debug, Clone)]
pub struct ApproxBcResult {
    /// Estimated BC per vertex, on the *exact* scale (`n/k`-scaled sum
    /// of sampled dependencies).
    pub bc: Vec<f64>,
    /// Number of sampled sources `k`.
    pub samples: usize,
    /// The guarantee: `|bc[v]/(n(n−2)) − exact| ≤ epsilon` for all `v`
    /// with probability `≥ 1 − delta` (recorded from the options).
    pub epsilon: f64,
    /// Recorded failure probability.
    pub delta: f64,
    /// The underlying run (timing, depths of the last sampled source).
    pub run: BcResult,
}

impl ApproxBcResult {
    /// Normalised estimate `bc(v) / (n (n−2))` — the scale the ε-bound
    /// is stated on.
    pub fn normalised(&self, n: usize) -> Vec<f64> {
        let denom = (n as f64) * (n as f64 - 2.0).max(1.0);
        self.bc.iter().map(|&b| b / denom).collect()
    }
}

/// Approximate BC with the `(epsilon, delta)` guarantee of the module
/// docs. Samples sources uniformly **with replacement** (as the bound
/// requires) and scales by `n/k`.
#[deprecated(since = "0.2.0", note = "use `BcSolver::approx` instead")]
pub fn bc_approx(graph: &Graph, options: ApproxOptions) -> Result<ApproxBcResult, TurboBcError> {
    let solver = BcSolver::new(graph, options.bc)?;
    bc_approx_with_solver(&solver, options.epsilon, options.delta, options.seed)
}

/// What [`BcSolver::approx`] runs: samples `k = sample_size(n, ε, δ)`
/// sources with replacement from the solver's graph and scales the
/// accumulated dependencies by `n/k`.
pub(crate) fn bc_approx_with_solver(
    solver: &BcSolver,
    epsilon: f64,
    delta: f64,
    seed: u64,
) -> Result<ApproxBcResult, TurboBcError> {
    let n = solver.n();
    let k = sample_size(n, epsilon, delta);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let sources: Vec<VertexId> = (0..k)
        .map(|_| rng.gen_range(0..n.max(1)) as VertexId)
        .collect();
    let plan = solver.plan(&sources)?;
    let mut run = solver
        .execute(&plan)?
        .into_bc()
        .expect("BC plans produce a BC result");
    let scale = if k > 0 { n as f64 / k as f64 } else { 0.0 };
    for b in &mut run.bc {
        *b *= scale;
    }
    Ok(ApproxBcResult {
        bc: run.bc.clone(),
        samples: k,
        epsilon,
        delta,
        run,
    })
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the shim so downstream callers stay covered
    use super::*;
    use turbobc_baselines::brandes_all_sources;
    use turbobc_graph::gen;

    #[test]
    fn sample_size_grows_with_accuracy() {
        let loose = sample_size(10_000, 0.2, 0.1);
        let tight = sample_size(10_000, 0.02, 0.1);
        assert!(tight > 50 * loose, "{tight} vs {loose}");
        assert!(sample_size(10_000, 0.01, 0.01) <= 10_000, "capped at n");
        assert_eq!(sample_size(0, 0.1, 0.1), 0);
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let g = gen::gnm(200, 800, false, 5);
        let a = bc_approx(
            &g,
            ApproxOptions {
                epsilon: 0.2,
                delta: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        let b = bc_approx(
            &g,
            ApproxOptions {
                epsilon: 0.2,
                delta: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.bc, b.bc);
        let c = bc_approx(
            &g,
            ApproxOptions {
                epsilon: 0.2,
                delta: 0.2,
                seed: 99,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.bc, c.bc, "different seed, different sample");
    }

    #[test]
    fn error_bound_holds_on_random_graphs() {
        // ε-bound on the normalised scale, checked against exact BC.
        for seed in 0..3u64 {
            let g = gen::gnm(120, 500, seed == 0, seed);
            let n = g.n();
            let exact = brandes_all_sources(&g);
            let denom = n as f64 * (n as f64 - 2.0);
            let opts = ApproxOptions {
                epsilon: 0.05,
                delta: 0.05,
                seed,
                ..Default::default()
            };
            let approx = bc_approx(&g, opts.clone()).unwrap();
            assert!(approx.samples >= 100, "k = {}", approx.samples);
            let worst = approx
                .bc
                .iter()
                .zip(&exact)
                .map(|(a, e)| (a - e).abs() / denom)
                .fold(0.0f64, f64::max);
            assert!(
                worst <= opts.epsilon,
                "seed {seed}: worst normalised error {worst} > {}",
                opts.epsilon
            );
        }
    }

    #[test]
    fn full_sampling_equals_exact_in_expectation_shape() {
        // With k = n the estimator still samples with replacement, so it
        // is not literally exact — but the top-vertex ordering is stable
        // on a star.
        let g = gen::star(40);
        let approx = bc_approx(
            &g,
            ApproxOptions {
                epsilon: 0.01,
                delta: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        let top = approx
            .bc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, 0, "hub must top the estimate");
        assert_eq!(approx.samples, 40);
    }

    #[test]
    fn normalised_scale() {
        let g = gen::star(30);
        let approx = bc_approx(&g, ApproxOptions::default()).unwrap();
        let norm = approx.normalised(g.n());
        assert!(
            norm.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)),
            "{norm:?}"
        );
    }
}

//! Closeness and harmonic centrality, batched over the multi-source BFS
//! — companion shortest-path centralities that reuse the TurboBFS
//! machinery (the paper's §1 motivates BC as one of a family of
//! shortest-path centralities).
//!
//! * **Harmonic** centrality: `H(s) = Σ_{v ≠ s} 1 / d(s, v)` (unreached
//!   vertices contribute 0) — well-defined on disconnected graphs.
//! * **Closeness** (Wasserman–Faust variant): `C(s) = (r − 1)² /
//!   ((n − 1) · Σ_{v ∈ R} d(s, v))` where `R` is `s`'s reachable set of
//!   size `r` — the standard normalisation for disconnected graphs.
//!
//! Both need one full BFS per vertex; [`crate::msbfs::ms_bfs`] serves 64
//! of them per edge sweep.

use crate::error::TurboBcError;
use crate::msbfs::MsBfsResult;
use crate::options::BcOptions;
use crate::solver::BcSolver;
use turbobc_graph::{Graph, VertexId};

/// Closeness-family scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosenessResult {
    /// Harmonic centrality per vertex.
    pub harmonic: Vec<f64>,
    /// Wasserman–Faust closeness per vertex.
    pub closeness: Vec<f64>,
}

/// Computes harmonic and closeness centrality for every vertex.
#[deprecated(since = "0.2.0", note = "use `BcSolver::closeness` instead")]
pub fn closeness_centrality(graph: &Graph, options: BcOptions) -> ClosenessResult {
    let n = graph.n();
    let sources: Vec<VertexId> = (0..n as VertexId).collect();
    #[allow(deprecated)]
    closeness_for_sources(graph, &sources, options)
}

/// Computes the scores for a subset of vertices (each still needs its
/// own BFS; the batching amortises the sweeps).
#[deprecated(
    since = "0.2.0",
    note = "use `BcSolver::closeness_for_sources` instead"
)]
pub fn closeness_for_sources(
    graph: &Graph,
    sources: &[VertexId],
    options: BcOptions,
) -> ClosenessResult {
    if graph.n() <= 1 {
        return ClosenessResult {
            harmonic: vec![0.0; graph.n()],
            closeness: vec![0.0; graph.n()],
        };
    }
    #[allow(deprecated)]
    let bfs = crate::msbfs::ms_bfs(graph, sources, options);
    scores_from_sweeps(graph.n(), sources, &bfs)
}

/// What [`BcSolver::closeness`] / [`BcSolver::closeness_for_sources`]
/// run: the sweeps come from the solver's own MS-BFS (one storage
/// format, solver-resolved kernel), `None` meaning every vertex.
pub(crate) fn closeness_with_solver(
    solver: &BcSolver,
    sources: Option<&[VertexId]>,
) -> Result<ClosenessResult, TurboBcError> {
    let n = solver.n();
    if n <= 1 {
        return Ok(ClosenessResult {
            harmonic: vec![0.0; n],
            closeness: vec![0.0; n],
        });
    }
    let all: Vec<VertexId>;
    let sources = match sources {
        Some(s) => s,
        None => {
            all = (0..n as VertexId).collect();
            &all
        }
    };
    let plan = solver.plan_ms_bfs(sources)?;
    let bfs = solver
        .execute(&plan)?
        .into_ms_bfs()
        .expect("BFS plans produce an MS-BFS result");
    Ok(scores_from_sweeps(n, sources, &bfs))
}

/// Folds per-source depth vectors into harmonic / closeness scores.
fn scores_from_sweeps(n: usize, sources: &[VertexId], bfs: &MsBfsResult) -> ClosenessResult {
    let mut harmonic = vec![0.0f64; n];
    let mut closeness = vec![0.0f64; n];
    for (k, &s) in sources.iter().enumerate() {
        let depths = &bfs.depths[k];
        let mut inv_sum = 0.0f64;
        let mut dist_sum = 0u64;
        let mut reached = 0u64;
        for (v, &dep) in depths.iter().enumerate() {
            if dep == 0 || v == s as usize {
                continue;
            }
            let hops = (dep - 1) as f64;
            inv_sum += 1.0 / hops;
            dist_sum += (dep - 1) as u64;
            reached += 1;
        }
        harmonic[s as usize] = inv_sum;
        closeness[s as usize] = if dist_sum > 0 {
            (reached as f64) * (reached as f64) / ((n as f64 - 1.0) * dist_sum as f64)
        } else {
            0.0
        };
    }
    ClosenessResult {
        harmonic,
        closeness,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the shims so downstream callers stay covered
    use super::*;
    use turbobc_graph::gen;

    fn reference(graph: &Graph) -> ClosenessResult {
        let n = graph.n();
        let mut harmonic = vec![0.0; n];
        let mut closeness = vec![0.0; n];
        for s in 0..n {
            let r = turbobc_graph::bfs(graph, s as VertexId);
            let mut inv = 0.0;
            let mut sum = 0u64;
            let mut reach = 0u64;
            for (v, &dep) in r.depths.iter().enumerate() {
                if dep > 1 && v != s {
                    inv += 1.0 / (dep - 1) as f64;
                    sum += (dep - 1) as u64;
                    reach += 1;
                }
            }
            harmonic[s] = inv;
            closeness[s] = if sum > 0 {
                reach as f64 * reach as f64 / ((n as f64 - 1.0) * sum as f64)
            } else {
                0.0
            };
        }
        ClosenessResult {
            harmonic,
            closeness,
        }
    }

    #[test]
    fn star_center_is_closest() {
        let g = gen::star(9);
        let r = closeness_centrality(&g, BcOptions::default());
        // Hub: 8 neighbours at distance 1 → H = 8, C = 1.
        assert!((r.harmonic[0] - 8.0).abs() < 1e-12);
        assert!((r.closeness[0] - 1.0).abs() < 1e-12);
        // Leaf: 1 + 7·(1/2) = 4.5.
        assert!((r.harmonic[1] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for (seed, directed) in [(5u64, false), (6, true)] {
            let g = gen::gnm(90, 260, directed, seed);
            let got = closeness_centrality(&g, BcOptions::default());
            let want = reference(&g);
            for v in 0..g.n() {
                assert!((got.harmonic[v] - want.harmonic[v]).abs() < 1e-9, "H[{v}]");
                assert!(
                    (got.closeness[v] - want.closeness[v]).abs() < 1e-9,
                    "C[{v}]"
                );
            }
        }
    }

    #[test]
    fn disconnected_vertices_score_zero() {
        let g = Graph::from_edges(4, false, &[(0, 1)]);
        let r = closeness_centrality(&g, BcOptions::default());
        assert_eq!(r.harmonic[2], 0.0);
        assert_eq!(r.closeness[3], 0.0);
        assert!(r.harmonic[0] > 0.0);
    }

    #[test]
    fn subset_computes_only_requested_sources() {
        let g = gen::path(6, false);
        let r = closeness_for_sources(&g, &[2], BcOptions::default());
        assert!(r.harmonic[2] > 0.0);
        assert_eq!(r.harmonic[0], 0.0, "unrequested sources stay zero");
    }

    #[test]
    fn path_centre_beats_ends() {
        let g = gen::path(7, false);
        let r = closeness_centrality(&g, BcOptions::default());
        assert!(r.closeness[3] > r.closeness[0]);
        assert!(r.harmonic[3] > r.harmonic[6]);
    }
}

//! Result types returned by the solver.

use std::time::Duration;
use turbobc_simt::{KernelStats, MemoryReport, MetricsRegistry};

/// Aggregate statistics for a BC run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Number of source vertices processed.
    pub sources: usize,
    /// Maximum BFS-tree height over the processed sources — the paper's
    /// `d` column (source at depth 1).
    pub max_depth: u32,
    /// Sum of BFS heights over all sources (number of forward SpMV
    /// sweeps).
    pub total_levels: u64,
    /// Vertices reached from the last processed source.
    pub last_reached: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Recovery log: what the run absorbed (all zero on a clean run).
    pub recovery: RecoveryLog,
}

/// What the recovery policy absorbed during a run (see
/// [`crate::RecoveryPolicy`]). All-zero/default on a fault-free run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    /// Times the solver stepped down the veCSC → scCSC → scCOOC ladder
    /// after a device OOM.
    pub oom_degradations: u32,
    /// Transient kernel faults absorbed by in-place retries.
    pub kernel_retries: u64,
    /// Dropped/corrupted interconnect exchanges absorbed by retries.
    pub link_retries: u64,
    /// Lost devices whose column partitions were requeued onto
    /// survivors (multi-GPU driver).
    pub device_requeues: u32,
    /// Sources skipped because a checkpoint already covered them.
    pub resumed_sources: usize,
    /// The run fell back to the CPU Parallel engine after exhausting
    /// the device ladder.
    pub cpu_fallback: bool,
    /// The kernel that actually produced the result, when degradation
    /// changed it (by display name, e.g. `"scCSC"`).
    pub degraded_to: Option<&'static str>,
}

impl RecoveryLog {
    /// True when the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryLog::default()
    }
}

impl RunStats {
    /// The paper's MTEPS figure: for BC/vertex runs, `m / t`; for exact
    /// runs, `n·m / t` (millions of traversed edges per second).
    pub fn mteps(&self, m: usize) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (m as f64 * self.sources as f64) / secs / 1e6
    }
}

/// Betweenness-centrality output.
#[derive(Debug, Clone, PartialEq)]
pub struct BcResult {
    /// BC score per vertex (undirected contributions halved, as in the
    /// paper).
    pub bc: Vec<f64>,
    /// Shortest-path counts `σ` from the *last* processed source.
    pub sigma: Vec<i64>,
    /// Discovery depths `S` from the last processed source (source = 1,
    /// unreached = 0).
    pub depths: Vec<u32>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Extra observables from a run on the SIMT simulator.
#[derive(Debug, Clone)]
pub struct SimtReport {
    /// Per-kernel counters accumulated over the run.
    pub metrics: MetricsRegistry,
    /// Device memory after the run (peak = the paper's "GPU memory upper
    /// bound").
    pub memory: MemoryReport,
    /// Modelled execution time (timing-model seconds, all kernels).
    pub modelled_time_s: f64,
    /// Modelled global-memory load throughput over the whole run, GB/s.
    pub glt_gbs: f64,
}

impl SimtReport {
    /// Totals across kernels.
    pub fn total(&self) -> KernelStats {
        self.metrics.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mteps_formula() {
        let stats = RunStats {
            sources: 2,
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        assert!((stats.mteps(5_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mteps_of_zero_time_is_zero() {
        let stats = RunStats::default();
        assert_eq!(stats.mteps(100), 0.0);
    }

    #[test]
    fn recovery_log_cleanliness() {
        assert!(RunStats::default().recovery.is_clean());
        let dirty = RecoveryLog {
            kernel_retries: 1,
            ..Default::default()
        };
        assert!(!dirty.is_clean());
    }
}

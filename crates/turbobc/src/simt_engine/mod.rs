//! Driver for Algorithm 1 on the SIMT simulator: device allocation
//! (following the paper's §3.4 footprint discipline), the per-level
//! kernel pipeline of Figure 2, and metric collection.

pub(crate) mod kernels;

use crate::error::TurboBcError;
use crate::frontier::DirectionMode;
use crate::observe::{Observer, TraceEvent};
use crate::options::{Kernel, RecoveryPolicy};
use crate::result::SimtReport;
use crate::seq::Storage;
use turbobc_graph::DENSE_DIRECTION_FRACTION;
use turbobc_simt::{Device, DeviceBuffer, DeviceError};
use turbobc_sparse::Csr;

/// Everything a SIMT run produces.
#[derive(Debug)]
pub(crate) struct SimtOutcome {
    pub bc: Vec<f64>,
    pub sigma: Vec<i64>,
    pub depths: Vec<u32>,
    pub max_depth: u32,
    pub total_levels: u64,
    pub last_reached: usize,
    pub kernel_retries: u64,
    pub report: SimtReport,
}

/// Retries a kernel launch on transient faults with bounded exponential
/// backoff. A faulted launch never executed its body, so re-invoking the
/// closure replays the exact same launch; the fault counter inside the
/// device advanced, so a one-shot injected fault is absorbed. Permanent
/// errors (OOM, lost device) and exhausted budgets surface unchanged.
pub(crate) fn retry_kernel<T>(
    policy: &RecoveryPolicy,
    retries: &mut u64,
    mut op: impl FnMut() -> Result<T, DeviceError>,
) -> Result<T, DeviceError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Err(e) if e.is_transient() && attempt < policy.max_kernel_retries => {
                *retries += 1;
                let delay = policy.backoff(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
            other => return other,
        }
    }
}

enum DeviceStructure {
    Csc {
        cp: DeviceBuffer<u32>,
        rows: DeviceBuffer<u32>,
    },
    Cooc {
        row_a: DeviceBuffer<u32>,
        col_a: DeviceBuffer<u32>,
    },
}

/// Host → device transfer of the single sparse structure a run uses
/// (the paper's one-format memory rule). Fails with
/// [`TurboBcError::StorageMismatch`] when the storage format does not
/// match the kernel.
fn upload_structure(
    device: &Device,
    storage: &Storage,
    kernel: Kernel,
) -> Result<DeviceStructure, TurboBcError> {
    match (storage, kernel) {
        (Storage::Csc(csc), Kernel::ScCsc | Kernel::VeCsc) => {
            let cp: Vec<u32> = csc.col_ptr().iter().map(|&p| p as u32).collect();
            Ok(DeviceStructure::Csc {
                cp: device.alloc_from(&cp)?,
                rows: device.alloc_from(csc.row_idx())?,
            })
        }
        (Storage::Cooc(cooc), Kernel::ScCooc) => Ok(DeviceStructure::Cooc {
            row_a: device.alloc_from(cooc.row_a())?,
            col_a: device.alloc_from(cooc.col_a())?,
        }),
        _ => Err(TurboBcError::StorageMismatch {
            kernel: kernel.name(),
        }),
    }
}

/// Pull-forward one BFS level on an already-uploaded structure. Shared
/// between the whole-run driver ([`bc_simt`]) and the mid-run segment
/// driver ([`forward_levels_simt`]).
#[allow(clippy::too_many_arguments)] // one slot per device vector
fn forward_level_kernel(
    device: &Device,
    structure: &DeviceStructure,
    kernel: Kernel,
    sigma_d: &DeviceBuffer<i64>,
    f: &DeviceBuffer<i64>,
    f_t: &mut DeviceBuffer<i64>,
) -> Result<turbobc_simt::KernelStats, DeviceError> {
    match (structure, kernel) {
        (DeviceStructure::Cooc { row_a, col_a }, Kernel::ScCooc) => kernels::forward_sccooc(
            device,
            &row_a.dslice(),
            &col_a.dslice(),
            &f.dslice(),
            &mut f_t.dslice_mut(),
        ),
        (DeviceStructure::Csc { cp, rows }, Kernel::ScCsc) => kernels::forward_sccsc(
            device,
            &cp.dslice(),
            &rows.dslice(),
            &sigma_d.dslice(),
            &f.dslice(),
            &mut f_t.dslice_mut(),
        ),
        (DeviceStructure::Csc { cp, rows }, Kernel::VeCsc) => kernels::forward_vecsc(
            device,
            &cp.dslice(),
            &rows.dslice(),
            &sigma_d.dslice(),
            &f.dslice(),
            &mut f_t.dslice_mut(),
        ),
        _ => unreachable!("structure/kernel matched at upload"),
    }
}

/// What one device segment of a hybrid traversal did.
#[derive(Debug)]
pub(crate) struct DeviceSegment {
    /// Frontier size of each level the segment advanced, in order.
    pub levels: Vec<usize>,
    /// True when the traversal finished on the device (empty frontier):
    /// the CPU driver skips straight to the backward stage.
    pub done: bool,
    /// Transient kernel faults absorbed inside the segment.
    pub kernel_retries: u64,
}

/// Advances the dense middle levels of one traversal on the device: the
/// CPU driver's `f`/σ/depth state is imported, pull levels run until
/// `keep_on_device` declines the next one (or the frontier empties), and
/// the state is exported back — the dispatch layer's CPU↔device handoff.
///
/// `start_depth` is the depth already reached by the CPU levels (source
/// at 1); on return `depths`/σ cover every level the segment advanced,
/// and `f` holds the segment's final frontier, so the CPU loop resumes
/// exactly where a pure-CPU run would be — with one caveat: the device's
/// `bfs_update` accumulates σ with plain adds where the host uses
/// saturating adds, so the two diverge only on graphs whose path counts
/// overflow `i64` (such σ-saturating fixtures are filtered from the
/// equivalence batteries).
///
/// The structure is re-uploaded per segment: a hybrid traversal only
/// enters the device for its dense middle, so the upload is paid at most
/// once per source, and between segments the device holds nothing —
/// preserving the §3.4 rule that forward integer state never coexists
/// with backward floats (the backward stage of a hybrid run is always
/// the host's).
#[allow(clippy::too_many_arguments)] // one slot per Algorithm-1 vector
pub(crate) fn forward_levels_simt(
    device: &Device,
    storage: &Storage,
    kernel: Kernel,
    policy: &RecoveryPolicy,
    f: &mut [i64],
    sigma: &mut [i64],
    depths: &mut [u32],
    start_depth: u32,
    keep_on_device: &mut dyn FnMut(u32, usize) -> bool,
) -> Result<DeviceSegment, TurboBcError> {
    let n = storage.n();
    let mut kernel_retries = 0u64;
    let structure = upload_structure(device, storage, kernel)?;

    // Import the CPU traversal state (host → device).
    let mut f_d = device.alloc::<i64>(n)?;
    let mut f_t_d = device.alloc::<i64>(n)?; // zero-filled by alloc
    let mut sigma_d = device.alloc::<i64>(n)?;
    let mut depths_d = device.alloc::<u32>(n)?;
    let mut count_d = device.alloc::<i64>(1)?;
    f_d.import(f);
    sigma_d.import(sigma);
    depths_d.import(depths);

    let mut d = start_depth;
    let mut levels = Vec::new();
    let mut done = false;
    loop {
        retry_kernel(policy, &mut kernel_retries, || {
            forward_level_kernel(device, &structure, kernel, &sigma_d, &f_d, &mut f_t_d)
        })?;
        count_d.fill(0);
        retry_kernel(policy, &mut kernel_retries, || {
            kernels::bfs_update(
                device,
                &mut f_t_d.dslice_mut(),
                &mut sigma_d.dslice_mut(),
                &mut depths_d.dslice_mut(),
                &mut f_d.dslice_mut(),
                d + 1,
                &mut count_d.dslice_mut(),
            )
        })?;
        let count = count_d.host()[0] as usize;
        if count == 0 {
            done = true;
            break;
        }
        d += 1;
        levels.push(count);
        if !keep_on_device(d, count) {
            break;
        }
    }

    // Export the advanced state back to the CPU driver (device → host).
    f_d.export(f);
    sigma_d.export(sigma);
    depths_d.export(depths);
    Ok(DeviceSegment {
        levels,
        done,
        kernel_retries,
    })
}

/// Runs BC for `sources` on the simulated device. Kernel must be
/// resolved (not `Auto`); the storage format must match the kernel.
///
/// `direction` controls the forward SpMV orientation. On the device,
/// [`DirectionMode::Auto`] resolves to pull: the §3.4 footprint budget
/// (`7n + m` words) has no room for a resident CSR next to the pull
/// structure, so per-level switching is a CPU-engine feature. An
/// explicit [`DirectionMode::PushOnly`] uploads `push_csr` (its
/// `n + 1 + m` words exceed the paper model — documented on the mode)
/// and runs the `fwd_push` scatter kernel each level; passing
/// `PushOnly` without a CSR is a [`TurboBcError::StorageMismatch`].
///
/// Emits one attempt's worth of [`TraceEvent`]s to `obs`: `RunStart`,
/// per-level `Level`/`Direction`s (when the observer wants them),
/// per-source `SourceDone`s, and the device's `Metrics`/`Memory` on
/// success.
#[allow(clippy::too_many_arguments)] // one positional slot per engine knob, crate-internal
pub(crate) fn bc_simt(
    device: &Device,
    storage: &Storage,
    kernel: Kernel,
    symmetric: bool,
    sources: &[u32],
    scale: f64,
    policy: &RecoveryPolicy,
    direction: DirectionMode,
    push_csr: Option<&Csr>,
    obs: &mut dyn Observer,
) -> Result<SimtOutcome, TurboBcError> {
    let n = storage.n();
    let m = storage.m();
    let mut kernel_retries = 0u64;
    device.reset_metrics();
    device.reset_peak();
    obs.event(TraceEvent::RunStart {
        engine: "simt",
        kernel,
        n,
        m,
        sources: sources.len(),
    });

    // Host → device transfer of the single structure this run uses.
    let structure = upload_structure(device, storage, kernel)?;

    // Explicit push: the CSR rides *alongside* the pull structure (the
    // backward sweep still needs the latter), deliberately trading the
    // §3.4 budget for scatter-oriented forward traversal.
    let push = match direction {
        DirectionMode::PushOnly => {
            let csr = push_csr.ok_or(TurboBcError::StorageMismatch { kernel: "push" })?;
            let rp: Vec<u32> = csr.row_ptr().iter().map(|&p| p as u32).collect();
            Some((device.alloc_from(&rp)?, device.alloc_from(csr.col_idx())?))
        }
        DirectionMode::Auto | DirectionMode::PullOnly => None,
    };
    let direction_name = if push.is_some() { "push" } else { "pull" };

    // Persistent vectors: σ, S, bc, frontier counter.
    let mut sigma_d = device.alloc::<i64>(n)?;
    let mut depths_d = device.alloc::<u32>(n)?;
    let mut bc_d = device.alloc::<f64>(n)?;
    let mut count_d = device.alloc::<i64>(1)?;

    let mut max_depth = 0u32;
    let mut total_levels = 0u64;
    let mut last_reached = 0usize;

    for &source in sources {
        if n == 0 {
            break;
        }
        let height;
        // ---- Forward (BFS) stage: integer vectors f, f_t. ----
        {
            let mut f = device.alloc::<i64>(n)?;
            let mut f_t = device.alloc::<i64>(n)?;
            retry_kernel(policy, &mut kernel_retries, || {
                kernels::clear(device, "clear_sigma", &mut sigma_d.dslice_mut())
            })?;
            retry_kernel(policy, &mut kernel_retries, || {
                kernels::clear(device, "clear_depths", &mut depths_d.dslice_mut())
            })?;
            retry_kernel(policy, &mut kernel_retries, || {
                kernels::init_source(
                    device,
                    &mut f.dslice_mut(),
                    &mut sigma_d.dslice_mut(),
                    &mut depths_d.dslice_mut(),
                    source as usize,
                )
            })?;
            let mut d = 1u32;
            let mut reached = 1usize;
            loop {
                // `f_t` starts zeroed (fresh allocation) and is reset by
                // the fused `bfs_update` each level (§3.4 kernel fusion).
                retry_kernel(policy, &mut kernel_retries, || {
                    if let Some((rp, ci)) = &push {
                        return kernels::forward_push(
                            device,
                            &rp.dslice(),
                            &ci.dslice(),
                            &f.dslice(),
                            &mut f_t.dslice_mut(),
                        );
                    }
                    forward_level_kernel(device, &structure, kernel, &sigma_d, &f, &mut f_t)
                })?;
                count_d.fill(0);
                retry_kernel(policy, &mut kernel_retries, || {
                    kernels::bfs_update(
                        device,
                        &mut f_t.dslice_mut(),
                        &mut sigma_d.dslice_mut(),
                        &mut depths_d.dslice_mut(),
                        &mut f.dslice_mut(),
                        d + 1,
                        &mut count_d.dslice_mut(),
                    )
                })?;
                // Device → host copy of the continuation flag `c`.
                let count = count_d.host()[0];
                if count == 0 {
                    break;
                }
                d += 1;
                reached += count as usize;
                if obs.wants_levels() {
                    obs.event(TraceEvent::Level {
                        source,
                        depth: d,
                        frontier: count as usize,
                        sigma_updates: count as u64,
                    });
                    obs.event(TraceEvent::Direction {
                        source,
                        depth: d,
                        direction: direction_name,
                        // The device tracks no per-frontier degree sum;
                        // the direction is fixed for the whole run.
                        frontier_edges: 0,
                        threshold: m / DENSE_DIRECTION_FRACTION,
                    });
                }
            }
            height = d;
            max_depth = max_depth.max(height);
            total_levels += height as u64;
            last_reached = reached;
            // f and f_t freed here (§3.4), before the float vectors below.
        }

        // ---- Backward (dependency) stage: float vectors δ, δ_u, δ_ut. ----
        {
            let mut delta = device.alloc::<f64>(n)?;
            let mut delta_u = device.alloc::<f64>(n)?;
            let mut delta_ut = device.alloc::<f64>(n)?;
            let mut depth = height;
            while depth > 1 {
                retry_kernel(policy, &mut kernel_retries, || {
                    kernels::bwd_seed(
                        device,
                        &depths_d.dslice(),
                        &sigma_d.dslice(),
                        &delta.dslice(),
                        depth,
                        &mut delta_u.dslice_mut(),
                    )
                })?;
                // `δ_ut` starts zeroed and is reset by the fused
                // `bwd_accum` each depth.
                retry_kernel(policy, &mut kernel_retries, || {
                    match (&structure, kernel, symmetric) {
                        (DeviceStructure::Cooc { row_a, col_a }, Kernel::ScCooc, _) => {
                            kernels::backward_sccooc(
                                device,
                                &row_a.dslice(),
                                &col_a.dslice(),
                                &delta_u.dslice(),
                                &mut delta_ut.dslice_mut(),
                            )
                        }
                        (DeviceStructure::Csc { cp, rows }, Kernel::ScCsc, true) => {
                            kernels::backward_sccsc_gather(
                                device,
                                &cp.dslice(),
                                &rows.dslice(),
                                &delta_u.dslice(),
                                &mut delta_ut.dslice_mut(),
                            )
                        }
                        (DeviceStructure::Csc { cp, rows }, Kernel::VeCsc, true) => {
                            kernels::backward_vecsc_gather(
                                device,
                                &cp.dslice(),
                                &rows.dslice(),
                                &delta_u.dslice(),
                                &mut delta_ut.dslice_mut(),
                            )
                        }
                        (DeviceStructure::Csc { cp, rows }, _, false) => {
                            kernels::backward_sccsc_scatter(
                                device,
                                &cp.dslice(),
                                &rows.dslice(),
                                &delta_u.dslice(),
                                &mut delta_ut.dslice_mut(),
                            )
                        }
                        _ => unreachable!("structure/kernel matched at build"),
                    }
                })?;
                retry_kernel(policy, &mut kernel_retries, || {
                    kernels::bwd_accum(
                        device,
                        &depths_d.dslice(),
                        &sigma_d.dslice(),
                        &mut delta_ut.dslice_mut(),
                        depth,
                        &mut delta.dslice_mut(),
                    )
                })?;
                depth -= 1;
            }
            retry_kernel(policy, &mut kernel_retries, || {
                kernels::bc_accum(
                    device,
                    &delta.dslice(),
                    source as usize,
                    scale,
                    &mut bc_d.dslice_mut(),
                )
            })?;
        }
        obs.event(TraceEvent::SourceDone {
            source,
            height,
            reached: last_reached,
        });
    }

    let metrics = device.metrics();
    let timing = device.timing();
    let mut modelled_time_s = 0.0;
    let mut busy_time_s = 0.0;
    for (_, s) in metrics.iter() {
        modelled_time_s += timing.kernel_time_s(s);
        busy_time_s += timing.kernel_busy_time_s(s);
    }
    let total = metrics.total();
    let glt_gbs = if busy_time_s > 0.0 {
        total.bytes_loaded as f64 / busy_time_s / 1e9
    } else {
        0.0
    };
    let report = SimtReport {
        metrics,
        memory: device.memory(),
        modelled_time_s,
        glt_gbs,
    };
    obs.event(TraceEvent::Metrics {
        registry: report.metrics.clone(),
    });
    obs.event(TraceEvent::Memory {
        report: report.memory,
    });

    Ok(SimtOutcome {
        bc: bc_d.host().to_vec(),
        sigma: sigma_d.host().to_vec(),
        depths: depths_d.host().to_vec(),
        max_depth,
        total_levels,
        last_reached,
        kernel_retries,
        report,
    })
}

/// Outcome of the batched bit-sliced forward sweep on the device.
#[derive(Debug)]
pub struct MsBfsSimtOutcome {
    /// Vertices reached per source (including the source itself).
    pub reached: Vec<usize>,
    /// Structure sweeps performed (levels summed over blocks) — the
    /// work the batching amortises.
    pub sweeps: u64,
    /// Device metrics, memory, and modelled timing for the run.
    pub report: SimtReport,
}

/// Runs the σ-free batched forward stage (bit-sliced MS-BFS, the
/// `fwd_bits` kernel) on a simulated Titan Xp: sources are chunked
/// into blocks of `batch_width` (clamped to 1..=64) lanes of a single
/// `u64` frontier word per vertex, so each level is **one** structure
/// sweep serving the whole block. The per-source amortisation shows
/// directly in the device metrics: `report.total().load_transactions`
/// divided by the source count drops roughly linearly in the batch
/// width, because the `cp`/`rows` gathers — the dominant traffic — are
/// shared across every lane in the word.
pub fn ms_bfs_simt(
    graph: &turbobc_graph::Graph,
    sources: &[u32],
    batch_width: usize,
) -> Result<MsBfsSimtOutcome, TurboBcError> {
    let csc = graph.to_csc();
    let n = graph.n();
    let b = batch_width.clamp(1, 64);
    let device = Device::titan_xp();
    let policy = RecoveryPolicy::default();
    let mut kernel_retries = 0u64;

    let cp: Vec<u32> = csc.col_ptr().iter().map(|&p| p as u32).collect();
    let cp_d = device.alloc_from(&cp)?;
    let rows_d = device.alloc_from(csc.row_idx())?;

    let mut reached = Vec::with_capacity(sources.len());
    let mut sweeps = 0u64;
    for block in sources.chunks(b) {
        if n == 0 {
            reached.extend(block.iter().map(|_| 0usize));
            continue;
        }
        let mut fbits = vec![0u64; n];
        for (k, &s) in block.iter().enumerate() {
            fbits[s as usize] |= 1 << k;
        }
        let mut f_d = device.alloc_from(&fbits)?;
        let mut seen_d = device.alloc_from(&fbits)?;
        let mut next_d = device.alloc::<u64>(n)?;
        let mut count_d = device.alloc::<i64>(1)?;
        loop {
            // `next` holds the previous level's (now stale) frontier
            // after the swap below; `fwd_bits` only writes fresh words,
            // so it needs an explicit clear each level.
            retry_kernel(&policy, &mut kernel_retries, || {
                kernels::clear(&device, "clear_next", &mut next_d.dslice_mut())
            })?;
            count_d.fill(0);
            retry_kernel(&policy, &mut kernel_retries, || {
                kernels::forward_bits(
                    &device,
                    &cp_d.dslice(),
                    &rows_d.dslice(),
                    &f_d.dslice(),
                    &mut seen_d.dslice_mut(),
                    &mut next_d.dslice_mut(),
                    &mut count_d.dslice_mut(),
                )
            })?;
            sweeps += 1;
            if count_d.host()[0] == 0 {
                break;
            }
            std::mem::swap(&mut f_d, &mut next_d);
        }
        // Per-lane popcount of the final visited sets.
        let seen = seen_d.host();
        for k in 0..block.len() {
            let lane = 1u64 << k;
            reached.push(seen.iter().filter(|&&word| word & lane != 0).count());
        }
    }

    let metrics = device.metrics();
    let timing = device.timing();
    let mut modelled_time_s = 0.0;
    let mut busy_time_s = 0.0;
    for (_, s) in metrics.iter() {
        modelled_time_s += timing.kernel_time_s(s);
        busy_time_s += timing.kernel_busy_time_s(s);
    }
    let total = metrics.total();
    let glt_gbs = if busy_time_s > 0.0 {
        total.bytes_loaded as f64 / busy_time_s / 1e9
    } else {
        0.0
    };
    Ok(MsBfsSimtOutcome {
        reached,
        sweeps,
        report: SimtReport {
            metrics,
            memory: device.memory(),
            modelled_time_s,
            glt_gbs,
        },
    })
}

/// The §3.3 reduction ablation: runs one full forward sweep per variant
/// (shuffle vs shared-memory veCSC) over a mid-BFS state of `graph` and
/// returns the two kernels' stats plus their modelled busy times in
/// seconds: `(shuffle, shared, t_shuffle, t_shared)`.
pub fn vecsc_reduction_ablation(
    graph: &turbobc_graph::Graph,
    source: u32,
) -> (
    turbobc_simt::KernelStats,
    turbobc_simt::KernelStats,
    f64,
    f64,
) {
    let csc = graph.to_csc();
    let n = graph.n();
    // Build a mid-BFS state: σ marks the source's first two levels.
    let bfs = turbobc_graph::bfs(graph, source);
    let mut sigma = vec![0i64; n];
    let mut f = vec![0i64; n];
    for v in 0..n {
        match bfs.depths[v] {
            1 => sigma[v] = 1,
            2 => {
                sigma[v] = 1;
                f[v] = 1;
            }
            _ => {}
        }
    }
    let cp: Vec<u32> = csc.col_ptr().iter().map(|&p| p as u32).collect();

    let run = |shared: bool| -> turbobc_simt::KernelStats {
        let dev = Device::titan_xp();
        let cp_d = dev.alloc_from(&cp).unwrap();
        let rows_d = dev.alloc_from(csc.row_idx()).unwrap();
        let sigma_d = dev.alloc_from(&sigma).unwrap();
        let f_d = dev.alloc_from(&f).unwrap();
        let mut ft_d = dev.alloc::<i64>(n).unwrap();
        if shared {
            kernels::forward_vecsc_shared(
                &dev,
                &cp_d.dslice(),
                &rows_d.dslice(),
                &sigma_d.dslice(),
                &f_d.dslice(),
                &mut ft_d.dslice_mut(),
            )
            .expect("ablation device has no fault plan")
        } else {
            kernels::forward_vecsc(
                &dev,
                &cp_d.dslice(),
                &rows_d.dslice(),
                &sigma_d.dslice(),
                &f_d.dslice(),
                &mut ft_d.dslice_mut(),
            )
            .expect("ablation device has no fault plan")
        }
    };
    let shuffle = run(false);
    let shared = run(true);
    let timing = turbobc_simt::TimingModel::titan_xp();
    (
        shuffle,
        shared,
        timing.kernel_busy_time_s(&shuffle),
        timing.kernel_busy_time_s(&shared),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::{brandes_all_sources, brandes_single_source};
    use turbobc_graph::{gen, Graph};

    fn storage_for(g: &Graph, kernel: Kernel) -> Storage {
        match kernel {
            Kernel::ScCooc => Storage::Cooc(g.to_cooc()),
            _ => Storage::Csc(g.to_csc()),
        }
    }

    fn run(g: &Graph, kernel: Kernel, sources: &[u32]) -> SimtOutcome {
        let dev = Device::titan_xp();
        let storage = storage_for(g, kernel);
        bc_simt(
            &dev,
            &storage,
            kernel,
            !g.directed(),
            sources,
            g.bc_scale(),
            &RecoveryPolicy::default(),
            DirectionMode::PullOnly,
            None,
            &mut crate::observe::NullObserver,
        )
        .unwrap()
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < 1e-9, "bc[{i}] = {g}, want {w}");
        }
    }

    #[test]
    fn all_kernels_match_oracle_on_undirected_graph() {
        let g = gen::small_world(120, 3, 0.2, 5);
        let s = g.default_source();
        let want = brandes_single_source(&g, s);
        for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
            let out = run(&g, kernel, &[s]);
            assert_close(&out.bc, &want);
        }
    }

    #[test]
    fn all_kernels_match_oracle_on_directed_graph() {
        let g = gen::gnm(80, 240, true, 11);
        let s = g.default_source();
        let want = brandes_single_source(&g, s);
        for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
            let out = run(&g, kernel, &[s]);
            assert_close(&out.bc, &want);
        }
    }

    #[test]
    fn exact_bc_matches_oracle() {
        let g = gen::gnm(40, 100, false, 3);
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let out = run(&g, Kernel::ScCsc, &sources);
        assert_close(&out.bc, &brandes_all_sources(&g));
    }

    #[test]
    fn depth_matches_bfs_oracle() {
        let g = gen::grid2d(6, 7);
        let out = run(&g, Kernel::ScCsc, &[0]);
        let bfs = turbobc_graph::bfs(&g, 0);
        assert_eq!(out.max_depth, bfs.height);
        assert_eq!(out.last_reached, bfs.reached);
        assert_eq!(out.depths, bfs.depths);
    }

    #[test]
    fn peak_memory_matches_footprint_formula() {
        let g = gen::delaunay(400, 2);
        let (n, m) = (g.n(), g.m());
        let dev = Device::titan_xp();
        let storage = storage_for(&g, Kernel::ScCsc);
        bc_simt(
            &dev,
            &storage,
            Kernel::ScCsc,
            true,
            &[0],
            0.5,
            &RecoveryPolicy::default(),
            DirectionMode::PullOnly,
            None,
            &mut crate::observe::NullObserver,
        )
        .unwrap();
        let peak = dev.memory().peak;
        // Structure (u32) + per-vertex vectors (σ, bc, δ, δ_u, δ_ut i64/f64,
        // S u32) + counter, with 256-byte rounding slack per allocation.
        let expected: u64 = (4 * (n + 1 + m)          // cp + rows
            + 8 * n + 4 * n + 8 * n                   // σ, S, bc
            + 8                                        // counter
            + 3 * 8 * n) as u64; // backward floats (larger than 2·8n forward ints)
        assert!(
            peak >= expected && peak <= expected + 16 * 256,
            "peak {peak} vs expected {expected}"
        );
    }

    #[test]
    fn forward_ints_are_freed_before_backward_floats() {
        // With capacity for structure + persistent + 3 float vectors but
        // NOT + 5 vectors simultaneously, the run must still succeed.
        let g = gen::grid2d(20, 20);
        let (n, m) = (g.n(), g.m());
        let tight = (4 * (n + 1 + m) + 8 * n + 4 * n + 8 * n + 8 + 3 * 8 * n + 24 * 256) as u64;
        let dev = Device::with_capacity(turbobc_simt::DeviceProps::titan_xp(), tight);
        let storage = storage_for(&g, Kernel::ScCsc);
        let out = bc_simt(
            &dev,
            &storage,
            Kernel::ScCsc,
            true,
            &[0],
            0.5,
            &RecoveryPolicy::default(),
            DirectionMode::PullOnly,
            None,
            &mut crate::observe::NullObserver,
        );
        assert!(
            out.is_ok(),
            "stage-switch dealloc should make this fit: {:?}",
            out.err()
        );
    }

    #[test]
    fn oom_surfaces_as_error() {
        let g = gen::grid2d(30, 30);
        let dev = Device::with_capacity(turbobc_simt::DeviceProps::titan_xp(), 4096);
        let storage = storage_for(&g, Kernel::ScCsc);
        let err = bc_simt(
            &dev,
            &storage,
            Kernel::ScCsc,
            true,
            &[0],
            0.5,
            &RecoveryPolicy::default(),
            DirectionMode::PullOnly,
            None,
            &mut crate::observe::NullObserver,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TurboBcError::Device(DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn oom_mid_run_releases_every_allocation() {
        // Capacity fits the structure + persistent vectors but not the
        // forward frontier pair: the failure happens mid-pipeline, and
        // the error path must return every byte to the ledger.
        let g = gen::grid2d(16, 16);
        let (n, m) = (g.n(), g.m());
        // Structure + persistent + one 8n vector: the second frontier
        // vector (and the 3-vector backward group) cannot fit.
        let partial = (4 * (n + 1 + m) + 8 * n + 4 * n + 8 * n + 8 + 8 * n + 2 * 256) as u64;
        let dev = Device::with_capacity(turbobc_simt::DeviceProps::titan_xp(), partial);
        let storage = storage_for(&g, Kernel::ScCsc);
        let err = bc_simt(
            &dev,
            &storage,
            Kernel::ScCsc,
            true,
            &[0],
            0.5,
            &RecoveryPolicy::default(),
            DirectionMode::PullOnly,
            None,
            &mut crate::observe::NullObserver,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TurboBcError::Device(DeviceError::OutOfMemory { .. })
        ));
        let mem = dev.memory();
        assert_eq!(mem.used, 0, "OOM path leaked {} bytes", mem.used);
        assert_eq!(mem.live_allocations, 0);
        // The device is reusable afterwards on a smaller graph.
        let small = gen::grid2d(4, 4);
        let st = storage_for(&small, Kernel::ScCsc);
        assert!(bc_simt(
            &dev,
            &st,
            Kernel::ScCsc,
            true,
            &[0],
            0.5,
            &RecoveryPolicy::default(),
            DirectionMode::PullOnly,
            None,
            &mut crate::observe::NullObserver
        )
        .is_ok());
    }

    #[test]
    fn explicit_push_direction_matches_pull_on_device() {
        let g = gen::gnm(80, 240, false, 21);
        let s = g.default_source();
        let want = run(&g, Kernel::ScCsc, &[s]); // pull reference
        let csr = g.to_csr();
        let dev = Device::titan_xp();
        let storage = storage_for(&g, Kernel::ScCsc);
        let out = bc_simt(
            &dev,
            &storage,
            Kernel::ScCsc,
            true,
            &[s],
            g.bc_scale(),
            &RecoveryPolicy::default(),
            DirectionMode::PushOnly,
            Some(&csr),
            &mut crate::observe::NullObserver,
        )
        .unwrap();
        assert_eq!(out.bc, want.bc, "push forward must be bit-identical");
        assert_eq!(out.sigma, want.sigma);
        assert_eq!(out.depths, want.depths);
        assert!(out.report.metrics.kernel("fwd_push").is_some());
        assert!(out.report.metrics.kernel("fwd_scCSC").is_none());
        // The CSR upload costs device memory beyond the pull run's.
        assert!(out.report.memory.peak > want.report.memory.peak);
        // PushOnly without a CSR structure is a storage mismatch.
        let err = bc_simt(
            &dev,
            &storage,
            Kernel::ScCsc,
            true,
            &[s],
            0.5,
            &RecoveryPolicy::default(),
            DirectionMode::PushOnly,
            None,
            &mut crate::observe::NullObserver,
        )
        .unwrap_err();
        assert!(matches!(err, TurboBcError::StorageMismatch { .. }));
    }

    #[test]
    fn vecsc_beats_sccsc_efficiency_on_dense_columns() {
        // Mycielski: mean degree ≈ 60 at k=9 — warp-per-column keeps lanes
        // busy, thread-per-column diverges.
        let g = gen::mycielski(9);
        let s = g.default_source();
        let sc = run(&g, Kernel::ScCsc, &[s]);
        let ve = run(&g, Kernel::VeCsc, &[s]);
        let sc_eff = sc
            .report
            .metrics
            .kernel("fwd_scCSC")
            .unwrap()
            .warp_efficiency();
        let ve_eff = ve
            .report
            .metrics
            .kernel("fwd_veCSC")
            .unwrap()
            .warp_efficiency();
        assert!(
            ve_eff > sc_eff,
            "veCSC efficiency {ve_eff:.3} should beat scCSC {sc_eff:.3} on dense columns"
        );
    }

    #[test]
    fn simulator_is_deterministic_across_runs() {
        let g = gen::gnm(70, 240, false, 13);
        let s = g.default_source();
        let run = || {
            let storage = storage_for(&g, Kernel::VeCsc);
            let dev = Device::titan_xp();
            let out = bc_simt(
                &dev,
                &storage,
                Kernel::VeCsc,
                true,
                &[s],
                0.5,
                &RecoveryPolicy::default(),
                DirectionMode::PullOnly,
                None,
                &mut crate::observe::NullObserver,
            )
            .unwrap();
            (out.bc, out.report.modelled_time_s, out.report.total())
        };
        let (bc1, t1, m1) = run();
        let (bc2, t2, m2) = run();
        assert_eq!(bc1, bc2);
        assert_eq!(t1, t2);
        assert_eq!(m1, m2, "metrics (incl. L2 misses) must be bit-identical");
    }

    #[test]
    fn batched_bits_forward_matches_bfs_reached() {
        // Directed + undirected, block chunking past 64 sources, and a
        // non-multiple-of-64 width all agree with the per-source oracle.
        for (g, width) in [
            (gen::gnm(100, 320, true, 5), 64),
            (gen::small_world(90, 3, 0.2, 7), 64),
            (gen::gnm(80, 200, false, 9), 5),
        ] {
            let sources: Vec<u32> = (0..g.n().min(70) as u32).collect();
            let out = ms_bfs_simt(&g, &sources, width).unwrap();
            assert_eq!(out.reached.len(), sources.len());
            for (k, &s) in sources.iter().enumerate() {
                let want = turbobc_graph::bfs(&g, s);
                assert_eq!(out.reached[k], want.reached, "source {s} at width {width}");
            }
            assert!(out.report.metrics.kernel("fwd_bits").is_some());
        }
    }

    #[test]
    fn batched_bits_amortises_load_transactions_per_source() {
        // The whole point of the batch: one structure sweep serves 64
        // lanes, so per-source load transactions collapse versus
        // one-source-per-word runs of the *same* kernel.
        let g = gen::delaunay(600, 3);
        let sources: Vec<u32> = (0..64).collect();
        let wide = ms_bfs_simt(&g, &sources, 64).unwrap();
        let narrow = ms_bfs_simt(&g, &sources, 1).unwrap();
        for k in 0..sources.len() {
            assert_eq!(wide.reached[k], narrow.reached[k], "lane {k}");
        }
        assert!(
            wide.sweeps * 8 < narrow.sweeps,
            "batched {} sweeps vs {} one-lane sweeps",
            wide.sweeps,
            narrow.sweeps
        );
        let per_source =
            |o: &MsBfsSimtOutcome| o.report.total().load_transactions as f64 / sources.len() as f64;
        let (w, n) = (per_source(&wide), per_source(&narrow));
        assert!(
            w * 4.0 < n,
            "batched {w:.0} load transactions/source should be ≪ {n:.0}"
        );
    }

    #[test]
    fn report_contains_kernel_metrics_and_timing() {
        let g = gen::gnm(60, 200, false, 7);
        let out = run(&g, Kernel::ScCooc, &[g.default_source()]);
        assert!(out.report.modelled_time_s > 0.0);
        assert!(out.report.glt_gbs > 0.0);
        assert!(out.report.metrics.kernel("fwd_scCOOC").is_some());
        assert!(out.report.metrics.kernel("bfs_update").is_some());
        assert!(out.report.memory.peak > 0);
        assert!(out.report.total().instructions > 0);
    }
}

//! The TurboBC GPU kernels, written against the SIMT simulator's
//! warp-instruction API.
//!
//! Kernel names recorded in the device metrics registry follow the
//! pipeline of the paper's Figure 2: `fwd_*` (BFS SpMV), `bfs_update`
//! (mask + σ/S update), `bwd_seed`, `bwd_*` (dependency SpMV),
//! `bwd_accum`, and `bc_accum`.

use turbobc_simt::{
    DSlice, DSliceMut, Device, DeviceError, KernelStats, LaunchConfig, Warp, WARP_SIZE,
};

/// Per-lane global indices bounded by `bound`.
#[inline]
fn lane_ids(w: &Warp, bound: usize) -> [Option<usize>; WARP_SIZE] {
    let mut idx = [None; WARP_SIZE];
    for (l, slot) in idx.iter_mut().enumerate() {
        *slot = w.global_id(l).filter(|&g| g < bound);
    }
    idx
}

fn count_some<T>(a: &[Option<T>; WARP_SIZE]) -> usize {
    a.iter().filter(|x| x.is_some()).count()
}

/// `i64` whose `+` saturates, fed to the generic warp tree reductions so
/// they combine per-lane partial σ sums with the same saturating
/// arithmetic as the scalar kernels' `atomic_add` (`Scalar::acc`). A
/// wrapping reduction would drive `f_t` negative on graphs whose path
/// counts reach `i64::MAX`, silently dropping vertices from the BFS.
#[derive(Copy, Clone, Default)]
struct SatI64(i64);

impl std::ops::Add for SatI64 {
    type Output = SatI64;
    fn add(self, rhs: SatI64) -> SatI64 {
        SatI64(self.0.saturating_add(rhs.0))
    }
}

/// `cudaMemset`-style clear kernel (coalesced stores), one thread per
/// element.
pub fn clear<T: Copy + Default>(
    dev: &Device,
    name: &str,
    buf: &mut DSliceMut<'_, T>,
) -> Result<KernelStats, DeviceError> {
    let len = buf.len();
    dev.try_launch(name, LaunchConfig::per_element(len), |w| {
        let idx = lane_ids(w, len);
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            writes[l] = idx[l].map(|i| (i, T::default()));
        }
        w.scatter(buf, &writes);
    })
}

/// Initialises the source vertex (Algorithm 1 lines 15–18): one thread.
pub fn init_source(
    dev: &Device,
    f: &mut DSliceMut<'_, i64>,
    sigma: &mut DSliceMut<'_, i64>,
    depths: &mut DSliceMut<'_, u32>,
    source: usize,
) -> Result<KernelStats, DeviceError> {
    dev.try_launch("bfs_init", LaunchConfig::per_element(1), |w| {
        let mut wf = [None; WARP_SIZE];
        wf[0] = Some((source, 1i64));
        w.scatter(f, &wf);
        let mut ws = [None; WARP_SIZE];
        ws[0] = Some((source, 1i64));
        w.scatter(sigma, &ws);
        let mut wd = [None; WARP_SIZE];
        wd[0] = Some((source, 1u32));
        w.scatter(depths, &wd);
    })
}

/// Forward SpMV, scCOOC mapping (Algorithm 2): one thread per edge;
/// `f_t[col] += f[row]` for `f[row] > 0`, with atomics.
pub fn forward_sccooc(
    dev: &Device,
    row_a: &DSlice<'_, u32>,
    col_a: &DSlice<'_, u32>,
    f: &DSlice<'_, i64>,
    f_t: &mut DSliceMut<'_, i64>,
) -> Result<KernelStats, DeviceError> {
    let m = row_a.len();
    dev.try_launch("fwd_scCOOC", LaunchConfig::per_element(m), |w| {
        let idx = lane_ids(w, m);
        let rows = w.gather(row_a, &idx);
        let mut fidx = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            fidx[l] = idx[l].map(|_| rows[l] as usize);
        }
        let fv = w.gather(f, &fidx);
        let mut cidx = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if fidx[l].is_some() && fv[l] > 0 {
                cidx[l] = idx[l];
            }
        }
        w.alu(count_some(&idx)); // the `f > 0` predicate test
        if count_some(&cidx) > 0 {
            let cols = w.gather(col_a, &cidx);
            let mut ops = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if cidx[l].is_some() {
                    ops[l] = Some((cols[l] as usize, fv[l]));
                }
            }
            w.atomic_add(f_t, &ops);
        }
    })
}

/// Forward SpMV in the **push** direction over CSR (the direction
/// engine's explicit-push step): one thread per row; frontier rows
/// (`f[u] > 0`) scatter their path count along the row's adjacency with
/// atomic adds. Masking happens afterwards in the fused `bfs_update`,
/// exactly as for the unmasked COOC forward, so the masked result is
/// identical to the pull kernels'.
pub fn forward_push(
    dev: &Device,
    rp: &DSlice<'_, u32>,
    ci: &DSlice<'_, u32>,
    f: &DSlice<'_, i64>,
    f_t: &mut DSliceMut<'_, i64>,
) -> Result<KernelStats, DeviceError> {
    let n = rp.len() - 1;
    dev.try_launch("fwd_push", LaunchConfig::per_element(n), |w| {
        let rows = lane_ids(w, n);
        let fv = w.gather(f, &rows);
        let mut live = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if rows[l].is_some() && fv[l] > 0 {
                live[l] = rows[l];
            }
        }
        w.alu(count_some(&rows)); // the `f > 0` frontier predicate
        if count_some(&live) == 0 {
            return;
        }
        let starts = w.gather(rp, &live);
        let mut live1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            live1[l] = live[l].map(|u| u + 1);
        }
        let ends = w.gather(rp, &live1);
        let mut t = 0u32;
        loop {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if live[l].is_some() {
                    let p = starts[l] + t;
                    if p < ends[l] {
                        idx[l] = Some(p as usize);
                    }
                }
            }
            let active = count_some(&idx);
            if active == 0 {
                break;
            }
            let cs = w.gather(ci, &idx);
            let mut ops = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    ops[l] = Some((cs[l] as usize, fv[l]));
                }
            }
            w.atomic_add(f_t, &ops);
            t += 1;
        }
    })
}

/// Forward SpMV, scCSC mapping (Algorithm 3): one thread per column; the
/// `σ == 0` mask is fused; lanes idle while longer columns in the warp
/// finish (the divergence the paper blames for scalar kernels on skewed
/// graphs).
pub fn forward_sccsc(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    sigma: &DSlice<'_, i64>,
    f: &DSlice<'_, i64>,
    f_t: &mut DSliceMut<'_, i64>,
) -> Result<KernelStats, DeviceError> {
    let n = sigma.len();
    dev.try_launch("fwd_scCSC", LaunchConfig::per_element(n), |w| {
        let cols = lane_ids(w, n);
        let sig = w.gather(sigma, &cols);
        let mut live = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if cols[l].is_some() && sig[l] == 0 {
                live[l] = cols[l];
            }
        }
        w.alu(count_some(&cols)); // mask test
        if count_some(&live) == 0 {
            return;
        }
        let starts = w.gather(cp, &live);
        let mut live1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            live1[l] = live[l].map(|j| j + 1);
        }
        let ends = w.gather(cp, &live1);
        let mut sums = [0i64; WARP_SIZE];
        let mut t = 0u32;
        loop {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if live[l].is_some() {
                    let p = starts[l] + t;
                    if p < ends[l] {
                        idx[l] = Some(p as usize);
                    }
                }
            }
            let active = count_some(&idx);
            if active == 0 {
                break;
            }
            let rs = w.gather(rows, &idx);
            let mut fidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                fidx[l] = idx[l].map(|_| rs[l] as usize);
            }
            let fv = w.gather(f, &fidx);
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    sums[l] = sums[l].saturating_add(fv[l]);
                }
            }
            w.alu(active);
            t += 1;
        }
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(j) = live[l] {
                if sums[l] > 0 {
                    writes[l] = Some((j, sums[l]));
                }
            }
        }
        if count_some(&writes) > 0 {
            w.scatter(f_t, &writes);
        }
    })
}

/// Forward SpMV, veCSC mapping (Algorithm 4): one warp per column; lanes
/// stride the column (coalesced `row_A` loads) and a shuffle reduction
/// produces the sum.
pub fn forward_vecsc(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    sigma: &DSlice<'_, i64>,
    f: &DSlice<'_, i64>,
    f_t: &mut DSliceMut<'_, i64>,
) -> Result<KernelStats, DeviceError> {
    let n = sigma.len();
    dev.try_launch("fwd_veCSC", LaunchConfig::per_warp(n), |w| {
        let col = w.id();
        if col >= n {
            w.alu(w.active_lanes());
            return;
        }
        let bcast = [Some(col); WARP_SIZE];
        let sig = w.gather(sigma, &bcast)[0];
        w.alu(WARP_SIZE);
        if sig != 0 {
            return;
        }
        let start = w.gather(cp, &bcast)[0] as usize;
        let end = w.gather(cp, &[Some(col + 1); WARP_SIZE])[0] as usize;
        let mut sums = [0i64; WARP_SIZE];
        let mut base = start;
        while base < end {
            let mut idx = [None; WARP_SIZE];
            for (l, slot) in idx.iter_mut().enumerate() {
                let p = base + l;
                if p < end {
                    *slot = Some(p);
                }
            }
            let rs = w.gather(rows, &idx);
            let mut fidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                fidx[l] = idx[l].map(|_| rs[l] as usize);
            }
            let fv = w.gather(f, &fidx);
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    sums[l] = sums[l].saturating_add(fv[l]);
                }
            }
            w.alu(count_some(&idx));
            base += WARP_SIZE;
        }
        let total = w.reduce_sum(sums.map(SatI64)).0;
        if total > 0 {
            let mut writes = [None; WARP_SIZE];
            writes[0] = Some((col, total));
            w.scatter(f_t, &writes);
        }
    })
}

/// Forward SpMV, veCSC mapping with a **shared-memory** tree reduction
/// instead of the paper's warp shuffle — the Bell & Garland original
/// that Algorithm 4 improves on. Used only by the reduction ablation.
pub fn forward_vecsc_shared(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    sigma: &DSlice<'_, i64>,
    f: &DSlice<'_, i64>,
    f_t: &mut DSliceMut<'_, i64>,
) -> Result<KernelStats, DeviceError> {
    let n = sigma.len();
    dev.try_launch("fwd_veCSC_smem", LaunchConfig::per_warp(n), |w| {
        let col = w.id();
        if col >= n {
            w.alu(w.active_lanes());
            return;
        }
        let bcast = [Some(col); WARP_SIZE];
        let sig = w.gather(sigma, &bcast)[0];
        w.alu(WARP_SIZE);
        if sig != 0 {
            return;
        }
        let start = w.gather(cp, &bcast)[0] as usize;
        let end = w.gather(cp, &[Some(col + 1); WARP_SIZE])[0] as usize;
        let mut sums = [0i64; WARP_SIZE];
        let mut base = start;
        while base < end {
            let mut idx = [None; WARP_SIZE];
            for (l, slot) in idx.iter_mut().enumerate() {
                let p = base + l;
                if p < end {
                    *slot = Some(p);
                }
            }
            let rs = w.gather(rows, &idx);
            let mut fidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                fidx[l] = idx[l].map(|_| rs[l] as usize);
            }
            let fv = w.gather(f, &fidx);
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    sums[l] = sums[l].saturating_add(fv[l]);
                }
            }
            w.alu(count_some(&idx));
            base += WARP_SIZE;
        }
        let total = w.reduce_sum_shared(sums.map(SatI64)).0;
        if total > 0 {
            let mut writes = [None; WARP_SIZE];
            writes[0] = Some((col, total));
            w.scatter(f_t, &writes);
        }
    })
}

/// Batched bit-sliced frontier advance (the forward sweep of the
/// batched multi-source engine, `crate::batched`) over CSC in the
/// `(∨, ∧)` word semiring: one thread per column, one `u64` frontier
/// word per vertex — up to 64 source lanes. The column ORs its
/// neighbours' frontier words, masks with `!seen`, writes the fresh
/// word to `next`, folds it into `seen`, and atomically bumps the
/// lane-discovery counter — all **fused**, so each level is a single
/// structure sweep serving every lane in the batch. Columns whose
/// lanes are all already seen skip the structure probe entirely, the
/// word-level analogue of the scalar kernels' `σ == 0` mask.
pub fn forward_bits(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    fbits: &DSlice<'_, u64>,
    seen: &mut DSliceMut<'_, u64>,
    next: &mut DSliceMut<'_, u64>,
    count: &mut DSliceMut<'_, i64>,
) -> Result<KernelStats, DeviceError> {
    let n = fbits.len();
    dev.try_launch("fwd_bits", LaunchConfig::per_element(n), |w| {
        let cols = lane_ids(w, n);
        let seen_w = w.gather(&seen.as_dslice(), &cols);
        let mut live = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if cols[l].is_some() && seen_w[l] != u64::MAX {
                live[l] = cols[l];
            }
        }
        w.alu(count_some(&cols)); // the saturated-word mask test
        if count_some(&live) == 0 {
            return;
        }
        let starts = w.gather(cp, &live);
        let mut live1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            live1[l] = live[l].map(|j| j + 1);
        }
        let ends = w.gather(cp, &live1);
        let mut acc = [0u64; WARP_SIZE];
        let mut t = 0u32;
        loop {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if live[l].is_some() {
                    let p = starts[l] + t;
                    if p < ends[l] {
                        idx[l] = Some(p as usize);
                    }
                }
            }
            let active = count_some(&idx);
            if active == 0 {
                break;
            }
            let rs = w.gather(rows, &idx);
            let mut fidx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                fidx[l] = idx[l].map(|_| rs[l] as usize);
            }
            let fw = w.gather(fbits, &fidx);
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    acc[l] |= fw[l];
                }
            }
            w.alu(active);
            t += 1;
        }
        let mut wn = [None; WARP_SIZE];
        let mut ws = [None; WARP_SIZE];
        let mut wc = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(j) = live[l] {
                let fresh = acc[l] & !seen_w[l];
                if fresh != 0 {
                    wn[l] = Some((j, fresh));
                    ws[l] = Some((j, seen_w[l] | fresh));
                    wc[l] = Some((0usize, i64::from(fresh.count_ones())));
                }
            }
        }
        w.alu(count_some(&live)); // the `& !seen` mask fold
        if count_some(&wn) > 0 {
            w.scatter(next, &wn);
            w.scatter(seen, &ws);
            w.atomic_add(count, &wc);
        }
    })
}

/// BFS mask + update kernel (Algorithm 1 lines 14 and 20–27 **fused**,
/// per the paper's §3.4 two-kernels-per-level pipeline): one thread per
/// vertex. Newly discovered vertices get `f = f_t`, `σ += f`, `S = d`,
/// and bump the frontier counter; `f_t` is reset to 0 for the next level
/// in the same pass (no separate clear launch).
#[allow(clippy::too_many_arguments)]
pub fn bfs_update(
    dev: &Device,
    f_t: &mut DSliceMut<'_, i64>,
    sigma: &mut DSliceMut<'_, i64>,
    depths: &mut DSliceMut<'_, u32>,
    f: &mut DSliceMut<'_, i64>,
    d: u32,
    count: &mut DSliceMut<'_, i64>,
) -> Result<KernelStats, DeviceError> {
    let n = f_t.len();
    dev.try_launch("bfs_update", LaunchConfig::per_element(n), |w| {
        let idx = lane_ids(w, n);
        let ft = w.gather(&f_t.as_dslice(), &idx);
        // Fused `f_t ← 0` (line 14) for the next level.
        let mut zeroes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            zeroes[l] = idx[l].map(|i| (i, 0i64));
        }
        w.scatter(f_t, &zeroes);
        let sig = w.gather(&sigma.as_dslice(), &idx);
        let mut fresh = [false; WARP_SIZE];
        for l in 0..WARP_SIZE {
            fresh[l] = idx[l].is_some() && sig[l] == 0 && ft[l] != 0;
        }
        w.alu(count_some(&idx));
        // f is rewritten for every vertex (frontier value or 0).
        let mut wf = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            wf[l] = idx[l].map(|i| (i, if fresh[l] { ft[l] } else { 0 }));
        }
        w.scatter(f, &wf);
        let fresh_count = fresh.iter().filter(|&&b| b).count();
        if fresh_count == 0 {
            return;
        }
        let mut ws = [None; WARP_SIZE];
        let mut wd = [None; WARP_SIZE];
        let mut wc = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if fresh[l] {
                let i = idx[l].unwrap();
                ws[l] = Some((i, sig[l] + ft[l]));
                wd[l] = Some((i, d));
                wc[l] = Some((0usize, 1i64));
            }
        }
        w.scatter(sigma, &ws);
        w.scatter(depths, &wd);
        w.atomic_add(count, &wc);
    })
}

/// Backward seed kernel (lines 32–36): `δ_u[i] = (1 + δ[i]) / σ[i]` at
/// depth `d`, else 0. One thread per vertex.
pub fn bwd_seed(
    dev: &Device,
    depths: &DSlice<'_, u32>,
    sigma: &DSlice<'_, i64>,
    delta: &DSlice<'_, f64>,
    depth: u32,
    delta_u: &mut DSliceMut<'_, f64>,
) -> Result<KernelStats, DeviceError> {
    let n = depths.len();
    dev.try_launch("bwd_seed", LaunchConfig::per_element(n), |w| {
        let idx = lane_ids(w, n);
        let dep = w.gather(depths, &idx);
        let sig = w.gather(sigma, &idx);
        let mut sel = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if idx[l].is_some() && dep[l] == depth && sig[l] > 0 {
                sel[l] = idx[l];
            }
        }
        w.alu(count_some(&idx));
        let dl = w.gather(delta, &sel);
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                let v = if sel[l].is_some() {
                    (1.0 + dl[l]) / sig[l] as f64
                } else {
                    0.0
                };
                writes[l] = Some((i, v));
            }
        }
        w.scatter(delta_u, &writes);
    })
}

/// Backward SpMV, scCOOC mapping: one thread per edge;
/// `δ_ut[row] += δ_u[col]` for `δ_u[col] > 0` (atomics).
pub fn backward_sccooc(
    dev: &Device,
    row_a: &DSlice<'_, u32>,
    col_a: &DSlice<'_, u32>,
    delta_u: &DSlice<'_, f64>,
    delta_ut: &mut DSliceMut<'_, f64>,
) -> Result<KernelStats, DeviceError> {
    let m = row_a.len();
    dev.try_launch("bwd_scCOOC", LaunchConfig::per_element(m), |w| {
        let idx = lane_ids(w, m);
        let cols = w.gather(col_a, &idx);
        let mut didx = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            didx[l] = idx[l].map(|_| cols[l] as usize);
        }
        let du = w.gather(delta_u, &didx);
        let mut act = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if didx[l].is_some() && du[l] > 0.0 {
                act[l] = idx[l];
            }
        }
        w.alu(count_some(&idx));
        if count_some(&act) == 0 {
            return;
        }
        let rows = w.gather(row_a, &act);
        let mut ops = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if act[l].is_some() {
                ops[l] = Some((rows[l] as usize, du[l]));
            }
        }
        w.atomic_add(delta_ut, &ops);
    })
}

/// Backward SpMV over CSC for **symmetric** adjacency: column gather
/// (`A = Aᵀ`, so `A δ_u` is a gather like the forward kernel). One
/// thread per column; no atomics.
pub fn backward_sccsc_gather(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    delta_u: &DSlice<'_, f64>,
    delta_ut: &mut DSliceMut<'_, f64>,
) -> Result<KernelStats, DeviceError> {
    let n = cp.len() - 1;
    dev.try_launch("bwd_scCSC", LaunchConfig::per_element(n), |w| {
        let cols = lane_ids(w, n);
        if count_some(&cols) == 0 {
            return;
        }
        let starts = w.gather(cp, &cols);
        let mut cols1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            cols1[l] = cols[l].map(|j| j + 1);
        }
        let ends = w.gather(cp, &cols1);
        let mut sums = [0.0f64; WARP_SIZE];
        let mut t = 0u32;
        loop {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if cols[l].is_some() {
                    let p = starts[l] + t;
                    if p < ends[l] {
                        idx[l] = Some(p as usize);
                    }
                }
            }
            let active = count_some(&idx);
            if active == 0 {
                break;
            }
            let rs = w.gather(rows, &idx);
            let mut didx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                didx[l] = idx[l].map(|_| rs[l] as usize);
            }
            let du = w.gather(delta_u, &didx);
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    sums[l] += du[l];
                }
            }
            w.alu(active);
            t += 1;
        }
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(j) = cols[l] {
                if sums[l] != 0.0 {
                    writes[l] = Some((j, sums[l]));
                }
            }
        }
        if count_some(&writes) > 0 {
            w.scatter(delta_ut, &writes);
        }
    })
}

/// Backward SpMV over CSC for **directed** adjacency: scatter each
/// column's `δ_u` value to its stored rows with atomics (same CSC
/// structure, no transpose copy — preserving the one-format rule).
pub fn backward_sccsc_scatter(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    delta_u: &DSlice<'_, f64>,
    delta_ut: &mut DSliceMut<'_, f64>,
) -> Result<KernelStats, DeviceError> {
    let n = cp.len() - 1;
    dev.try_launch("bwd_scCSC_scatter", LaunchConfig::per_element(n), |w| {
        let cols = lane_ids(w, n);
        let du = w.gather(delta_u, &cols);
        let mut live = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if cols[l].is_some() && du[l] > 0.0 {
                live[l] = cols[l];
            }
        }
        w.alu(count_some(&cols));
        if count_some(&live) == 0 {
            return;
        }
        let starts = w.gather(cp, &live);
        let mut live1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            live1[l] = live[l].map(|j| j + 1);
        }
        let ends = w.gather(cp, &live1);
        let mut t = 0u32;
        loop {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if live[l].is_some() {
                    let p = starts[l] + t;
                    if p < ends[l] {
                        idx[l] = Some(p as usize);
                    }
                }
            }
            let active = count_some(&idx);
            if active == 0 {
                break;
            }
            let rs = w.gather(rows, &idx);
            let mut ops = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    ops[l] = Some((rs[l] as usize, du[l]));
                }
            }
            w.atomic_add(delta_ut, &ops);
            t += 1;
        }
    })
}

/// Backward SpMV, veCSC mapping for symmetric adjacency: one warp per
/// column with strided gather and shuffle reduction.
pub fn backward_vecsc_gather(
    dev: &Device,
    cp: &DSlice<'_, u32>,
    rows: &DSlice<'_, u32>,
    delta_u: &DSlice<'_, f64>,
    delta_ut: &mut DSliceMut<'_, f64>,
) -> Result<KernelStats, DeviceError> {
    let n = cp.len() - 1;
    dev.try_launch("bwd_veCSC", LaunchConfig::per_warp(n), |w| {
        let col = w.id();
        if col >= n {
            w.alu(w.active_lanes());
            return;
        }
        let bcast = [Some(col); WARP_SIZE];
        let start = w.gather(cp, &bcast)[0] as usize;
        let end = w.gather(cp, &[Some(col + 1); WARP_SIZE])[0] as usize;
        let mut sums = [0.0f64; WARP_SIZE];
        let mut base = start;
        while base < end {
            let mut idx = [None; WARP_SIZE];
            for (l, slot) in idx.iter_mut().enumerate() {
                let p = base + l;
                if p < end {
                    *slot = Some(p);
                }
            }
            let rs = w.gather(rows, &idx);
            let mut didx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                didx[l] = idx[l].map(|_| rs[l] as usize);
            }
            let du = w.gather(delta_u, &didx);
            for l in 0..WARP_SIZE {
                if idx[l].is_some() {
                    sums[l] += du[l];
                }
            }
            w.alu(count_some(&idx));
            base += WARP_SIZE;
        }
        let total = w.reduce_sum(sums);
        if total != 0.0 {
            let mut writes = [None; WARP_SIZE];
            writes[0] = Some((col, total));
            w.scatter(delta_ut, &writes);
        }
    })
}

/// Backward accumulate kernel (lines 38–40 with the `δ_ut ← 0` reset
/// for the next depth **fused in**): at depth `d − 1`, `δ += δ_ut · σ`.
/// One thread per vertex.
pub fn bwd_accum(
    dev: &Device,
    depths: &DSlice<'_, u32>,
    sigma: &DSlice<'_, i64>,
    delta_ut: &mut DSliceMut<'_, f64>,
    depth: u32,
    delta: &mut DSliceMut<'_, f64>,
) -> Result<KernelStats, DeviceError> {
    let n = depths.len();
    dev.try_launch("bwd_accum", LaunchConfig::per_element(n), |w| {
        let idx = lane_ids(w, n);
        let dep = w.gather(depths, &idx);
        let mut sel = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if idx[l].is_some() && dep[l] == depth - 1 {
                sel[l] = idx[l];
            }
        }
        w.alu(count_some(&idx));
        let dut = w.gather(&delta_ut.as_dslice(), &sel);
        // Fused reset for the next depth's SpMV.
        let mut zeroes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            zeroes[l] = idx[l].map(|i| (i, 0.0f64));
        }
        w.scatter(delta_ut, &zeroes);
        if count_some(&sel) == 0 {
            return;
        }
        let sig = w.gather(sigma, &sel);
        let dl = w.gather(&delta.as_dslice(), &sel);
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = sel[l] {
                writes[l] = Some((i, dl[l] + dut[l] * sig[l] as f64));
            }
        }
        w.scatter(delta, &writes);
    })
}

/// BC accumulation kernel (lines 43–47): `bc[v] += δ[v] · scale` for
/// every `v ≠ source`. One thread per vertex.
pub fn bc_accum(
    dev: &Device,
    delta: &DSlice<'_, f64>,
    source: usize,
    scale: f64,
    bc: &mut DSliceMut<'_, f64>,
) -> Result<KernelStats, DeviceError> {
    let n = delta.len();
    dev.try_launch("bc_accum", LaunchConfig::per_element(n), |w| {
        let idx = lane_ids(w, n);
        let mut sel = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = idx[l] {
                if i != source {
                    sel[l] = Some(i);
                }
            }
        }
        w.alu(count_some(&idx));
        let dl = w.gather(delta, &sel);
        let old = w.gather(&bc.as_dslice(), &sel);
        let mut writes = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if let Some(i) = sel[l] {
                if dl[l] != 0.0 {
                    writes[l] = Some((i, old[l] + dl[l] * scale));
                }
            }
        }
        if count_some(&writes) > 0 {
            w.scatter(bc, &writes);
        }
    })
}

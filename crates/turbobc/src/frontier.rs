//! Direction-optimising BFS frontier: Beamer's push/pull switching in
//! the language of linear algebra.
//!
//! The paper's forward stage advances every level *pull*-style: a masked
//! SpMV with `Aᵀ` gathers over in-neighbours of every unvisited vertex.
//! That is the right choice for the large mid-BFS frontiers that dominate
//! the work, but early and late levels touch only a handful of vertices —
//! there a *push* step (scatter `f[u]` along the out-edges of the few
//! frontier vertices, i.e. a CSR row gather restricted to a sparse index
//! list) does `O(|frontier edges|)` work instead of `O(n + m)`.
//!
//! This module holds the pieces the engines share:
//!
//! * [`DirectionMode`] — the user-facing knob ([`crate::BcOptions`]
//!   defaults to [`DirectionMode::Auto`]);
//! * [`LevelDirection`] — the per-level decision, reported through
//!   [`crate::observe::TraceEvent::Direction`] so `--profile` output
//!   shows every switch;
//! * [`Frontier`] — the frontier as either a sparse index list or a
//!   dense bitmask, with the conversions the representation switch is
//!   built on (inside the engines the dense representation *is* the `f`
//!   vector the SpMV kernels already consume; `Frontier::Dense`
//!   materialises the same set at the subsystem boundary and for tests);
//! * [`DirectionEngine`] — the switching policy plus the CSR
//!   out-adjacency push steps run over.
//!
//! The threshold is the Ligra rule, shared verbatim with the `ligra`
//! baseline crate through [`turbobc_graph::DENSE_DIRECTION_FRACTION`]:
//! pull when `|frontier| + Σ out-degree(frontier) > m / α` with `α = 20`,
//! push otherwise.
//!
//! **SIMT memory rule.** The paper's §3.4 device budget (`7n + m` words)
//! assumes exactly one sparse structure resident on the GPU. A push step
//! needs CSR(`A`) *in addition to* the pull structure the backward stage
//! uses, so on the SIMT engine [`DirectionMode::Auto`] resolves to
//! pull-only — preserving the budget the memory-pinning tests enforce —
//! and only an explicit [`DirectionMode::PushOnly`] uploads the extra
//! `n + 1 + m` words and runs the push kernel. The CPU engines carry no
//! such budget and switch per level under `Auto`.

use turbobc_graph::{Graph, DENSE_DIRECTION_FRACTION};
use turbobc_sparse::Csr;

/// How the forward stage advances the frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectionMode {
    /// Switch per level with the Beamer/Ligra threshold (CPU engines);
    /// resolves to pull-only on the SIMT engine to preserve the paper's
    /// `7n + m` device-memory rule (see module docs).
    #[default]
    Auto,
    /// Always push: scatter along out-edges of the sparse frontier list.
    /// On the SIMT engine this uploads CSR(`A`) next to the pull
    /// structure, exceeding the paper's device budget by `n + 1 + m`
    /// words.
    PushOnly,
    /// Always pull: the paper's masked CSC/COOC gather, unchanged.
    PullOnly,
}

impl DirectionMode {
    /// Stable lower-case name used in profiles and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            DirectionMode::Auto => "auto",
            DirectionMode::PushOnly => "push",
            DirectionMode::PullOnly => "pull",
        }
    }
}

/// The direction actually used to advance one BFS level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelDirection {
    /// Sparse scatter over the frontier's out-edges (CSR row gather).
    Push,
    /// Dense masked gather over in-neighbours (CSC/COOC SpMV).
    Pull,
}

impl LevelDirection {
    /// Stable lower-case name used in profiles and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            LevelDirection::Push => "push",
            LevelDirection::Pull => "pull",
        }
    }
}

/// A BFS frontier in one of its two representations.
///
/// `Sparse` holds a sorted, duplicate-free vertex index list — the
/// representation push steps iterate. `Dense` holds a bitmask over all
/// `n` vertices plus its population count — the representation pull
/// steps mask with. [`Frontier::compact`] picks between them with the
/// same `α` fraction the direction heuristic uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frontier {
    /// Sorted, duplicate-free vertex indices.
    Sparse(Vec<u32>),
    /// Membership bitmask over all vertices, with its population count.
    Dense {
        /// `bits[v]` is true iff vertex `v` is in the frontier.
        bits: Vec<bool>,
        /// Number of set bits.
        count: usize,
    },
}

impl Frontier {
    /// Builds a sparse frontier, sorting and deduplicating `indices`.
    pub fn sparse(mut indices: Vec<u32>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        Frontier::Sparse(indices)
    }

    /// Builds a dense frontier from a bitmask.
    pub fn dense(bits: Vec<bool>) -> Self {
        let count = bits.iter().filter(|&&b| b).count();
        Frontier::Dense { bits, count }
    }

    /// Builds the frontier of non-zero entries of an engine `f` vector
    /// (the dense representation the SpMV kernels consume).
    pub fn from_mask(f: &[i64]) -> Self {
        Frontier::Sparse(
            f.iter()
                .enumerate()
                .filter(|(_, &v)| v != 0)
                .map(|(i, _)| i as u32)
                .collect(),
        )
    }

    /// Number of frontier vertices. O(1) in both representations: the
    /// dense bitmask carries a population count that every mutation
    /// ([`Frontier::insert`], [`Frontier::union`]) maintains in place —
    /// the mask is never rescanned after construction.
    pub fn len(&self) -> usize {
        match self {
            Frontier::Sparse(ix) => ix.len(),
            Frontier::Dense { count, .. } => *count,
        }
    }

    /// True when no vertex is in the frontier. O(1), like
    /// [`Frontier::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts vertex `v`, returning whether it was newly added. Keeps
    /// the sparse list sorted/deduplicated and the dense population
    /// count current, so [`Frontier::len`] stays O(1). A dense mask
    /// grows as needed to cover `v`.
    pub fn insert(&mut self, v: u32) -> bool {
        match self {
            Frontier::Sparse(ix) => match ix.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    ix.insert(pos, v);
                    true
                }
            },
            Frontier::Dense { bits, count } => {
                let i = v as usize;
                if i >= bits.len() {
                    bits.resize(i + 1, false);
                }
                if bits[i] {
                    false
                } else {
                    bits[i] = true;
                    *count += 1;
                    true
                }
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        match self {
            Frontier::Sparse(ix) => ix.binary_search(&v).is_ok(),
            Frontier::Dense { bits, .. } => bits.get(v as usize).copied().unwrap_or(false),
        }
    }

    /// The sorted index list, whatever the representation.
    pub fn indices(&self) -> Vec<u32> {
        match self {
            Frontier::Sparse(ix) => ix.clone(),
            Frontier::Dense { bits, .. } => bits
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i as u32)
                .collect(),
        }
    }

    /// Converts to the dense representation over `n` vertices.
    ///
    /// Panics if a sparse index is `>= n`.
    pub fn to_dense(&self, n: usize) -> Frontier {
        match self {
            Frontier::Sparse(ix) => {
                let mut bits = vec![false; n];
                for &v in ix {
                    bits[v as usize] = true;
                }
                Frontier::Dense {
                    bits,
                    count: ix.len(),
                }
            }
            Frontier::Dense { .. } => self.clone(),
        }
    }

    /// Converts to the sparse representation.
    pub fn to_sparse(&self) -> Frontier {
        Frontier::Sparse(self.indices())
    }

    /// Set union of two frontiers, in the representation of `self`.
    pub fn union(&self, other: &Frontier) -> Frontier {
        match self {
            Frontier::Sparse(ix) => {
                let mut merged = ix.clone();
                merged.extend(other.indices());
                Frontier::sparse(merged)
            }
            Frontier::Dense { bits, count } => {
                // Inserting through the counting path keeps the
                // population count exact without rescanning the mask.
                let mut merged = Frontier::Dense {
                    bits: bits.clone(),
                    count: *count,
                };
                for v in other.indices() {
                    merged.insert(v);
                }
                merged
            }
        }
    }

    /// Re-compacts into the representation the Beamer rule favours for a
    /// graph with `n` vertices: dense when `|frontier| > n / α`, sparse
    /// otherwise. Membership is preserved exactly.
    pub fn compact(&self, n: usize) -> Frontier {
        if self.len() > n / DENSE_DIRECTION_FRACTION {
            self.to_dense(n.max(self.len()))
        } else {
            self.to_sparse()
        }
    }

    /// Fraction of a graph's `n` vertices in the frontier — the density
    /// signal the [`crate::dispatch::CostModel`] compares against its
    /// enter/exit thresholds when scheduling device segments. Returns
    /// 0.0 for an empty graph.
    pub fn occupancy(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.len() as f64 / n as f64
    }
}

/// What one forward level did — handed to the engines' level hooks and
/// forwarded to observers as [`crate::observe::TraceEvent::Level`] and
/// [`crate::observe::TraceEvent::Direction`] events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LevelReport {
    /// Depth reached (source depth is 1; the first hop reports 2).
    pub depth: u32,
    /// Vertices discovered at this depth.
    pub frontier: usize,
    /// Direction used to advance into this depth.
    pub direction: LevelDirection,
    /// Out-edges of the *previous* frontier — the quantity the Beamer
    /// rule compared against `m / α` (0 when no sparse list was kept).
    pub frontier_edges: usize,
}

/// The per-run direction policy: the mode, the switching threshold and
/// the CSR out-adjacency push steps scatter over.
///
/// Built once per solver; `csr` is `None` under [`DirectionMode::PullOnly`]
/// (pure pull needs no second structure, keeping that configuration's
/// host memory identical to the pre-direction engines).
#[derive(Debug, Clone)]
pub(crate) struct DirectionEngine {
    csr: Option<Csr>,
    mode: DirectionMode,
    m: usize,
}

impl DirectionEngine {
    /// Builds the policy for one graph.
    pub(crate) fn new(graph: &Graph, mode: DirectionMode) -> Self {
        let csr = match mode {
            DirectionMode::PullOnly => None,
            _ => Some(graph.to_csr()),
        };
        DirectionEngine {
            csr,
            mode,
            m: graph.m(),
        }
    }

    /// A pull-only policy with no backing graph — for sweeps over
    /// matrix *views* (the dynamic layer's [`turbobc_sparse::DeltaCsc`])
    /// where no CSR exists to push over. `m` is only used by the
    /// threshold, which pull-only mode never consults.
    pub(crate) fn pull_only(m: usize) -> Self {
        DirectionEngine {
            csr: None,
            mode: DirectionMode::PullOnly,
            m,
        }
    }

    /// The configured mode.
    pub(crate) fn mode(&self) -> DirectionMode {
        self.mode
    }

    /// The CSR out-adjacency, present unless pull-only.
    pub(crate) fn csr(&self) -> Option<&Csr> {
        self.csr.as_ref()
    }

    /// The Beamer threshold `m / α`.
    pub(crate) fn threshold(&self) -> usize {
        self.m / DENSE_DIRECTION_FRACTION
    }

    /// Whether the engines should maintain a sparse frontier index list.
    pub(crate) fn needs_sparse(&self) -> bool {
        self.csr.is_some()
    }

    /// Out-edge count of a sparse frontier (the `Σ out-degree` term of
    /// the switching rule).
    pub(crate) fn frontier_edges(&self, frontier: &[u32]) -> usize {
        match &self.csr {
            Some(csr) => frontier.iter().map(|&u| csr.row_len(u as usize)).sum(),
            None => 0,
        }
    }

    /// Picks the direction for the next level. `have_list` is false when
    /// the engine skipped collecting the sparse list because the frontier
    /// alone already exceeded the threshold — pull is then forced, which
    /// is exactly what the rule would decide (`|frontier| > m / α`
    /// implies `|frontier| + edges > m / α`).
    pub(crate) fn choose(
        &self,
        frontier_len: usize,
        frontier_edges: usize,
        have_list: bool,
    ) -> LevelDirection {
        match self.mode {
            DirectionMode::PushOnly => LevelDirection::Push,
            DirectionMode::PullOnly => LevelDirection::Pull,
            DirectionMode::Auto => {
                if !have_list || frontier_len + frontier_edges > self.threshold() {
                    LevelDirection::Pull
                } else {
                    LevelDirection::Push
                }
            }
        }
    }

    /// Sequential push step: scatter `f` along the out-edges of the
    /// sparse frontier into `f_t` (unmasked — the caller's
    /// `mask_new_frontier` pass filters, exactly as after a COOC pull).
    pub(crate) fn push_seq(&self, frontier: &[u32], f: &[i64], f_t: &mut [i64]) {
        self.csr
            .as_ref()
            .expect("push chosen without a CSR structure")
            .spmv_t_frontier(frontier, f, f_t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn policy(mode: DirectionMode) -> DirectionEngine {
        // 100 distinct directed edges → threshold 5.
        let edges: Vec<(u32, u32)> = (0..50u32)
            .flat_map(|u| [(u, (u + 1) % 50), (u, (u + 2) % 50)])
            .collect();
        let g = Graph::from_edges(50, true, &edges);
        DirectionEngine::new(&g, mode)
    }

    #[test]
    fn auto_switches_at_the_ligra_threshold() {
        let dir = policy(DirectionMode::Auto);
        assert_eq!(dir.threshold(), 100 / DENSE_DIRECTION_FRACTION);
        assert_eq!(dir.choose(1, 2, true), LevelDirection::Push);
        assert_eq!(dir.choose(3, 3, true), LevelDirection::Pull);
        // No list ⇒ the frontier alone exceeded the threshold ⇒ pull.
        assert_eq!(dir.choose(40, 0, false), LevelDirection::Pull);
    }

    #[test]
    fn fixed_modes_ignore_the_threshold() {
        let push = policy(DirectionMode::PushOnly);
        let pull = policy(DirectionMode::PullOnly);
        assert_eq!(push.choose(1000, 1000, true), LevelDirection::Push);
        assert_eq!(pull.choose(0, 0, true), LevelDirection::Pull);
        assert!(push.needs_sparse());
        assert!(!pull.needs_sparse());
        assert_eq!(pull.frontier_edges(&[0, 1, 2]), 0);
    }

    #[test]
    fn frontier_edges_sums_out_degrees() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let dir = DirectionEngine::new(&g, DirectionMode::Auto);
        assert_eq!(dir.frontier_edges(&[0]), 2);
        assert_eq!(dir.frontier_edges(&[0, 1, 2, 3]), 4);
    }

    #[test]
    fn push_seq_matches_pull_semantics() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dir = DirectionEngine::new(&g, DirectionMode::Auto);
        let f = vec![0i64, 2, 3, 0];
        let mut pushed = vec![0i64; 4];
        dir.push_seq(&[1, 2], &f, &mut pushed);
        let mut pulled = vec![0i64; 4];
        g.to_cooc().spmv_t(&f, &mut pulled);
        assert_eq!(pushed, pulled);
    }

    #[test]
    fn frontier_round_trip_and_membership() {
        let f = Frontier::sparse(vec![5, 1, 3, 3, 1]);
        assert_eq!(f, Frontier::Sparse(vec![1, 3, 5]));
        assert_eq!(f.len(), 3);
        assert!(f.contains(3) && !f.contains(2));
        let d = f.to_dense(8);
        assert_eq!(d.len(), 3);
        assert!(d.contains(5) && !d.contains(6));
        assert_eq!(d.to_sparse(), f);
    }

    #[test]
    fn insert_maintains_the_count_in_place() {
        let mut d = Frontier::dense(vec![false; 8]);
        assert!(d.is_empty());
        assert!(d.insert(3));
        assert!(!d.insert(3), "duplicate insert is a no-op");
        assert!(d.insert(9), "insert grows the mask as needed");
        assert_eq!(d.len(), 2, "count tracked without a rescan");
        assert!(d.contains(9) && !d.contains(8));
        let mut s = Frontier::sparse(vec![4]);
        assert!(s.insert(2) && !s.insert(4));
        assert_eq!(s, Frontier::Sparse(vec![2, 4]));
    }

    #[test]
    fn from_mask_collects_nonzero_entries() {
        let f = Frontier::from_mask(&[0, 4, 0, 1, -2]);
        assert_eq!(f, Frontier::Sparse(vec![1, 3, 4]));
    }

    #[test]
    fn occupancy_is_the_density_fraction() {
        let f = Frontier::sparse(vec![0, 1, 2, 3]);
        assert!((f.occupancy(16) - 0.25).abs() < 1e-12);
        assert_eq!(Frontier::sparse(vec![]).occupancy(0), 0.0);
        assert!((f.to_dense(16).occupancy(16) - 0.25).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn sparse_dense_round_trip(mut ix in proptest::collection::vec(0u32..64, 0..40)) {
            ix.sort_unstable();
            ix.dedup();
            let f = Frontier::Sparse(ix.clone());
            let back = f.to_dense(64).to_sparse();
            prop_assert_eq!(back, Frontier::Sparse(ix));
        }

        #[test]
        fn union_is_set_union(
            a in proptest::collection::vec(0u32..64, 0..40),
            b in proptest::collection::vec(0u32..64, 0..40),
        ) {
            let fa = Frontier::sparse(a.clone());
            let fb = Frontier::sparse(b.clone());
            let union_sparse = fa.union(&fb);
            let union_dense = fa.to_dense(64).union(&fb.to_dense(64));
            let mut want: Vec<u32> = a.into_iter().chain(b).collect();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(union_sparse.indices(), want.clone());
            prop_assert_eq!(union_dense.indices(), want.clone());
            prop_assert_eq!(union_dense.len(), want.len());
            // Union membership is the OR of the operands'.
            for v in 0..64u32 {
                prop_assert_eq!(
                    union_sparse.contains(v),
                    fa.contains(v) || fb.contains(v)
                );
            }
        }

        #[test]
        fn compact_preserves_membership_and_is_idempotent(
            ix in proptest::collection::vec(0u32..128, 0..100),
        ) {
            let f = Frontier::sparse(ix);
            let c = f.compact(128);
            prop_assert_eq!(c.indices(), f.indices());
            prop_assert_eq!(c.compact(128), c.clone());
            // The chosen representation obeys the α rule.
            match &c {
                Frontier::Sparse(s) => prop_assert!(s.len() <= 128 / DENSE_DIRECTION_FRACTION),
                Frontier::Dense { count, .. } => {
                    prop_assert!(*count > 128 / DENSE_DIRECTION_FRACTION)
                }
            }
        }
    }
}

//! Solver configuration: kernel, engine, and the automatic kernel
//! selection heuristic of the paper's §3.1.

use crate::checkpoint::CheckpointConfig;
use crate::dispatch::{CostModel, DispatchMode};
use crate::frontier::DirectionMode;
use turbobc_graph::GraphStats;
use turbobc_simt::DeviceProps;

/// Which SpMV kernel (and therefore which single sparse storage format)
/// a BC run uses. The paper's memory rule — *one* format per run — is
/// enforced by construction: the solver materialises only the format its
/// kernel needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Scalar COOC: one thread per edge over the column-sorted edge list
    /// (paper Algorithm 2). Immune to degree skew in its index loads, at
    /// the cost of atomic accumulation.
    ScCooc,
    /// Scalar CSC: one thread per vertex gathering its column (paper
    /// Algorithm 3), with the `σ == 0` mask fused into the gather.
    ScCsc,
    /// Vector CSC: one warp per vertex with a shuffle reduction (paper
    /// Algorithm 4, after Bell & Garland's CSR-vector).
    VeCsc,
    /// Choose per graph by the §3.1/§4 selection rule (mean degree,
    /// degree skew and the scale-free metric `scf`; see
    /// [`VECSC_MEAN_DEGREE`], [`SCCOOC_SKEW_RATIO`] and
    /// [`VECSC_BOUNDARY_MEAN_DEGREE`]).
    Auto,
}

/// Alias spelling out what [`Kernel::Auto`] is: a *choice* the solver
/// resolves per graph. `BcOptions::default()` uses `KernelChoice::Auto`.
pub type KernelChoice = Kernel;

impl Kernel {
    /// Display name matching the paper's acronyms.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::ScCooc => "scCOOC",
            Kernel::ScCsc => "scCSC",
            Kernel::VeCsc => "veCSC",
            Kernel::Auto => "auto",
        }
    }
}

/// Execution engine for a BC run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Sequential Algorithm 1 — the paper's "(sequential)x" baseline.
    Sequential,
    /// Rayon data-parallel engine (the reproduction's CUDA stand-in).
    #[default]
    Parallel,
}

/// How many sources [`crate::BcSolver::bc_batched`] processes per
/// matrix sweep (the bit-sliced SpMM block width `b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchWidth {
    /// Pick the largest power-of-two width `≤ 64` whose batched
    /// footprint ([`crate::footprint::batched_bytes`]) fits the
    /// configured device's global memory — the `7n + m` model extended
    /// with the `n×b` panels.
    #[default]
    Auto,
    /// A fixed width (clamped to at least 1). Widths need not be
    /// multiples of 64; partial last words are handled by the bit-sliced
    /// layout.
    Fixed(usize),
}

/// Which stages of the exact graph-reduction pipeline
/// ([`crate::prep`]) run before the BC engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrepMode {
    /// Decide per graph: full reduction when the graph is undirected and
    /// tree-heavy (≥ 1/8 of vertices have degree 1), components-only
    /// when disconnected, and no preprocessing otherwise — connected
    /// graphs without appendages run bit-identically to [`PrepMode::Off`].
    #[default]
    Auto,
    /// No preprocessing: the legacy single-run path.
    Off,
    /// Only split into connected components (exact, bitwise-identical
    /// reconstruction).
    ComponentsOnly,
    /// Components, then iterated degree-1 folding and identical-vertex
    /// compression with closed-form BC reconstruction. Undirected
    /// graphs only; degrades to [`PrepMode::ComponentsOnly`] on
    /// directed input.
    Full,
}

impl PrepMode {
    /// Display name matching the CLI `--prep` values.
    pub fn name(self) -> &'static str {
        match self {
            PrepMode::Auto => "auto",
            PrepMode::Off => "off",
            PrepMode::ComponentsOnly => "components",
            PrepMode::Full => "full",
        }
    }
}

/// The runtime-scheduling section of [`BcOptions`]: how work is placed
/// onto executors, how the frontier advances, and how wide the batched
/// panels sweep. One coherent knob group — the direction switch, the
/// batch width and the dispatch mode all answer the same question
/// ("where does the next unit of work run?") at level, block, and run
/// granularity respectively.
///
/// `#[non_exhaustive]`: construct through [`BcOptions::builder`] (or
/// `Default`) and mutate public fields.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ExecutionPolicy {
    /// How the forward stage advances the frontier (push, pull, or the
    /// per-level Beamer heuristic; see [`crate::frontier`]).
    pub direction: DirectionMode,
    /// Block width for the batched executor (sources per matrix sweep).
    pub batch_width: BatchWidth,
    /// How [`crate::BcSolver::plan`] chooses executors (see
    /// [`crate::dispatch`]).
    pub dispatch: DispatchMode,
    /// Calibration constants for [`DispatchMode::CostModel`].
    pub cost: CostModel,
}

impl Default for ExecutionPolicy {
    fn default() -> Self {
        ExecutionPolicy {
            direction: DirectionMode::Auto,
            batch_width: BatchWidth::Auto,
            dispatch: DispatchMode::Auto,
            cost: CostModel::default(),
        }
    }
}

/// Options for [`crate::BcSolver`], built with [`BcOptions::builder`].
///
/// The struct is `#[non_exhaustive]`: downstream crates construct it
/// through the builder (or `Default`) and mutate public fields, so new
/// knobs can be added without breaking them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BcOptions {
    /// SpMV kernel (implies the storage format).
    pub kernel: Kernel,
    /// Execution engine.
    pub engine: Engine,
    /// Runtime scheduling: direction, batch width, dispatch mode and
    /// cost-model calibration.
    pub execution: ExecutionPolicy,
    /// What the solver does when a device misbehaves.
    pub recovery: RecoveryPolicy,
    /// Checkpoint/resume configuration for
    /// [`crate::BcSolver::execute_checkpointed`]; `None` means the
    /// checkpointed entry points refuse to run.
    pub checkpoint: Option<CheckpointConfig>,
    /// The simulated GPU that device plans target.
    pub device: DeviceProps,
    /// Graph-reduction pipeline run before the engines (see
    /// [`crate::prep`]).
    pub prep: PrepMode,
}

impl Default for BcOptions {
    fn default() -> Self {
        BcOptions {
            kernel: Kernel::Auto,
            engine: Engine::Parallel,
            execution: ExecutionPolicy::default(),
            recovery: RecoveryPolicy::default(),
            checkpoint: None,
            device: DeviceProps::titan_xp(),
            prep: PrepMode::Auto,
        }
    }
}

impl BcOptions {
    /// Starts a [`BcOptionsBuilder`] from the defaults.
    pub fn builder() -> BcOptionsBuilder {
        BcOptionsBuilder {
            options: BcOptions::default(),
        }
    }
}

/// Typed builder for [`BcOptions`].
///
/// ```
/// use turbobc::{BcOptions, Engine, Kernel};
/// let options = BcOptions::builder()
///     .kernel(Kernel::ScCsc)
///     .engine(Engine::Sequential)
///     .build();
/// assert_eq!(options.kernel, Kernel::ScCsc);
/// ```
#[derive(Debug, Clone)]
pub struct BcOptionsBuilder {
    options: BcOptions,
}

impl BcOptionsBuilder {
    /// Selects the SpMV kernel (and with it the storage format).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.options.kernel = kernel;
        self
    }

    /// Selects the execution engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.options.engine = engine;
        self
    }

    /// Shorthand for `engine(Engine::Sequential)`.
    pub fn sequential(self) -> Self {
        self.engine(Engine::Sequential)
    }

    /// Shorthand for `engine(Engine::Parallel)` (the default).
    pub fn parallel(self) -> Self {
        self.engine(Engine::Parallel)
    }

    /// Selects the frontier direction mode (see [`crate::frontier`]).
    pub fn direction(mut self, direction: DirectionMode) -> Self {
        self.options.execution.direction = direction;
        self
    }

    /// Shorthand for `direction(DirectionMode::PushOnly)`.
    pub fn push_only(self) -> Self {
        self.direction(DirectionMode::PushOnly)
    }

    /// Shorthand for `direction(DirectionMode::PullOnly)` — the paper's
    /// original fixed-pull forward stage.
    pub fn pull_only(self) -> Self {
        self.direction(DirectionMode::PullOnly)
    }

    /// Sets the fault-recovery policy.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.options.recovery = recovery;
        self
    }

    /// Enables checkpoint/resume for multi-source runs.
    pub fn checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.options.checkpoint = Some(checkpoint);
        self
    }

    /// Sets the simulated GPU for `run_simt`.
    pub fn device(mut self, device: DeviceProps) -> Self {
        self.options.device = device;
        self
    }

    /// Fixes the batched engine's block width (sources per sweep).
    pub fn batch_width(mut self, width: usize) -> Self {
        self.options.execution.batch_width = BatchWidth::Fixed(width);
        self
    }

    /// Lets the batched engine pick its block width from the footprint
    /// model and the configured device (the default).
    pub fn batch_width_auto(mut self) -> Self {
        self.options.execution.batch_width = BatchWidth::Auto;
        self
    }

    /// Selects how [`crate::BcSolver::plan`] places work onto executors
    /// (see [`crate::dispatch`]).
    pub fn dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.options.execution.dispatch = dispatch;
        self
    }

    /// Replaces the cost-model calibration constants used by
    /// [`DispatchMode::CostModel`].
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.options.execution.cost = cost;
        self
    }

    /// Selects the graph-reduction pipeline stages (see [`crate::prep`]).
    pub fn prep(mut self, prep: PrepMode) -> Self {
        self.options.prep = prep;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> BcOptions {
        self.options
    }
}

/// How a SIMT run absorbs injected or real device faults.
///
/// * **Transient kernel faults** are retried in place with bounded
///   exponential backoff — a retried kernel launch is bit-identical to
///   an unfaulted one because a faulted launch never executes its body.
/// * **Device OOM** walks the degradation ladder veCSC → scCSC →
///   scCOOC (each rung re-runs the whole request on the cheaper
///   kernel), and finally falls back to the CPU Parallel engine.
/// * Both knobs can be disabled to surface the raw error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per kernel launch before the fault is fatal.
    pub max_kernel_retries: u32,
    /// Retries per interconnect exchange before the fault is fatal
    /// (multi-GPU drivers).
    pub max_link_retries: u32,
    /// Walk the kernel degradation ladder on device OOM.
    pub allow_degradation: bool,
    /// After the ladder is exhausted, rerun on the CPU Parallel engine
    /// instead of failing.
    pub allow_cpu_fallback: bool,
    /// Base backoff delay in microseconds; retry `k` sleeps
    /// `backoff_base_us << k`, capped at ~100 ms. Zero disables
    /// sleeping (useful in tests).
    pub backoff_base_us: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_kernel_retries: 3,
            max_link_retries: 3,
            allow_degradation: true,
            allow_cpu_fallback: true,
            backoff_base_us: 50,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that absorbs nothing: every fault surfaces immediately.
    pub fn strict() -> Self {
        RecoveryPolicy {
            max_kernel_retries: 0,
            max_link_retries: 0,
            allow_degradation: false,
            allow_cpu_fallback: false,
            backoff_base_us: 0,
        }
    }

    /// Backoff before retry attempt `k` (0-based), exponentially grown
    /// and capped at 100 ms.
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let us = self
            .backoff_base_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(100_000);
        std::time::Duration::from_micros(us)
    }
}

/// The next rung down the OOM degradation ladder: veCSC → scCSC →
/// scCOOC → (CPU fallback, represented as `None`).
pub fn degrade(kernel: Kernel) -> Option<Kernel> {
    match kernel {
        Kernel::VeCsc => Some(Kernel::ScCsc),
        Kernel::ScCsc => Some(Kernel::ScCooc),
        Kernel::ScCooc | Kernel::Auto => None,
    }
}

/// Mean out-degree at which `Auto` switches to the warp-per-vertex
/// kernel: a warp has 32 lanes, so columns must hold about a warp's worth
/// of entries before per-lane striding beats one-thread-per-column. The
/// paper's Table 3 (veCSC) graphs have mean degree 81–2297; every scalar
/// table graph has ≤ 14.
pub const VECSC_MEAN_DEGREE: f64 = 24.0;

/// Degree-skew ratio (`max / mean`) at which `Auto` prefers the COOC
/// edge-parallel kernel over the CSC column-parallel one: a column as
/// skewed as this stalls its whole warp/thread while edge-parallel work
/// stays balanced (the paper's Table 2 mawi/Youtube/ASIC observation).
pub const SCCOOC_SKEW_RATIO: f64 = 16.0;

/// Mean out-degree from which the scale-free metric may promote a
/// boundary graph to `veCSC`: graphs with mean degree in
/// `[VECSC_BOUNDARY_MEAN_DEGREE, VECSC_MEAN_DEGREE)` that are
/// scale-free ([`turbobc_graph::SCALE_FREE_SCF`]) and not degree-skewed
/// have *heavy* columns hidden behind a moderate mean — power-law tails
/// the warp kernel strides through while the thread-per-column kernel
/// serialises. Meshes and roads in the same mean-degree band have
/// `scf ≈ 1` and stay on `scCSC`.
pub const VECSC_BOUNDARY_MEAN_DEGREE: f64 = 16.0;

/// The §3.1/§4 selection rule used by [`Kernel::Auto`].
///
/// Primary signals are column density (mean degree → `veCSC`) and degree
/// skew (`max/mean` → `scCOOC`); the paper's scale-free metric `scf`
/// ([`GraphStats::scf`]) acts as a secondary discriminator on the
/// `veCSC`/`scCSC` boundary (see [`VECSC_BOUNDARY_MEAN_DEGREE`]). The
/// mawi super-stars also have elevated `scf`, which is why skew is
/// checked first: the paper assigns them to `scCOOC`, not `veCSC`.
///
/// Reproduces the published best-kernel assignment for 31 of the 33
/// benchmark graphs; the two `smallworld`/`internet` cases sit on the
/// scCSC/scCOOC boundary where the paper reports near-identical times.
///
/// Direction optimisation composes with, rather than replaces, this
/// choice: [`DirectionMode::Auto`] switches the *forward step* between a
/// sparse CSR push and the masked pull of the selected kernel per level
/// (CPU engines), while the SIMT engine keeps the paper's fixed-pull
/// forward stage under `Auto` to preserve the `7n + m` one-format device
/// memory rule (§5 criticises gunrock for exactly that `9n + 2m` cost of
/// holding both adjacency directions). See [`crate::frontier`].
pub fn select_kernel(stats: &GraphStats) -> Kernel {
    let skewed = stats.degree.max as f64 >= SCCOOC_SKEW_RATIO * stats.degree.mean.max(1.0);
    if stats.degree.mean >= VECSC_MEAN_DEGREE
        || (!skewed && stats.degree.mean >= VECSC_BOUNDARY_MEAN_DEGREE && stats.is_scale_free())
    {
        Kernel::VeCsc
    } else if skewed {
        Kernel::ScCooc
    } else {
        Kernel::ScCsc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_graph::{gen, GraphStats};

    #[test]
    fn names_match_paper_acronyms() {
        assert_eq!(Kernel::ScCooc.name(), "scCOOC");
        assert_eq!(Kernel::ScCsc.name(), "scCSC");
        assert_eq!(Kernel::VeCsc.name(), "veCSC");
        assert_eq!(Kernel::Auto.name(), "auto");
    }

    #[test]
    fn dense_irregular_graphs_select_vecsc() {
        let g = gen::mycielski(10);
        assert_eq!(select_kernel(&GraphStats::compute(&g)), Kernel::VeCsc);
        let k = gen::rmat(11, 48, 7);
        assert_eq!(select_kernel(&GraphStats::compute(&k)), Kernel::VeCsc);
    }

    #[test]
    fn skewed_sparse_graphs_select_sccooc() {
        let g = gen::mawi_star(5000, 8, 1);
        assert_eq!(select_kernel(&GraphStats::compute(&g)), Kernel::ScCooc);
        let y = gen::preferential_attachment(4000, 3, 2);
        assert_eq!(select_kernel(&GraphStats::compute(&y)), Kernel::ScCooc);
    }

    #[test]
    fn regular_meshes_select_sccsc() {
        let g = gen::delaunay(2000, 3);
        assert_eq!(select_kernel(&GraphStats::compute(&g)), Kernel::ScCsc);
        let r = gen::road_network(10, 10, 8, 4);
        assert_eq!(select_kernel(&GraphStats::compute(&r)), Kernel::ScCsc);
        let m = gen::markov_mesh(20, 64, 5);
        assert_eq!(select_kernel(&GraphStats::compute(&m)), Kernel::ScCsc);
    }

    #[test]
    fn scf_breaks_the_vecsc_boundary_tie() {
        use turbobc_graph::DegreeStats;
        // Mean degree in the boundary band, no skew: scf decides.
        let boundary = GraphStats {
            n: 1_000,
            m: 20_000,
            degree: DegreeStats {
                max: 200,
                mean: 20.0,
                std: 40.0,
            },
            scf_raw: 0,
            scf: 12.0,
        };
        assert_eq!(select_kernel(&boundary), Kernel::VeCsc);
        // A mesh in the same band has scf ≈ 1 and stays scalar.
        let mesh = GraphStats {
            scf: 1.1,
            ..boundary.clone()
        };
        assert_eq!(select_kernel(&mesh), Kernel::ScCsc);
        // Skew outranks scf: super-stars belong to scCOOC (paper Table 2).
        let star = GraphStats {
            degree: DegreeStats {
                max: 5_000,
                mean: 2.0,
                std: 80.0,
            },
            scf: 50.0,
            ..boundary
        };
        assert_eq!(select_kernel(&star), Kernel::ScCooc);
    }

    #[test]
    fn default_options_are_auto_parallel() {
        let o = BcOptions::default();
        assert_eq!(o.kernel, Kernel::Auto);
        assert_eq!(o.engine, Engine::Parallel);
        assert_eq!(o.execution.direction, DirectionMode::Auto);
        assert_eq!(o.execution.dispatch, DispatchMode::Auto);
        assert_eq!(o.execution.cost, CostModel::default());
        assert_eq!(o.recovery, RecoveryPolicy::default());
        assert!(o.recovery.allow_degradation && o.recovery.allow_cpu_fallback);
        assert!(o.checkpoint.is_none());
        assert_eq!(o.device, DeviceProps::titan_xp());
        assert_eq!(o.execution.batch_width, BatchWidth::Auto);
        assert_eq!(o.prep, PrepMode::Auto);
    }

    #[test]
    fn builder_mirrors_field_assignment() {
        let built = BcOptions::builder()
            .kernel(Kernel::VeCsc)
            .sequential()
            .push_only()
            .recovery(RecoveryPolicy::strict())
            .checkpoint(CheckpointConfig::new("/tmp/x.ckpt", 8))
            .build();
        assert_eq!(built.kernel, Kernel::VeCsc);
        assert_eq!(built.engine, Engine::Sequential);
        assert_eq!(built.execution.direction, DirectionMode::PushOnly);
        assert_eq!(
            BcOptions::builder().pull_only().build().execution.direction,
            DirectionMode::PullOnly
        );
        assert_eq!(built.recovery, RecoveryPolicy::strict());
        assert_eq!(built.checkpoint.as_ref().unwrap().every, 8);
        assert_eq!(
            BcOptions::builder()
                .batch_width(17)
                .build()
                .execution
                .batch_width,
            BatchWidth::Fixed(17)
        );
        assert_eq!(
            BcOptions::builder()
                .batch_width(17)
                .batch_width_auto()
                .build()
                .execution
                .batch_width,
            BatchWidth::Auto
        );
        assert_eq!(
            BcOptions::builder()
                .dispatch(DispatchMode::CostModel)
                .build()
                .execution
                .dispatch,
            DispatchMode::CostModel
        );
        assert_eq!(
            BcOptions::builder()
                .cost_model(CostModel::device_biased())
                .build()
                .execution
                .cost,
            CostModel::device_biased()
        );
        assert_eq!(
            BcOptions::builder().parallel().build(),
            BcOptions::default()
        );
        assert_eq!(
            BcOptions::builder().prep(PrepMode::Full).build().prep,
            PrepMode::Full
        );
        assert_eq!(PrepMode::ComponentsOnly.name(), "components");
    }

    #[test]
    fn degradation_ladder_ends_at_sccooc() {
        assert_eq!(degrade(Kernel::VeCsc), Some(Kernel::ScCsc));
        assert_eq!(degrade(Kernel::ScCsc), Some(Kernel::ScCooc));
        assert_eq!(degrade(Kernel::ScCooc), None);
        assert_eq!(degrade(Kernel::Auto), None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RecoveryPolicy::default();
        assert!(p.backoff(1) > p.backoff(0));
        assert!(p.backoff(60) <= std::time::Duration::from_millis(100));
        assert_eq!(
            RecoveryPolicy::strict().backoff(5),
            std::time::Duration::ZERO
        );
    }
}

//! Solver configuration: kernel, engine, and the automatic kernel
//! selection heuristic of the paper's §3.1.

use crate::checkpoint::CheckpointConfig;
use turbobc_graph::GraphStats;
use turbobc_simt::DeviceProps;

/// Which SpMV kernel (and therefore which single sparse storage format)
/// a BC run uses. The paper's memory rule — *one* format per run — is
/// enforced by construction: the solver materialises only the format its
/// kernel needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Scalar COOC: one thread per edge over the column-sorted edge list
    /// (paper Algorithm 2). Immune to degree skew in its index loads, at
    /// the cost of atomic accumulation.
    ScCooc,
    /// Scalar CSC: one thread per vertex gathering its column (paper
    /// Algorithm 3), with the `σ == 0` mask fused into the gather.
    ScCsc,
    /// Vector CSC: one warp per vertex with a shuffle reduction (paper
    /// Algorithm 4, after Bell & Garland's CSR-vector).
    VeCsc,
    /// Choose per graph by the §3.1 selection rule (mean degree and
    /// degree skew; see [`VECSC_MEAN_DEGREE`] and [`SCCOOC_SKEW_RATIO`]).
    Auto,
}

impl Kernel {
    /// Display name matching the paper's acronyms.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::ScCooc => "scCOOC",
            Kernel::ScCsc => "scCSC",
            Kernel::VeCsc => "veCSC",
            Kernel::Auto => "auto",
        }
    }
}

/// Execution engine for a BC run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Sequential Algorithm 1 — the paper's "(sequential)x" baseline.
    Sequential,
    /// Rayon data-parallel engine (the reproduction's CUDA stand-in).
    #[default]
    Parallel,
}

/// Options for [`crate::BcSolver`], built with [`BcOptions::builder`].
///
/// The struct is `#[non_exhaustive]`: downstream crates construct it
/// through the builder (or `Default`) and mutate public fields, so new
/// knobs can be added without breaking them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BcOptions {
    /// SpMV kernel (implies the storage format).
    pub kernel: Kernel,
    /// Execution engine.
    pub engine: Engine,
    /// What the solver does when a device misbehaves.
    pub recovery: RecoveryPolicy,
    /// Checkpoint/resume configuration for
    /// [`crate::BcSolver::bc_sources_checkpointed`]; `None` means the
    /// checkpointed entry points refuse to run.
    pub checkpoint: Option<CheckpointConfig>,
    /// The simulated GPU that [`crate::BcSolver::run_simt`] targets.
    pub device: DeviceProps,
}

impl Default for BcOptions {
    fn default() -> Self {
        BcOptions {
            kernel: Kernel::Auto,
            engine: Engine::Parallel,
            recovery: RecoveryPolicy::default(),
            checkpoint: None,
            device: DeviceProps::titan_xp(),
        }
    }
}

impl BcOptions {
    /// Starts a [`BcOptionsBuilder`] from the defaults.
    pub fn builder() -> BcOptionsBuilder {
        BcOptionsBuilder {
            options: BcOptions::default(),
        }
    }
}

/// Typed builder for [`BcOptions`].
///
/// ```
/// use turbobc::{BcOptions, Engine, Kernel};
/// let options = BcOptions::builder()
///     .kernel(Kernel::ScCsc)
///     .engine(Engine::Sequential)
///     .build();
/// assert_eq!(options.kernel, Kernel::ScCsc);
/// ```
#[derive(Debug, Clone)]
pub struct BcOptionsBuilder {
    options: BcOptions,
}

impl BcOptionsBuilder {
    /// Selects the SpMV kernel (and with it the storage format).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.options.kernel = kernel;
        self
    }

    /// Selects the execution engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.options.engine = engine;
        self
    }

    /// Shorthand for `engine(Engine::Sequential)`.
    pub fn sequential(self) -> Self {
        self.engine(Engine::Sequential)
    }

    /// Shorthand for `engine(Engine::Parallel)` (the default).
    pub fn parallel(self) -> Self {
        self.engine(Engine::Parallel)
    }

    /// Sets the fault-recovery policy.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.options.recovery = recovery;
        self
    }

    /// Enables checkpoint/resume for multi-source runs.
    pub fn checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.options.checkpoint = Some(checkpoint);
        self
    }

    /// Sets the simulated GPU for `run_simt`.
    pub fn device(mut self, device: DeviceProps) -> Self {
        self.options.device = device;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> BcOptions {
        self.options
    }
}

/// How a SIMT run absorbs injected or real device faults.
///
/// * **Transient kernel faults** are retried in place with bounded
///   exponential backoff — a retried kernel launch is bit-identical to
///   an unfaulted one because a faulted launch never executes its body.
/// * **Device OOM** walks the degradation ladder veCSC → scCSC →
///   scCOOC (each rung re-runs the whole request on the cheaper
///   kernel), and finally falls back to the CPU Parallel engine.
/// * Both knobs can be disabled to surface the raw error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per kernel launch before the fault is fatal.
    pub max_kernel_retries: u32,
    /// Retries per interconnect exchange before the fault is fatal
    /// (multi-GPU drivers).
    pub max_link_retries: u32,
    /// Walk the kernel degradation ladder on device OOM.
    pub allow_degradation: bool,
    /// After the ladder is exhausted, rerun on the CPU Parallel engine
    /// instead of failing.
    pub allow_cpu_fallback: bool,
    /// Base backoff delay in microseconds; retry `k` sleeps
    /// `backoff_base_us << k`, capped at ~100 ms. Zero disables
    /// sleeping (useful in tests).
    pub backoff_base_us: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_kernel_retries: 3,
            max_link_retries: 3,
            allow_degradation: true,
            allow_cpu_fallback: true,
            backoff_base_us: 50,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that absorbs nothing: every fault surfaces immediately.
    pub fn strict() -> Self {
        RecoveryPolicy {
            max_kernel_retries: 0,
            max_link_retries: 0,
            allow_degradation: false,
            allow_cpu_fallback: false,
            backoff_base_us: 0,
        }
    }

    /// Backoff before retry attempt `k` (0-based), exponentially grown
    /// and capped at 100 ms.
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let us = self
            .backoff_base_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(100_000);
        std::time::Duration::from_micros(us)
    }
}

/// The next rung down the OOM degradation ladder: veCSC → scCSC →
/// scCOOC → (CPU fallback, represented as `None`).
pub fn degrade(kernel: Kernel) -> Option<Kernel> {
    match kernel {
        Kernel::VeCsc => Some(Kernel::ScCsc),
        Kernel::ScCsc => Some(Kernel::ScCooc),
        Kernel::ScCooc | Kernel::Auto => None,
    }
}

/// Mean out-degree at which `Auto` switches to the warp-per-vertex
/// kernel: a warp has 32 lanes, so columns must hold about a warp's worth
/// of entries before per-lane striding beats one-thread-per-column. The
/// paper's Table 3 (veCSC) graphs have mean degree 81–2297; every scalar
/// table graph has ≤ 14.
pub const VECSC_MEAN_DEGREE: f64 = 24.0;

/// Degree-skew ratio (`max / mean`) at which `Auto` prefers the COOC
/// edge-parallel kernel over the CSC column-parallel one: a column as
/// skewed as this stalls its whole warp/thread while edge-parallel work
/// stays balanced (the paper's Table 2 mawi/Youtube/ASIC observation).
pub const SCCOOC_SKEW_RATIO: f64 = 16.0;

/// Why there is no push–pull (direction-optimising) kernel here, even
/// though gunrock and Ligra use one: direction optimisation wins in BFS
/// because a *pull* step may stop scanning a vertex's in-neighbours at
/// the **first** parent found. BC's forward stage cannot stop early —
/// `σ(v)` needs the *sum over all* parents at the previous depth — so
/// the pull side loses its advantage, and keeping both adjacency
/// directions would break the paper's one-format-per-run memory rule
/// (§5 criticises gunrock for exactly that `9n + 2m` cost). The masked
/// CSC gather is already the pull direction; COOC is the push-agnostic
/// edge-parallel form.
///
/// The §3.1 selection rule used by [`Kernel::Auto`].
///
/// Reproduces the published best-kernel assignment for 31 of the 33
/// benchmark graphs; the two `smallworld`/`internet` cases sit on the
/// scCSC/scCOOC boundary where the paper reports near-identical times.
pub fn select_kernel(stats: &GraphStats) -> Kernel {
    if stats.degree.mean >= VECSC_MEAN_DEGREE {
        Kernel::VeCsc
    } else if stats.degree.max as f64 >= SCCOOC_SKEW_RATIO * stats.degree.mean.max(1.0) {
        Kernel::ScCooc
    } else {
        Kernel::ScCsc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_graph::{gen, GraphStats};

    #[test]
    fn names_match_paper_acronyms() {
        assert_eq!(Kernel::ScCooc.name(), "scCOOC");
        assert_eq!(Kernel::ScCsc.name(), "scCSC");
        assert_eq!(Kernel::VeCsc.name(), "veCSC");
        assert_eq!(Kernel::Auto.name(), "auto");
    }

    #[test]
    fn dense_irregular_graphs_select_vecsc() {
        let g = gen::mycielski(10);
        assert_eq!(select_kernel(&GraphStats::compute(&g)), Kernel::VeCsc);
        let k = gen::rmat(11, 48, 7);
        assert_eq!(select_kernel(&GraphStats::compute(&k)), Kernel::VeCsc);
    }

    #[test]
    fn skewed_sparse_graphs_select_sccooc() {
        let g = gen::mawi_star(5000, 8, 1);
        assert_eq!(select_kernel(&GraphStats::compute(&g)), Kernel::ScCooc);
        let y = gen::preferential_attachment(4000, 3, 2);
        assert_eq!(select_kernel(&GraphStats::compute(&y)), Kernel::ScCooc);
    }

    #[test]
    fn regular_meshes_select_sccsc() {
        let g = gen::delaunay(2000, 3);
        assert_eq!(select_kernel(&GraphStats::compute(&g)), Kernel::ScCsc);
        let r = gen::road_network(10, 10, 8, 4);
        assert_eq!(select_kernel(&GraphStats::compute(&r)), Kernel::ScCsc);
        let m = gen::markov_mesh(20, 64, 5);
        assert_eq!(select_kernel(&GraphStats::compute(&m)), Kernel::ScCsc);
    }

    #[test]
    fn default_options_are_auto_parallel() {
        let o = BcOptions::default();
        assert_eq!(o.kernel, Kernel::Auto);
        assert_eq!(o.engine, Engine::Parallel);
        assert_eq!(o.recovery, RecoveryPolicy::default());
        assert!(o.recovery.allow_degradation && o.recovery.allow_cpu_fallback);
        assert!(o.checkpoint.is_none());
        assert_eq!(o.device, DeviceProps::titan_xp());
    }

    #[test]
    fn builder_mirrors_field_assignment() {
        let built = BcOptions::builder()
            .kernel(Kernel::VeCsc)
            .sequential()
            .recovery(RecoveryPolicy::strict())
            .checkpoint(CheckpointConfig::new("/tmp/x.ckpt", 8))
            .build();
        assert_eq!(built.kernel, Kernel::VeCsc);
        assert_eq!(built.engine, Engine::Sequential);
        assert_eq!(built.recovery, RecoveryPolicy::strict());
        assert_eq!(built.checkpoint.as_ref().unwrap().every, 8);
        assert_eq!(
            BcOptions::builder().parallel().build(),
            BcOptions::default()
        );
    }

    #[test]
    fn degradation_ladder_ends_at_sccooc() {
        assert_eq!(degrade(Kernel::VeCsc), Some(Kernel::ScCsc));
        assert_eq!(degrade(Kernel::ScCsc), Some(Kernel::ScCooc));
        assert_eq!(degrade(Kernel::ScCooc), None);
        assert_eq!(degrade(Kernel::Auto), None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RecoveryPolicy::default();
        assert!(p.backoff(1) > p.backoff(0));
        assert!(p.backoff(60) <= std::time::Duration::from_millis(100));
        assert_eq!(
            RecoveryPolicy::strict().backoff(5),
            std::time::Duration::ZERO
        );
    }
}

//! Device-memory footprint accounting (the paper's Figure 4).
//!
//! The paper's central memory claim: during the BC computation TurboBC
//! keeps `7n + m` array words on the device against gunrock's `9n + 2m`.
//! The breakdown for the CSC run is
//!
//! | array | size | phase |
//! |---|---|---|
//! | `CP_A` | `n + 1` | whole run |
//! | `row_A` | `m` | whole run |
//! | `σ` | `n` | whole run |
//! | `S` (depths) | `n` | whole run |
//! | `bc` | `n` | whole run |
//! | `f`, `f_t` | `2n` | forward only (freed at stage switch, §3.4) |
//! | `δ`, `δ_u`, `δ_ut` | `3n` | backward only (allocated at stage switch) |
//!
//! Peak = `(n + 1 + m) + 3n + max(2n, 3n) = 7n + m + 1`. The COOC run
//! swaps the structure term for `2m` (both index arrays). These formulas
//! are asserted against the simulator's actual allocation ledger in the
//! `simt_engine` tests.

use crate::Kernel;
use turbobc_simt::{Device, DeviceError};

/// Dry-runs the engine's allocation sequence (§3.4) against a simulated
/// device *without computing anything*, returning the peak bytes the run
/// would need. Fails with [`DeviceError::OutOfMemory`] exactly when the
/// real run would — this is how the Table 4 OOM comparison is generated
/// cheaply at any graph size.
pub fn plan_peak_on_device(
    device: &Device,
    n: usize,
    m: usize,
    kernel: Kernel,
) -> Result<u64, DeviceError> {
    device.reset_peak();
    // Structure arrays (u32 indices).
    let _structure = match kernel {
        Kernel::ScCooc => (device.alloc::<u32>(m)?, device.alloc::<u32>(m)?),
        _ => (device.alloc::<u32>(n + 1)?, device.alloc::<u32>(m)?),
    };
    // Persistent vectors.
    let _sigma = device.alloc::<i64>(n)?;
    let _depths = device.alloc::<u32>(n)?;
    let _bc = device.alloc::<f64>(n)?;
    let _count = device.alloc::<i64>(1)?;
    {
        // Forward-phase integer frontier vectors…
        let _f = device.alloc::<i64>(n)?;
        let _f_t = device.alloc::<i64>(n)?;
        // …freed here, before the backward floats are allocated.
    }
    {
        let _delta = device.alloc::<f64>(n)?;
        let _delta_u = device.alloc::<f64>(n)?;
        let _delta_ut = device.alloc::<f64>(n)?;
    }
    Ok(device.memory().peak)
}

/// Peak device words for a TurboBC run with the given kernel/format.
pub fn turbobc_words(n: usize, m: usize, kernel: Kernel) -> usize {
    let structure = match kernel {
        Kernel::ScCooc => 2 * m,
        Kernel::ScCsc | Kernel::VeCsc => n + 1 + m,
        Kernel::Auto => n + 1 + m,
    };
    // σ + S + bc persistent, plus the larger of the two phase groups
    // (2n forward ints vs 3n backward floats) and the frontier counter.
    structure + 3 * n + 3 * n + 1
}

/// The footprint model in bytes (exact element sizes, before the
/// device's per-allocation rounding): the §3.4 allocation sequence
/// priced with `u32` structure and depth arrays, `i64` σ/frontier
/// vectors and counter, and `f64` bc/δ arrays. The simulated device's
/// measured peak sits at or just above this (each allocation rounds up
/// to the 256-byte granule).
pub fn turbobc_bytes(n: usize, m: usize, kernel: Kernel) -> u64 {
    let structure = match kernel {
        Kernel::ScCooc => 4 * 2 * m,
        _ => 4 * (n + 1 + m),
    };
    // σ(8n) + S(4n) + bc(8n) + count(8) + max(16n forward, 24n backward).
    (structure + 8 * n + 4 * n + 8 * n + 8 + 24 * n) as u64
}

/// The `7n + m` byte model extended to the batched engine: structure
/// arrays plus the `n×b` bit matrices and panels of
/// [`crate::BcSolver::bc_batched`], for block width `b`.
///
/// With `w = ceil(b/64)` words per vertex, the batched run holds three
/// bit matrices (`frontier`/`next`/`seen`, `8·n·w` bytes each), the
/// `σ` (`i64`) and depth (`u32`) panels, the shared `bc` vector, and —
/// at the backward peak — three `f64` panels (`δ`, `δ_u`, `δ_ut`; the
/// forward stage's two `i64` count panels are smaller). `b = 1`
/// degenerates to roughly [`turbobc_bytes`] plus the three bitmask
/// words per vertex.
pub fn batched_bytes(n: usize, m: usize, b: usize, kernel: Kernel) -> u64 {
    let b = b.max(1);
    let w = b.div_ceil(64);
    let structure = match kernel {
        Kernel::ScCooc => 4 * 2 * m,
        _ => 4 * (n + 1 + m),
    } as u64;
    let bits = 3 * 8 * (n as u64) * (w as u64);
    let sigma = 8 * (n as u64) * (b as u64);
    let depths = 4 * (n as u64) * (b as u64);
    let bc = 8 * n as u64;
    // Phase max: 2 i64 count panels forward vs 3 f64 panels backward.
    let phase = 24 * (n as u64) * (b as u64);
    structure + bits + sigma + depths + bc + phase
}

/// Device bytes a hybrid forward segment holds
/// ([`crate::dispatch::PlanStrategy::Hybrid`]): the structure arrays plus
/// the imported traversal state — `f`, `f_t`, σ (`i64`), depths (`u32`)
/// and the frontier counter. Smaller than [`turbobc_bytes`] because the
/// backward floats never visit the device (the hybrid backward stage is
/// always the host's), so this is the admission criterion the dispatcher
/// checks before scheduling device segments.
pub fn hybrid_segment_bytes(n: usize, m: usize, kernel: Kernel) -> u64 {
    let structure = match kernel {
        Kernel::ScCooc => 4 * 2 * m,
        _ => 4 * (n + 1 + m),
    };
    // f(8n) + f_t(8n) + σ(8n) + S(4n) + count(8).
    (structure + 8 * n + 8 * n + 8 * n + 4 * n + 8) as u64
}

/// Picks the batched block width for [`crate::options::BatchWidth::Auto`]:
/// the largest power-of-two `b ≤ 64` whose [`batched_bytes`] footprint
/// fits `budget_bytes`, defaulting to 1 when even `b = 2` does not fit
/// (the batched engine then degenerates to per-source sweeps).
pub fn auto_batch_width(n: usize, m: usize, kernel: Kernel, budget_bytes: u64) -> usize {
    for b in [64usize, 32, 16, 8, 4, 2] {
        if batched_bytes(n, m, b, kernel) <= budget_bytes {
            return b;
        }
    }
    1
}

/// Device words for the gunrock-like baseline (re-exported convenience;
/// the authoritative allocation lives in
/// `turbobc_baselines::gunrock_like`).
pub fn gunrock_words(n: usize, m: usize) -> usize {
    9 * n + 2 * m
}

/// The paper's headline saving: `gunrock − TurboBC ≈ 2n + m` words for
/// the CSC format.
pub fn saving_words(n: usize, m: usize) -> usize {
    gunrock_words(n, m).saturating_sub(turbobc_words(n, m, Kernel::ScCsc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_simt::DeviceProps;

    #[test]
    fn plan_peak_matches_real_run_peak() {
        use crate::{BcOptions, BcSolver};
        let g = turbobc_graph::gen::gnm(500, 2000, false, 9);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let dev = Device::titan_xp();
        let plan = solver
            .plan_pinned(crate::dispatch::ExecutorKind::Simt, &[0])
            .unwrap();
        solver.execute_on(&dev, &plan).unwrap();
        let real_peak = dev.memory().peak;
        let dev2 = Device::titan_xp();
        let plan_peak = plan_peak_on_device(&dev2, g.n(), g.m(), solver.kernel()).unwrap();
        assert_eq!(plan_peak, real_peak);
    }

    #[test]
    fn plan_ooms_on_tiny_device() {
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 1024);
        assert!(matches!(
            plan_peak_on_device(&dev, 10_000, 50_000, Kernel::ScCsc),
            Err(DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn csc_formula_is_seven_n_plus_m() {
        assert_eq!(turbobc_words(100, 1000, Kernel::ScCsc), 7 * 100 + 1000 + 2);
        assert_eq!(turbobc_words(100, 1000, Kernel::VeCsc), 7 * 100 + 1000 + 2);
    }

    #[test]
    fn cooc_formula_uses_both_index_arrays() {
        assert_eq!(
            turbobc_words(100, 1000, Kernel::ScCooc),
            6 * 100 + 2 * 1000 + 1
        );
    }

    #[test]
    fn byte_model_brackets_planned_peak() {
        for &kernel in &[Kernel::ScCsc, Kernel::ScCooc] {
            let (n, m) = (500, 2000);
            let dev = Device::titan_xp();
            let peak = plan_peak_on_device(&dev, n, m, kernel).unwrap();
            let modelled = turbobc_bytes(n, m, kernel);
            assert!(
                peak >= modelled,
                "{kernel:?}: peak {peak} < model {modelled}"
            );
            assert!(
                peak <= modelled + 16 * 256,
                "{kernel:?}: rounding slack exceeded"
            );
        }
    }

    #[test]
    fn batched_bytes_grows_with_width_and_rounds_words() {
        let (n, m) = (1000, 8000);
        // Monotone in b, and width 65 needs a second bitmask word.
        assert!(batched_bytes(n, m, 4, Kernel::ScCsc) < batched_bytes(n, m, 64, Kernel::ScCsc));
        let one_word = batched_bytes(n, m, 64, Kernel::ScCsc);
        let two_words = batched_bytes(n, m, 65, Kernel::ScCsc);
        assert_eq!(
            two_words - one_word,
            3 * 8 * n as u64 + (8 + 4 + 24) * n as u64,
            "one extra lane adds a bitmask word and one panel column"
        );
        // b = 1: the per-source model minus its counter, plus the three
        // bitmask words per vertex the bit-sliced layout adds.
        assert_eq!(
            batched_bytes(n, m, 1, Kernel::ScCsc),
            turbobc_bytes(n, m, Kernel::ScCsc) - 8 + 3 * 8 * n as u64
        );
    }

    #[test]
    fn auto_batch_width_fits_the_budget() {
        let (n, m) = (10_000, 80_000);
        // A Titan Xp-sized budget takes the full 64 lanes.
        let budget = DeviceProps::titan_xp().global_mem_bytes;
        assert_eq!(auto_batch_width(n, m, Kernel::ScCsc, budget), 64);
        // A budget that only fits ~8 lanes steps down.
        let tight = batched_bytes(n, m, 8, Kernel::ScCsc);
        assert_eq!(auto_batch_width(n, m, Kernel::ScCsc, tight), 8);
        assert_eq!(auto_batch_width(n, m, Kernel::ScCsc, tight - 1), 4);
        // Nothing fits: degenerate to per-source width 1.
        assert_eq!(auto_batch_width(n, m, Kernel::ScCsc, 0), 1);
    }

    #[test]
    fn hybrid_segment_stays_under_the_full_run_model() {
        for &kernel in &[Kernel::ScCsc, Kernel::ScCooc, Kernel::VeCsc] {
            let (n, m) = (1000, 8000);
            assert!(
                hybrid_segment_bytes(n, m, kernel) < turbobc_bytes(n, m, kernel),
                "a forward-only segment must need less than a whole run"
            );
        }
        // CSC: structure + 28n state + counter.
        assert_eq!(
            hybrid_segment_bytes(100, 1000, Kernel::ScCsc),
            (4 * (100 + 1 + 1000) + 28 * 100 + 8) as u64
        );
    }

    #[test]
    fn saving_approximates_two_n_plus_m() {
        let n = 10_000;
        let m = 80_000;
        let s = saving_words(n, m);
        assert!((s as i64 - (2 * n + m) as i64).abs() < 8, "saving {s}");
    }

    #[test]
    fn turbobc_always_below_gunrock() {
        for &(n, m) in &[(10usize, 20usize), (1000, 5000), (1 << 20, 16 << 20)] {
            assert!(turbobc_words(n, m, Kernel::ScCsc) < gunrock_words(n, m));
            assert!(turbobc_words(n, m, Kernel::ScCooc) < gunrock_words(n, m));
        }
    }
}

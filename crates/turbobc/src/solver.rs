//! The public solver: ties storage, kernel selection, engines and the
//! fault-recovery policy together.

use crate::approx::{bc_approx_with_solver, ApproxBcResult};
use crate::batched::{bc_block_traced, BatchScratch};
use crate::checkpoint;
use crate::closeness::{closeness_with_solver, ClosenessResult};
use crate::edge::{edge_bc_with_solver, EdgeBcResult};
use crate::error::{CheckpointError, TurboBcError};
use crate::footprint;
use crate::frontier::{DirectionEngine, DirectionMode, LevelReport};
use crate::msbfs::{ms_bfs_on_storage, MsBfsResult};
use crate::observe::{NullObserver, Observer, TraceEvent};
use crate::options::{
    degrade, select_kernel, BatchWidth, BcOptions, Engine, Kernel, RecoveryPolicy,
};
use crate::par::{bc_source_par, bc_source_par_traced, ParScratch, ParStorage};
use crate::result::{BcResult, RecoveryLog, RunStats, SimtReport};
use crate::seq::{bc_source_seq_traced, SeqScratch, SourceRun, Storage};
use crate::simt_engine::bc_simt;
use std::time::Instant;
use turbobc_graph::{Graph, GraphStats, VertexId};
use turbobc_simt::{Device, DeviceError};
use turbobc_sparse::{Cooc, Index};

/// Source count at which the Parallel engine additionally parallelises
/// *across* sources (each task owns its scratch vectors, contributions
/// are summed) — the scalable path for exact BC.
const SOURCE_PAR_THRESHOLD: usize = 16;

/// Engine-matched reusable scratch for the per-source CPU loops:
/// allocated once per run, cleared per source (not dropped), so the
/// source loop does no per-source allocation.
enum CpuScratch {
    Seq(SeqScratch),
    Par(ParScratch),
}

impl CpuScratch {
    fn for_engine(engine: Engine, n: usize) -> Self {
        match engine {
            Engine::Sequential => CpuScratch::Seq(SeqScratch::new(n)),
            Engine::Parallel => CpuScratch::Par(ParScratch::new(n)),
        }
    }
}

/// A prepared BC computation over one graph.
///
/// Construction validates the graph, resolves the kernel (running the
/// paper's §3.1 selection for [`Kernel::Auto`]) and materialises
/// **exactly one** sparse storage format — COOC for `scCOOC`, CSC for
/// `scCSC`/`veCSC` — per the paper's memory rule.
pub struct BcSolver {
    graph: Graph,
    storage: Storage,
    kernel: Kernel,
    options: BcOptions,
    symmetric: bool,
    scale: f64,
    n: usize,
    m: usize,
    stats: GraphStats,
    dir: DirectionEngine,
}

impl BcSolver {
    /// Prepares a solver for `graph` with the given options.
    ///
    /// Fails with [`TurboBcError::EmptyGraph`] on a zero-vertex graph —
    /// BC over nothing is a caller bug, not an all-zero answer.
    pub fn new(graph: &Graph, options: BcOptions) -> Result<Self, TurboBcError> {
        if graph.n() == 0 {
            return Err(TurboBcError::EmptyGraph);
        }
        let stats = GraphStats::compute(graph);
        let kernel = match options.kernel {
            Kernel::Auto => select_kernel(&stats),
            k => k,
        };
        let storage = match kernel {
            Kernel::ScCooc => Storage::Cooc(graph.to_cooc()),
            _ => Storage::Csc(graph.to_csc()),
        };
        let dir = DirectionEngine::new(graph, options.direction);
        Ok(BcSolver {
            dir,
            graph: graph.clone(),
            storage,
            kernel,
            // Undirected graphs are stored as their symmetric closure.
            symmetric: !graph.directed(),
            scale: graph.bc_scale(),
            n: graph.n(),
            m: graph.m(),
            stats,
            options,
        })
    }

    /// The kernel this solver resolved to.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The engine this solver runs on.
    pub fn engine(&self) -> Engine {
        self.options.engine
    }

    /// The recovery policy applied to SIMT and multi-GPU runs.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.options.recovery
    }

    /// The full options this solver was built with.
    pub fn options(&self) -> &BcOptions {
        &self.options
    }

    /// The graph this solver was prepared for (host-side; the device
    /// memory rule of §3.4 concerns device arrays only).
    pub(crate) fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored arc count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Graph statistics computed at construction (degree profile, scf).
    pub fn graph_stats(&self) -> &GraphStats {
        &self.stats
    }

    fn validate_sources(&self, sources: &[VertexId]) -> Result<(), TurboBcError> {
        for &s in sources {
            if s as usize >= self.n {
                return Err(TurboBcError::InvalidSource {
                    source: s,
                    n: self.n,
                });
            }
        }
        Ok(())
    }

    /// BC contribution of a single source (the paper's "BC/vertex"
    /// experiments, Tables 1–4).
    pub fn bc_single_source(&self, source: VertexId) -> Result<BcResult, TurboBcError> {
        self.bc_sources(&[source])
    }

    /// Exact BC: all `n` sources (Table 5).
    pub fn bc_exact(&self) -> Result<BcResult, TurboBcError> {
        let sources: Vec<VertexId> = (0..self.n as VertexId).collect();
        self.bc_sources(&sources)
    }

    /// Approximate BC from `k` evenly-spaced pivot sources (Brandes &
    /// Pich-style sampling; an extension beyond the paper used by the
    /// examples).
    pub fn bc_sampled(&self, k: usize) -> Result<BcResult, TurboBcError> {
        let k = k.clamp(1, self.n.max(1));
        let stride = (self.n / k).max(1);
        let sources: Vec<VertexId> = (0..self.n)
            .step_by(stride)
            .take(k)
            .map(|s| s as VertexId)
            .collect();
        self.bc_sources(&sources)
    }

    /// BC accumulated over an explicit source set. Every source must be
    /// a vertex of the graph ([`TurboBcError::InvalidSource`]).
    pub fn bc_sources(&self, sources: &[VertexId]) -> Result<BcResult, TurboBcError> {
        self.bc_sources_observed(sources, &mut NullObserver)
    }

    /// [`BcSolver::bc_sources`] with the run traced into `obs` — the
    /// observability entry point for the CPU engines. An observer that
    /// wants per-level events forces the across-sources parallel path
    /// off (per-kernel parallelism stays on), so the trace is an ordered
    /// per-source timeline.
    pub fn bc_sources_observed(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<BcResult, TurboBcError> {
        self.validate_sources(sources)?;
        Ok(self.run_cpu_observed(sources, self.options.engine, obs))
    }

    /// One source on the CPU (engine-selected kernel structure),
    /// accumulating into the caller's buffers. `scratch` must have been
    /// built by [`CpuScratch::for_engine`] with the same engine — the
    /// source loops allocate it once and reuse it across sources.
    #[allow(clippy::too_many_arguments)]
    fn one_source(
        &self,
        source: usize,
        engine: Engine,
        bc: &mut [f64],
        sigma: &mut [i64],
        depths: &mut [u32],
        scratch: &mut CpuScratch,
        on_level: &mut dyn FnMut(LevelReport),
    ) -> SourceRun {
        match (engine, scratch) {
            (Engine::Sequential, CpuScratch::Seq(scratch)) => bc_source_seq_traced(
                &self.storage,
                &self.dir,
                source,
                self.scale,
                bc,
                sigma,
                depths,
                scratch,
                on_level,
            ),
            (Engine::Parallel, CpuScratch::Par(scratch)) => {
                let storage = match &self.storage {
                    Storage::Csc(csc) => ParStorage::Csc {
                        csc,
                        symmetric: self.symmetric,
                    },
                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                };
                bc_source_par_traced(
                    &storage, &self.dir, source, self.scale, bc, sigma, depths, scratch, on_level,
                )
            }
            _ => unreachable!("scratch built for a different engine"),
        }
    }

    /// The CPU engines with the run traced into `obs` (validation
    /// already done).
    fn run_cpu_observed(
        &self,
        sources: &[VertexId],
        engine: Engine,
        obs: &mut dyn Observer,
    ) -> BcResult {
        let start = Instant::now();
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: match engine {
                Engine::Sequential => "seq",
                Engine::Parallel => "par",
            },
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        match engine {
            Engine::Parallel if sources.len() >= SOURCE_PAR_THRESHOLD && !obs.wants_levels() => {
                // Exact/sampled runs: parallelise across sources too —
                // each task owns its scratch, contributions are summed.
                use rayon::prelude::*;
                let storage = match &self.storage {
                    Storage::Csc(csc) => ParStorage::Csc {
                        csc,
                        symmetric: self.symmetric,
                    },
                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                };
                let n = self.n;
                let chunk = sources.len().div_ceil(rayon::current_num_threads().max(1));
                let (sum_bc, max_depth, total_levels) = sources
                    .par_chunks(chunk.max(1))
                    .map(|batch| {
                        let mut local_bc = vec![0.0f64; n];
                        let mut local_sigma = vec![0i64; n];
                        let mut local_depths = vec![0u32; n];
                        // One scratch per chunk, reused across the
                        // chunk's sources.
                        let mut scratch = ParScratch::new(n);
                        let mut max_d = 0u32;
                        let mut levels = 0u64;
                        for &s in batch {
                            let run = bc_source_par(
                                &storage,
                                &self.dir,
                                s as usize,
                                self.scale,
                                &mut local_bc,
                                &mut local_sigma,
                                &mut local_depths,
                                &mut scratch,
                            );
                            max_d = max_d.max(run.height);
                            levels += run.height as u64;
                        }
                        (local_bc, max_d, levels)
                    })
                    .reduce(
                        || (vec![0.0f64; n], 0u32, 0u64),
                        |(mut a, da, la), (b, db, lb)| {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                            (a, da.max(db), la + lb)
                        },
                    );
                bc = sum_bc;
                stats.max_depth = max_depth;
                stats.total_levels = total_levels;
                // Deterministic σ/S surface: rerun the last source once
                // into the output buffers (without re-accumulating bc).
                if let Some(&last) = sources.last() {
                    let mut scratch_bc = vec![0.0f64; n];
                    let run = bc_source_par(
                        &storage,
                        &self.dir,
                        last as usize,
                        self.scale,
                        &mut scratch_bc,
                        &mut sigma,
                        &mut depths,
                        &mut ParScratch::new(n),
                    );
                    stats.last_reached = run.reached;
                }
            }
            _ => {
                // Sequential engine, small parallel runs, and every
                // level-observed run: ordered per-source loop (the
                // Parallel engine still parallelises within each
                // kernel), so the trace is a clean timeline.
                let wants = obs.wants_levels();
                let threshold = self.dir.threshold();
                let mut scratch = CpuScratch::for_engine(engine, self.n);
                for &s in sources {
                    let run = {
                        let mut on_level = |lr: LevelReport| {
                            if wants {
                                obs.event(TraceEvent::Level {
                                    source: s,
                                    depth: lr.depth,
                                    frontier: lr.frontier,
                                    sigma_updates: lr.frontier as u64,
                                });
                                obs.event(TraceEvent::Direction {
                                    source: s,
                                    depth: lr.depth,
                                    direction: lr.direction.name(),
                                    frontier_edges: lr.frontier_edges,
                                    threshold,
                                });
                            }
                        };
                        self.one_source(
                            s as usize,
                            engine,
                            &mut bc,
                            &mut sigma,
                            &mut depths,
                            &mut scratch,
                            &mut on_level,
                        )
                    };
                    stats.max_depth = stats.max_depth.max(run.height);
                    stats.total_levels += run.height as u64;
                    stats.last_reached = run.reached;
                    obs.event(TraceEvent::SourceDone {
                        source: s,
                        height: run.height,
                        reached: run.reached,
                    });
                }
            }
        }
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        BcResult {
            bc,
            sigma,
            depths,
            stats,
        }
    }

    /// The block width [`BcSolver::bc_batched`] will use for a run over
    /// `n_sources` sources: [`BatchWidth::Fixed`] verbatim (floored at
    /// 1), [`BatchWidth::Auto`] from the `7n + m`-style footprint model
    /// against the configured device's memory
    /// ([`footprint::auto_batch_width`]), both clamped to the source
    /// count — a block never holds dead lanes.
    pub fn resolve_batch_width(&self, n_sources: usize) -> usize {
        let width = match self.options.batch_width {
            BatchWidth::Fixed(b) => b.max(1),
            BatchWidth::Auto => footprint::auto_batch_width(
                self.n,
                self.m,
                self.kernel,
                self.options.device.global_mem_bytes,
            ),
        };
        width.min(n_sources.max(1))
    }

    /// Batched multi-source BC: sources are processed in blocks of
    /// [`BcOptions::batch_width`] lanes over a bit-sliced `n×b` frontier,
    /// so each BFS level costs **one** masked SpMM for the whole block
    /// instead of one sweep per source — the per-source matrix traffic
    /// drops by the block's height spread. `σ` and the depth vector
    /// become `n×b` panels; the backward stage batches the dependency
    /// accumulation the same way and folds the `δ` panels into the
    /// shared `bc` vector.
    ///
    /// The result is numerically equivalent to [`BcSolver::bc_sources`]
    /// (and bit-identical to the Sequential engine for the CSC kernels —
    /// the panels preserve per-lane operation order); `stats.total_levels`
    /// counts *matrix sweeps*, so comparing it against a per-source
    /// run's count shows the amortization directly.
    pub fn bc_batched(&self, sources: &[VertexId]) -> Result<BcResult, TurboBcError> {
        self.bc_batched_observed(sources, &mut NullObserver)
    }

    /// [`BcSolver::bc_batched`] with the run traced into `obs`: one
    /// [`TraceEvent::Block`] per block (its width and matrix-sweep
    /// count), per-level events under the block's first source, and the
    /// usual per-source completions.
    pub fn bc_batched_observed(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<BcResult, TurboBcError> {
        self.validate_sources(sources)?;
        let start = Instant::now();
        let width = self.resolve_batch_width(sources.len());
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: "batched",
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        let mut scratch = BatchScratch::new(self.n, width);
        let wants = obs.wants_levels();
        let threshold = self.dir.threshold();
        for block in sources.chunks(width) {
            let first = block[0];
            let run = {
                let mut on_level = |lr: LevelReport| {
                    if wants {
                        obs.event(TraceEvent::Level {
                            source: first,
                            depth: lr.depth,
                            frontier: lr.frontier,
                            sigma_updates: lr.frontier as u64,
                        });
                        obs.event(TraceEvent::Direction {
                            source: first,
                            depth: lr.depth,
                            direction: lr.direction.name(),
                            frontier_edges: lr.frontier_edges,
                            threshold,
                        });
                    }
                };
                bc_block_traced(
                    &self.storage,
                    self.kernel,
                    &self.dir,
                    block,
                    self.scale,
                    &mut bc,
                    &mut scratch,
                    &mut on_level,
                )
            };
            // One matrix sweep advanced every lane of the block — this
            // is the amortization the engine exists for.
            stats.total_levels += run.sweeps as u64;
            obs.event(TraceEvent::Block {
                first_source: first,
                width: block.len(),
                sweeps: run.sweeps,
            });
            for (k, &s) in block.iter().enumerate() {
                stats.max_depth = stats.max_depth.max(run.heights[k]);
                stats.last_reached = run.reached[k];
                obs.event(TraceEvent::SourceDone {
                    source: s,
                    height: run.heights[k],
                    reached: run.reached[k],
                });
            }
        }
        // Deterministic σ/S surface: the last source's lane is still in
        // the scratch panels of the final block.
        if !sources.is_empty() {
            scratch.extract_lane(
                (sources.len() - 1) % scratch.width(),
                &mut sigma,
                &mut depths,
            );
        }
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        Ok(BcResult {
            bc,
            sigma,
            depths,
            stats,
        })
    }

    /// Multi-source BC with periodic checkpoints and resume.
    ///
    /// Sources are processed in batches of `ckpt.every`; after each
    /// batch the accumulated `bc` and the completed-source count are
    /// atomically snapshotted to `ckpt.path`. A run restarted with
    /// [`CheckpointConfig::resume`] skips the completed prefix and
    /// produces **bit-identical** `bc` to an uninterrupted checkpointed
    /// run: batches are always summed source-by-source into a
    /// batch-local vector and folded into the accumulator in batch
    /// order, so the floating-point association never depends on where
    /// a kill happened.
    ///
    /// `stats.recovery.resumed_sources` records how many sources the
    /// checkpoint covered; `stats.max_depth`/`total_levels` cover only
    /// the work done by *this* process.
    ///
    /// The checkpoint configuration comes from the solver's options
    /// (`BcOptions::builder().checkpoint(..)`); calling this on a solver
    /// without one fails with [`CheckpointError::NotConfigured`].
    pub fn bc_sources_checkpointed(&self, sources: &[VertexId]) -> Result<BcResult, TurboBcError> {
        let ckpt = self
            .options
            .checkpoint
            .as_ref()
            .ok_or(CheckpointError::NotConfigured)?;
        self.validate_sources(sources)?;
        let start = Instant::now();
        let every = ckpt.every.max(1);
        let fp = checkpoint::fingerprint(self.n, self.m, self.symmetric, self.scale, sources);

        let mut bc = vec![0.0f64; self.n];
        let mut done = 0usize;
        if ckpt.resume {
            if let Some(snap) = checkpoint::load(&ckpt.path, fp, self.n)? {
                done = snap.done.min(sources.len());
                bc = snap.bc;
            }
        }
        let mut stats = RunStats {
            sources: sources.len(),
            recovery: RecoveryLog {
                resumed_sources: done,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut scratch = CpuScratch::for_engine(self.options.engine, self.n);
        let mut batches_done = 0u32;
        while done < sources.len() {
            let hi = (done + every).min(sources.len());
            let mut batch_bc = vec![0.0f64; self.n];
            for &s in &sources[done..hi] {
                let run = self.one_source(
                    s as usize,
                    self.options.engine,
                    &mut batch_bc,
                    &mut sigma,
                    &mut depths,
                    &mut scratch,
                    &mut |_| {},
                );
                stats.max_depth = stats.max_depth.max(run.height);
                stats.total_levels += run.height as u64;
            }
            for (acc, x) in bc.iter_mut().zip(&batch_bc) {
                *acc += x;
            }
            done = hi;
            checkpoint::save(&ckpt.path, fp, done, &bc)?;
            batches_done += 1;
            if let Some(kill) = ckpt.fail_after_batches {
                if batches_done >= kill {
                    return Err(CheckpointError::InjectedKill { batches_done }.into());
                }
            }
        }
        // σ/S surface the last source deterministically — also when the
        // checkpoint already covered every source.
        if let Some(&last) = sources.last() {
            let mut scratch_bc = vec![0.0f64; self.n];
            let run = self.one_source(
                last as usize,
                self.options.engine,
                &mut scratch_bc,
                &mut sigma,
                &mut depths,
                &mut scratch,
                &mut |_| {},
            );
            stats.last_reached = run.reached;
            stats.max_depth = stats.max_depth.max(run.height);
        }
        stats.elapsed = start.elapsed();
        Ok(BcResult {
            bc,
            sigma,
            depths,
            stats,
        })
    }

    /// Rebuilds the storage a degraded kernel needs. Degradation only
    /// steps *down* the ladder (veCSC → scCSC → scCOOC), so the only
    /// conversion is CSC → COOC.
    fn storage_for(&self, kernel: Kernel) -> Storage {
        match (kernel, &self.storage) {
            (Kernel::ScCooc, Storage::Csc(csc)) => {
                let nnz = csc.nnz();
                let mut rows = Vec::with_capacity(nnz);
                let mut cols = Vec::with_capacity(nnz);
                for j in 0..csc.n_cols() {
                    for k in csc.col_ptr()[j]..csc.col_ptr()[j + 1] {
                        rows.push(csc.row_idx()[k]);
                        cols.push(j as Index);
                    }
                }
                Storage::Cooc(
                    Cooc::from_entries(csc.n_rows(), csc.n_cols(), rows, cols)
                        .expect("CSC entries are in range"),
                )
            }
            (_, s) => s.clone(),
        }
    }

    /// Runs the same computation on the SIMT simulator, returning both
    /// the BC result and the device-level report (memory peak, per-kernel
    /// transactions, modelled time/GLT). The device is built from the
    /// solver's options (`BcOptions::builder().device(..)`, default
    /// Titan Xp); use [`BcSolver::run_simt_on`] to target a caller-built
    /// device (fault plans, capacity caps).
    ///
    /// The solver's [`RecoveryPolicy`] governs what happens when the
    /// device misbehaves:
    ///
    /// * transient kernel faults are retried in place with bounded
    ///   exponential backoff (`stats.recovery.kernel_retries`);
    /// * on [`DeviceError::OutOfMemory`] the run degrades veCSC → scCSC
    ///   → scCOOC (`stats.recovery.oom_degradations`, `degraded_to`) and
    ///   finally falls back to the CPU Parallel engine
    ///   (`stats.recovery.cpu_fallback`);
    /// * with [`RecoveryPolicy::strict`] every fault surfaces
    ///   immediately — the paper's *OOM* table entries.
    pub fn run_simt(&self, sources: &[VertexId]) -> Result<(BcResult, SimtReport), TurboBcError> {
        let device = Device::new(self.options.device);
        self.run_simt_on_observed(&device, sources, &mut NullObserver)
    }

    /// [`BcSolver::run_simt`] with the run traced into `obs`.
    pub fn run_simt_observed(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<(BcResult, SimtReport), TurboBcError> {
        let device = Device::new(self.options.device);
        self.run_simt_on_observed(&device, sources, obs)
    }

    /// [`BcSolver::run_simt`] on a caller-built device (fault plans,
    /// capacity caps, shared metric ledgers).
    pub fn run_simt_on(
        &self,
        device: &Device,
        sources: &[VertexId],
    ) -> Result<(BcResult, SimtReport), TurboBcError> {
        self.run_simt_on_observed(device, sources, &mut NullObserver)
    }

    /// [`BcSolver::run_simt_on`] with the run traced into `obs`: each
    /// attempt emits `RunStart`/`Level`/`SourceDone`/`Metrics`/`Memory`
    /// events, degradations and CPU fallback land as `Recovery` events,
    /// and the final `RunEnd` carries the wall-clock time.
    pub fn run_simt_on_observed(
        &self,
        device: &Device,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<(BcResult, SimtReport), TurboBcError> {
        self.validate_sources(sources)?;
        let start = Instant::now();
        let policy = self.options.recovery;
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.direction.name(),
        });
        let mut recovery = RecoveryLog::default();
        let mut kernel = self.kernel;
        let mut degraded_storage: Option<Storage> = None;
        // Explicit push ships the CSR to the device; Auto resolves to
        // pull there so the §3.4 footprint model keeps holding.
        let push_csr = match self.options.direction {
            DirectionMode::PushOnly => self.dir.csr(),
            _ => None,
        };
        loop {
            let storage = degraded_storage.as_ref().unwrap_or(&self.storage);
            match bc_simt(
                device,
                storage,
                kernel,
                self.symmetric,
                sources,
                self.scale,
                &policy,
                self.options.direction,
                push_csr,
                obs,
            ) {
                Ok(out) => {
                    recovery.kernel_retries += out.kernel_retries;
                    if out.kernel_retries > 0 {
                        obs.event(TraceEvent::Recovery {
                            kind: "kernel_retry",
                            detail: format!(
                                "{} transient kernel fault(s) retried in place",
                                out.kernel_retries
                            ),
                        });
                    }
                    let stats = RunStats {
                        sources: sources.len(),
                        max_depth: out.max_depth,
                        total_levels: out.total_levels,
                        last_reached: out.last_reached,
                        elapsed: start.elapsed(),
                        recovery,
                    };
                    obs.event(TraceEvent::RunEnd {
                        elapsed_s: stats.elapsed.as_secs_f64(),
                    });
                    return Ok((
                        BcResult {
                            bc: out.bc,
                            sigma: out.sigma,
                            depths: out.depths,
                            stats,
                        },
                        out.report,
                    ));
                }
                Err(TurboBcError::Device(DeviceError::OutOfMemory { .. }))
                    if policy.allow_degradation || policy.allow_cpu_fallback =>
                {
                    let next = if policy.allow_degradation {
                        degrade(kernel)
                    } else {
                        None
                    };
                    match next {
                        Some(next) => {
                            recovery.oom_degradations += 1;
                            recovery.degraded_to = Some(next.name());
                            obs.event(TraceEvent::Recovery {
                                kind: "oom_degradation",
                                detail: format!(
                                    "{} out of device memory, degrading to {}",
                                    kernel.name(),
                                    next.name()
                                ),
                            });
                            degraded_storage = Some(self.storage_for(next));
                            kernel = next;
                        }
                        None if policy.allow_cpu_fallback => {
                            recovery.cpu_fallback = true;
                            obs.event(TraceEvent::Recovery {
                                kind: "cpu_fallback",
                                detail: "degradation ladder exhausted, rerunning on the CPU \
                                         Parallel engine"
                                    .to_string(),
                            });
                            let mut result = self.run_cpu_observed(sources, Engine::Parallel, obs);
                            result.stats.recovery = recovery;
                            // The device never completed a run: report
                            // whatever it measured before giving up.
                            let report = SimtReport {
                                metrics: device.metrics(),
                                memory: device.memory(),
                                modelled_time_s: 0.0,
                                glt_gbs: 0.0,
                            };
                            return Ok((result, report));
                        }
                        None => {
                            return Err(TurboBcError::Device(DeviceError::OutOfMemory {
                                requested: 0,
                                free: 0,
                            }))
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Approximate BC by uniform source sampling (Brandes–Pich style):
    /// `k = sample_size(n, epsilon, delta)` sources drawn with
    /// replacement, contributions scaled by `n / k`. Returns the sampled
    /// estimate plus the sampling parameters used.
    pub fn approx(
        &self,
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> Result<ApproxBcResult, TurboBcError> {
        bc_approx_with_solver(self, epsilon, delta, seed)
    }

    /// Edge betweenness centrality over all sources (Girvan–Newman's
    /// edge score; an extension beyond the paper used by the examples).
    pub fn edge_bc(&self) -> Result<EdgeBcResult, TurboBcError> {
        let sources: Vec<VertexId> = (0..self.n as VertexId).collect();
        self.edge_bc_sources(&sources)
    }

    /// Edge BC accumulated over an explicit source set.
    pub fn edge_bc_sources(&self, sources: &[VertexId]) -> Result<EdgeBcResult, TurboBcError> {
        self.validate_sources(sources)?;
        edge_bc_with_solver(self, sources)
    }

    /// Harmonic and classic closeness centrality for every vertex,
    /// computed by multi-source BFS sweeps over this solver's graph.
    pub fn closeness(&self) -> Result<ClosenessResult, TurboBcError> {
        closeness_with_solver(self, None)
    }

    /// Closeness restricted to an explicit source set (landmark
    /// approximation).
    pub fn closeness_for_sources(
        &self,
        sources: &[VertexId],
    ) -> Result<ClosenessResult, TurboBcError> {
        self.validate_sources(sources)?;
        closeness_with_solver(self, Some(sources))
    }

    /// Multi-source BFS: all `sources` swept concurrently in 64-source
    /// batches over one bit-parallel frontier (the MS-BFS extension).
    /// Returns per-source depth vectors and sweep statistics.
    pub fn ms_bfs(&self, sources: &[VertexId]) -> Result<MsBfsResult, TurboBcError> {
        self.validate_sources(sources)?;
        Ok(ms_bfs_on_storage(
            &self.storage,
            self.kernel,
            sources,
            &mut NullObserver,
        ))
    }

    /// [`BcSolver::ms_bfs`] with per-sweep trace events into `obs`.
    pub fn ms_bfs_observed(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<MsBfsResult, TurboBcError> {
        self.validate_sources(sources)?;
        Ok(ms_bfs_on_storage(&self.storage, self.kernel, sources, obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::{brandes_all_sources, brandes_single_source};
    use turbobc_graph::gen;

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < tol, "bc[{i}] = {g}, want {w}");
        }
    }

    #[test]
    fn quickstart_path_graph() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_exact().unwrap();
        assert_close(&r.bc, &[0.0, 3.0, 4.0, 3.0, 0.0], 1e-12);
        assert_eq!(r.stats.sources, 5);
        assert_eq!(r.stats.max_depth, 5);
        assert!(r.stats.recovery.is_clean());
    }

    #[test]
    fn every_engine_and_kernel_matches_oracle() {
        let graphs = [gen::gnm(60, 180, true, 1), gen::gnm(60, 180, false, 2)];
        for g in &graphs {
            let s = g.default_source();
            let want = brandes_single_source(g, s);
            for engine in [Engine::Sequential, Engine::Parallel] {
                for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
                    let solver = BcSolver::new(
                        g,
                        BcOptions {
                            kernel,
                            engine,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    let r = solver.bc_single_source(s).unwrap();
                    assert_close(&r.bc, &want, 1e-9);
                }
            }
        }
    }

    #[test]
    fn exact_bc_matches_oracle_all_engines() {
        let g = gen::small_world(80, 3, 0.3, 9);
        let want = brandes_all_sources(&g);
        for engine in [Engine::Sequential, Engine::Parallel] {
            let solver = BcSolver::new(
                &g,
                BcOptions {
                    kernel: Kernel::Auto,
                    engine,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_close(&solver.bc_exact().unwrap().bc, &want, 1e-6);
        }
    }

    #[test]
    fn auto_kernel_resolution_is_exposed() {
        let dense = gen::mycielski(9);
        assert_eq!(
            BcSolver::new(&dense, BcOptions::default())
                .unwrap()
                .kernel(),
            Kernel::VeCsc
        );
        let mesh = gen::grid2d(10, 10);
        assert_eq!(
            BcSolver::new(&mesh, BcOptions::default()).unwrap().kernel(),
            Kernel::ScCsc
        );
    }

    #[test]
    fn sampled_bc_uses_k_sources() {
        let g = gen::gnm(100, 400, false, 5);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_sampled(10).unwrap();
        assert_eq!(r.stats.sources, 10);
        // Sampled BC approximates the full ordering: top-exact vertex
        // should rank highly in the sample.
        let exact = brandes_all_sources(&g);
        let top_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let mut order: Vec<usize> = (0..g.n()).collect();
        order.sort_by(|&a, &b| r.bc[b].total_cmp(&r.bc[a]));
        let rank = order.iter().position(|&v| v == top_exact).unwrap();
        assert!(rank < g.n() / 4, "top vertex ranked {rank}");
    }

    #[test]
    fn simt_run_agrees_with_cpu_run() {
        let g = gen::delaunay(120, 4);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let s = g.default_source();
        let cpu = solver.bc_single_source(s).unwrap();
        let (gpu, report) = solver.run_simt(&[s]).unwrap();
        assert_close(&gpu.bc, &cpu.bc, 1e-9);
        assert_eq!(gpu.stats.max_depth, cpu.stats.max_depth);
        assert!(report.memory.peak > 0);
        assert!(gpu.stats.recovery.is_clean());
    }

    #[test]
    fn run_stats_depth_matches_bfs() {
        let g = gen::road_network(6, 6, 5, 3);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let s = g.default_source();
        let r = solver.bc_single_source(s).unwrap();
        let bfs = turbobc_graph::bfs(&g, s);
        assert_eq!(r.stats.max_depth, bfs.height);
        assert_eq!(r.stats.last_reached, bfs.reached);
        assert_eq!(r.depths, bfs.depths);
    }

    #[test]
    fn source_parallel_exact_matches_oracle() {
        // 80 sources crosses the across-sources parallel threshold.
        let g = gen::gnm(80, 260, false, 12);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_exact().unwrap();
        let want = brandes_all_sources(&g);
        assert_close(&r.bc, &want, 1e-7);
        // σ/S surface the last source deterministically.
        let last = (g.n() - 1) as u32;
        let bfs = turbobc_graph::bfs(&g, last);
        assert_eq!(r.depths, bfs.depths);
        assert_eq!(r.stats.last_reached, bfs.reached);
    }

    #[test]
    fn empty_graph_is_rejected_at_construction() {
        let g = Graph::from_edges(0, true, &[]);
        match BcSolver::new(&g, BcOptions::default()) {
            Err(TurboBcError::EmptyGraph) => {}
            other => panic!("want EmptyGraph, got {:?}", other.err()),
        }
    }

    #[test]
    fn out_of_range_source_is_rejected() {
        let g = Graph::from_edges(4, false, &[(0, 1), (1, 2), (2, 3)]);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        match solver.bc_single_source(4) {
            Err(TurboBcError::InvalidSource { source: 4, n: 4 }) => {}
            other => panic!("want InvalidSource, got {:?}", other.err()),
        }
        match solver.bc_sources(&[0, 99]) {
            Err(TurboBcError::InvalidSource { source: 99, .. }) => {}
            other => panic!("want InvalidSource, got {:?}", other.err()),
        }
        assert!(matches!(
            solver.run_simt(&[7]),
            Err(TurboBcError::InvalidSource { source: 7, .. })
        ));
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let g = gen::gnm(60, 200, false, 31);
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let dir = std::env::temp_dir().join("turbobc_solver_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.ckpt");
        let _ = std::fs::remove_file(&path);
        let options = BcOptions::builder()
            .checkpoint(crate::checkpoint::CheckpointConfig::new(&path, 7))
            .build();
        let solver = BcSolver::new(&g, options).unwrap();
        let ck = solver.bc_sources_checkpointed(&sources).unwrap();
        let plain = solver.bc_sources(&sources).unwrap();
        assert_close(&ck.bc, &plain.bc, 1e-9);
        assert_eq!(ck.depths, plain.depths);
        assert_eq!(ck.sigma, plain.sigma);
    }

    #[test]
    fn batched_matches_per_source_and_reports_blocks() {
        let g = gen::gnm(90, 320, false, 21);
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let solver = BcSolver::new(&g, BcOptions::builder().batch_width(64).build()).unwrap();
        let want = solver.bc_sources(&sources).unwrap();
        let mut obs = crate::observe::ProfileObserver::new();
        let got = solver.bc_batched_observed(&sources, &mut obs).unwrap();
        assert_close(&got.bc, &want.bc, 1e-9);
        assert_eq!(got.sigma, want.sigma, "last-source σ surface matches");
        assert_eq!(got.depths, want.depths);
        assert_eq!(got.stats.last_reached, want.stats.last_reached);
        assert_eq!(got.stats.max_depth, want.stats.max_depth);
        let p = obs.profile();
        assert_eq!(p.engine, "batched");
        assert_eq!(p.blocks.len(), 90usize.div_ceil(64));
        assert_eq!(p.source_runs.len(), 90);
        // The point of the engine: 90 sources advanced in far fewer
        // matrix sweeps than the sum of their BFS heights.
        let sweeps: u64 = p.blocks.iter().map(|b| u64::from(b.sweeps)).sum();
        assert_eq!(sweeps, got.stats.total_levels);
        assert!(
            sweeps < want.stats.total_levels / 4,
            "sweeps {sweeps} vs per-source levels {}",
            want.stats.total_levels
        );
    }

    #[test]
    fn batched_width_resolution() {
        let g = gen::gnm(200, 800, false, 7);
        // Auto on the default (Titan Xp-sized) device takes 64 lanes,
        // clamped to the source count.
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        assert_eq!(solver.resolve_batch_width(200), 64);
        assert_eq!(solver.resolve_batch_width(10), 10);
        assert_eq!(solver.resolve_batch_width(0), 1);
        // Fixed is taken verbatim (floored at 1), still clamped.
        let solver = BcSolver::new(&g, BcOptions::builder().batch_width(17).build()).unwrap();
        assert_eq!(solver.resolve_batch_width(200), 17);
        let solver = BcSolver::new(&g, BcOptions::builder().batch_width(0).build()).unwrap();
        assert_eq!(solver.resolve_batch_width(200), 1);
    }

    #[test]
    fn batched_rejects_bad_sources_and_handles_empty() {
        let g = gen::gnm(30, 90, true, 3);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        assert!(matches!(
            solver.bc_batched(&[0, 30]),
            Err(TurboBcError::InvalidSource { source: 30, .. })
        ));
        let r = solver.bc_batched(&[]).unwrap();
        assert!(r.bc.iter().all(|&x| x == 0.0));
        assert_eq!(r.stats.sources, 0);
    }

    #[test]
    fn checkpoint_without_config_is_rejected() {
        let g = Graph::from_edges(3, false, &[(0, 1), (1, 2)]);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        assert!(matches!(
            solver.bc_sources_checkpointed(&[0]),
            Err(TurboBcError::Checkpoint(CheckpointError::NotConfigured))
        ));
    }
}
